#pragma once

#include <vector>

#include "soc/soc.hpp"
#include "wrapper/wrapper.hpp"

namespace soctest {

/// Precomputed per-core test times for every TAM width 1..max_width.
///
/// The architecture optimizer consults this table instead of re-running
/// wrapper design. Times are the *monotone envelope* of the wrapper
/// heuristic: a width-w TAM can always leave wires unused, so the effective
/// test time at width w is min over w' <= w of the heuristic time — this also
/// irons out any non-monotonicity of the packing heuristic.
class TestTimeTable {
 public:
  /// Builds the table for every core of `soc`.
  TestTimeTable(const Soc& soc, int max_width,
                PartitionHeuristic heuristic =
                    PartitionHeuristic::kBestFitDecreasing);

  int max_width() const { return max_width_; }
  std::size_t num_cores() const { return times_.size(); }

  /// Effective (monotone) test time of core `i` at width `w` (1..max_width).
  Cycles time(std::size_t core, int width) const;

  /// Raw heuristic time before the monotone envelope.
  Cycles raw_time(std::size_t core, int width) const;

  /// Width actually used to achieve time(core, width) — the smallest
  /// w' <= width attaining the envelope (Pareto-optimal width).
  int effective_width(std::size_t core, int width) const;

  /// Strictly improving widths of core `i`: w is Pareto-optimal iff
  /// time(i, w) < time(i, w-1) (w=1 always included).
  std::vector<int> pareto_widths(std::size_t core) const;

  /// Sum over all cores of time(core, width) — total sequential test load if
  /// every core used a width-`width` TAM. Used for lower bounds.
  Cycles total_time(int width) const;

 private:
  int max_width_;
  std::vector<std::vector<Cycles>> raw_;       // [core][width-1]
  std::vector<std::vector<Cycles>> times_;     // monotone envelope
  std::vector<std::vector<int>> eff_width_;    // argmin width
};

/// Fingerprint of everything TestTimeTable construction reads from a SOC:
/// the per-core test structure. Two SOCs with equal fingerprints produce
/// bit-identical tables. This is the identity the process-wide memo
/// (cached_test_time_table, src/tam/timing.hpp) and the service result
/// cache key off.
std::string soc_table_fingerprint(const Soc& soc);

}  // namespace soctest
