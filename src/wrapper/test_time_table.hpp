#pragma once

#include <vector>

#include "soc/soc.hpp"
#include "wrapper/wrapper.hpp"

namespace soctest {

/// Precomputed per-core test times for every TAM width 1..max_width.
///
/// The architecture optimizer consults this table instead of re-running
/// wrapper design. Times are the *monotone envelope* of the wrapper
/// heuristic: a width-w TAM can always leave wires unused, so the effective
/// test time at width w is min over w' <= w of the heuristic time — this also
/// irons out any non-monotonicity of the packing heuristic.
class TestTimeTable {
 public:
  /// Builds the table for every core of `soc`.
  TestTimeTable(const Soc& soc, int max_width,
                PartitionHeuristic heuristic =
                    PartitionHeuristic::kBestFitDecreasing);

  int max_width() const { return max_width_; }
  std::size_t num_cores() const { return times_.size(); }

  /// Effective (monotone) test time of core `i` at width `w` (1..max_width).
  Cycles time(std::size_t core, int width) const;

  /// Raw heuristic time before the monotone envelope.
  Cycles raw_time(std::size_t core, int width) const;

  /// Width actually used to achieve time(core, width) — the smallest
  /// w' <= width attaining the envelope (Pareto-optimal width).
  int effective_width(std::size_t core, int width) const;

  /// Strictly improving widths of core `i`: w is Pareto-optimal iff
  /// time(i, w) < time(i, w-1) (w=1 always included).
  std::vector<int> pareto_widths(std::size_t core) const;

  /// Sum over all cores of time(core, width) — total sequential test load if
  /// every core used a width-`width` TAM. Used for lower bounds.
  Cycles total_time(int width) const;

 private:
  int max_width_;
  std::vector<std::vector<Cycles>> raw_;       // [core][width-1]
  std::vector<std::vector<Cycles>> times_;     // monotone envelope
  std::vector<std::vector<int>> eff_width_;    // argmin width
};

/// Process-wide memoized table construction for sweep workloads: benchmark
/// grids and the report path rebuild the identical table for every (SOC,
/// max_width) cell, and each build re-runs wrapper design for every core and
/// width. Tables are keyed by a fingerprint of the SOC's test structure (not
/// just its name, so regenerated/mutated SOCs never alias), plus max_width
/// and the partition heuristic. Thread-safe; entries live for the process
/// lifetime (tables are small: num_cores × max_width integers).
const TestTimeTable& cached_test_time_table(
    const Soc& soc, int max_width,
    PartitionHeuristic heuristic = PartitionHeuristic::kBestFitDecreasing);

}  // namespace soctest
