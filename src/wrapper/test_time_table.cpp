#include "wrapper/test_time_table.hpp"

#include <sstream>
#include <stdexcept>

namespace soctest {

std::string soc_table_fingerprint(const Soc& soc) {
  std::ostringstream key;
  key << soc.name() << '|' << soc.num_cores();
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    const Core& core = soc.core(i);
    key << '|' << core.name << ',' << core.num_inputs << ',' << core.num_outputs
        << ',' << core.num_bidirs << ',' << core.soft_scan_flops << ','
        << core.num_patterns << ':';
    for (int len : core.scan_chain_lengths) key << len << ';';
  }
  return key.str();
}

TestTimeTable::TestTimeTable(const Soc& soc, int max_width,
                             PartitionHeuristic heuristic)
    : max_width_(max_width) {
  if (max_width < 1) throw std::invalid_argument("max_width must be >= 1");
  raw_.resize(soc.num_cores());
  times_.resize(soc.num_cores());
  eff_width_.resize(soc.num_cores());
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    raw_[i].resize(static_cast<std::size_t>(max_width));
    times_[i].resize(static_cast<std::size_t>(max_width));
    eff_width_[i].resize(static_cast<std::size_t>(max_width));
    for (int w = 1; w <= max_width; ++w) {
      raw_[i][static_cast<std::size_t>(w - 1)] =
          core_test_time(soc.core(i), w, heuristic);
    }
    times_[i][0] = raw_[i][0];
    eff_width_[i][0] = 1;
    for (int w = 2; w <= max_width; ++w) {
      const auto idx = static_cast<std::size_t>(w - 1);
      if (raw_[i][idx] < times_[i][idx - 1]) {
        times_[i][idx] = raw_[i][idx];
        eff_width_[i][idx] = w;
      } else {
        times_[i][idx] = times_[i][idx - 1];
        eff_width_[i][idx] = eff_width_[i][idx - 1];
      }
    }
  }
}

Cycles TestTimeTable::time(std::size_t core, int width) const {
  if (width < 1 || width > max_width_)
    throw std::out_of_range("width out of table range");
  return times_.at(core)[static_cast<std::size_t>(width - 1)];
}

Cycles TestTimeTable::raw_time(std::size_t core, int width) const {
  if (width < 1 || width > max_width_)
    throw std::out_of_range("width out of table range");
  return raw_.at(core)[static_cast<std::size_t>(width - 1)];
}

int TestTimeTable::effective_width(std::size_t core, int width) const {
  if (width < 1 || width > max_width_)
    throw std::out_of_range("width out of table range");
  return eff_width_.at(core)[static_cast<std::size_t>(width - 1)];
}

std::vector<int> TestTimeTable::pareto_widths(std::size_t core) const {
  std::vector<int> widths{1};
  for (int w = 2; w <= max_width_; ++w) {
    if (time(core, w) < time(core, w - 1)) widths.push_back(w);
  }
  return widths;
}

Cycles TestTimeTable::total_time(int width) const {
  Cycles total = 0;
  for (std::size_t i = 0; i < times_.size(); ++i) total += time(i, width);
  return total;
}

}  // namespace soctest
