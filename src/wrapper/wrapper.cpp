#include "wrapper/wrapper.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace soctest {

int WrapperDesign::max_scan_in() const {
  int m = 0;
  for (const auto& c : chains) m = std::max(m, c.scan_in_length());
  return m;
}

int WrapperDesign::max_scan_out() const {
  int m = 0;
  for (const auto& c : chains) m = std::max(m, c.scan_out_length());
  return m;
}

namespace {

/// Index of the chain that currently has the smallest value of `key`.
template <typename Key>
std::size_t argmin_chain(const std::vector<WrapperChain>& chains, Key key) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < chains.size(); ++i) {
    if (key(chains[i]) < key(chains[best])) best = i;
  }
  return best;
}

/// Distributes `count` unit cells over chains, each time to the chain whose
/// `length` is smallest; `bump` adds a cell to a chain. Equivalent to an
/// optimal balanced fill because cells are unit items.
template <typename Length, typename Bump>
void distribute_cells(std::vector<WrapperChain>& chains, int count,
                      Length length, Bump bump) {
  // Greedy unit fill would be O(count * w); instead level-fill: raise the
  // shortest chains up to the next-shortest, which is O(w log w + w) after
  // sorting, and provably identical to the unit-at-a-time greedy.
  const std::size_t w = chains.size();
  std::vector<std::size_t> order(w);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return length(chains[a]) < length(chains[b]);
  });
  // Find the water level L and remainder r such that filling every chain to
  // level L and giving r chains one extra consumes exactly `count` cells.
  long long remaining = count;
  std::size_t k = 1;  // number of chains at/below the current water level
  long long level = length(chains[order[0]]);
  while (k < w) {
    const long long next = length(chains[order[k]]);
    const long long capacity = static_cast<long long>(k) * (next - level);
    if (capacity >= remaining) break;
    remaining -= capacity;
    level = next;
    ++k;
  }
  const long long per_chain = remaining / static_cast<long long>(k);
  long long extra = remaining % static_cast<long long>(k);
  for (std::size_t i = 0; i < k; ++i) {
    const long long target = level + per_chain + (extra > 0 ? 1 : 0);
    if (extra > 0) --extra;
    const long long add = target - length(chains[order[i]]);
    for (long long a = 0; a < add; ++a) bump(chains[order[i]]);
  }
}

}  // namespace

WrapperDesign design_wrapper(const Core& core, int w,
                             PartitionHeuristic heuristic) {
  if (w < 1) throw std::invalid_argument("TAM width must be >= 1");
  WrapperDesign design;
  design.tam_width = w;
  design.chains.resize(static_cast<std::size_t>(w));

  // Step 1: pack internal scan chains (unbreakable) into the w wrapper chains.
  std::vector<int> order(core.scan_chain_lengths.size());
  std::iota(order.begin(), order.end(), 0);
  switch (heuristic) {
    case PartitionHeuristic::kBestFitDecreasing:
    case PartitionHeuristic::kLpt:
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        return core.scan_chain_lengths[static_cast<std::size_t>(a)] >
               core.scan_chain_lengths[static_cast<std::size_t>(b)];
      });
      for (int idx : order) {
        auto& chain = design.chains[argmin_chain(
            design.chains, [](const WrapperChain& c) { return c.internal_flops; })];
        chain.internal_chains.push_back(idx);
        chain.internal_flops += core.scan_chain_lengths[static_cast<std::size_t>(idx)];
      }
      break;
    case PartitionHeuristic::kRoundRobin:
      for (std::size_t i = 0; i < order.size(); ++i) {
        auto& chain = design.chains[i % static_cast<std::size_t>(w)];
        chain.internal_chains.push_back(static_cast<int>(i));
        chain.internal_flops += core.scan_chain_lengths[i];
      }
      break;
  }

  // Step 1b: soft cores' flops are stitched freely — distribute them as
  // unit items to balance chain lengths (optimal for unit items).
  if (core.soft_scan_flops > 0) {
    distribute_cells(design.chains, core.soft_scan_flops,
                     [](const WrapperChain& c) { return c.internal_flops; },
                     [](WrapperChain& c) { ++c.internal_flops; });
  }

  // Step 2: distribute input wrapper cells to balance scan-in lengths, then
  // output wrapper cells to balance scan-out lengths. Bidirectional terminals
  // need a cell on both sides.
  distribute_cells(design.chains, core.num_inputs + core.num_bidirs,
                   [](const WrapperChain& c) { return c.scan_in_length(); },
                   [](WrapperChain& c) { ++c.input_cells; });
  distribute_cells(design.chains, core.num_outputs + core.num_bidirs,
                   [](const WrapperChain& c) { return c.scan_out_length(); },
                   [](WrapperChain& c) { ++c.output_cells; });
  return design;
}

Cycles wrapper_test_time(const Core& core, const WrapperDesign& design) {
  const Cycles si = design.max_scan_in();
  const Cycles so = design.max_scan_out();
  const Cycles p = core.num_patterns;
  return p * (1 + std::max(si, so)) + std::min(si, so);
}

Cycles core_test_time(const Core& core, int w, PartitionHeuristic heuristic) {
  return wrapper_test_time(core, design_wrapper(core, w, heuristic));
}

namespace {

/// Branch & bound for multiway number partitioning: assign `lengths`
/// (sorted descending) to `bins` minimizing the maximum bin sum.
struct PartitionSearch {
  const std::vector<int>& lengths;
  std::vector<long long> suffix_total;
  std::vector<long long> bins;
  std::vector<int> assignment;      // item -> bin
  std::vector<int> best_assignment;
  long long best = std::numeric_limits<long long>::max();
  long long nodes = 0;
  long long max_nodes;

  PartitionSearch(const std::vector<int>& lengths_sorted, int num_bins,
                  long long node_cap)
      : lengths(lengths_sorted),
        bins(static_cast<std::size_t>(num_bins), 0),
        assignment(lengths_sorted.size(), -1),
        max_nodes(node_cap) {
    suffix_total.assign(lengths.size() + 1, 0);
    for (std::size_t k = lengths.size(); k-- > 0;) {
      suffix_total[k] = suffix_total[k + 1] + lengths[k];
    }
  }

  long long bound(std::size_t k) const {
    long long max_bin = 0, total = 0;
    for (long long b : bins) {
      max_bin = std::max(max_bin, b);
      total += b;
    }
    const auto w = static_cast<long long>(bins.size());
    const long long spread = (total + suffix_total[k] + w - 1) / w;
    const long long largest = k < lengths.size() ? lengths[k] : 0;
    return std::max({max_bin, spread, largest});
  }

  void dfs(std::size_t k) {
    if (++nodes > max_nodes) return;  // fall back to incumbent (== BFD seed)
    if (k == lengths.size()) {
      long long max_bin = 0;
      for (long long b : bins) max_bin = std::max(max_bin, b);
      if (max_bin < best) {
        best = max_bin;
        best_assignment = assignment;
      }
      return;
    }
    if (bound(k) >= best) return;
    bool used_empty = false;
    for (std::size_t j = 0; j < bins.size(); ++j) {
      if (bins[j] == 0) {
        if (used_empty) continue;  // empty bins are interchangeable
        used_empty = true;
      }
      if (bins[j] + lengths[k] >= best) continue;
      bins[j] += lengths[k];
      assignment[k] = static_cast<int>(j);
      dfs(k + 1);
      assignment[k] = -1;
      bins[j] -= lengths[k];
      if (nodes > max_nodes) return;
    }
  }
};

}  // namespace

WrapperDesign design_wrapper_exact(const Core& core, int w,
                                   long long max_nodes) {
  if (w < 1) throw std::invalid_argument("TAM width must be >= 1");
  // Seed with BFD so the node cap degrades gracefully to the heuristic.
  WrapperDesign design = design_wrapper(core, w);
  if (core.scan_chain_lengths.size() <= 1) return design;  // nothing to split

  std::vector<int> order(core.scan_chain_lengths.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return core.scan_chain_lengths[static_cast<std::size_t>(a)] >
           core.scan_chain_lengths[static_cast<std::size_t>(b)];
  });
  std::vector<int> sorted_lengths;
  sorted_lengths.reserve(order.size());
  for (int idx : order) {
    sorted_lengths.push_back(core.scan_chain_lengths[static_cast<std::size_t>(idx)]);
  }

  PartitionSearch search(sorted_lengths, w, max_nodes);
  // Warm start the bound from the BFD packing.
  long long bfd_max = 0;
  for (const auto& chain : design.chains) {
    bfd_max = std::max(bfd_max, static_cast<long long>(chain.internal_flops));
  }
  search.best = bfd_max + 1;
  search.dfs(0);
  if (search.best_assignment.empty()) return design;  // BFD already optimal

  // Rebuild the design from the exact partition.
  WrapperDesign exact;
  exact.tam_width = w;
  exact.chains.resize(static_cast<std::size_t>(w));
  for (std::size_t k = 0; k < order.size(); ++k) {
    auto& chain = exact.chains[static_cast<std::size_t>(search.best_assignment[k])];
    chain.internal_chains.push_back(order[k]);
    chain.internal_flops += sorted_lengths[k];
  }
  if (core.soft_scan_flops > 0) {
    distribute_cells(exact.chains, core.soft_scan_flops,
                     [](const WrapperChain& c) { return c.internal_flops; },
                     [](WrapperChain& c) { ++c.internal_flops; });
  }
  distribute_cells(exact.chains, core.num_inputs + core.num_bidirs,
                   [](const WrapperChain& c) { return c.scan_in_length(); },
                   [](WrapperChain& c) { ++c.input_cells; });
  distribute_cells(exact.chains, core.num_outputs + core.num_bidirs,
                   [](const WrapperChain& c) { return c.scan_out_length(); },
                   [](WrapperChain& c) { ++c.output_cells; });
  return exact;
}

Cycles core_test_time_exact(const Core& core, int w) {
  return wrapper_test_time(core, design_wrapper_exact(core, w));
}

long long core_test_data_volume(const Core& core) {
  return static_cast<long long>(core.num_patterns) *
         (static_cast<long long>(core.scan_in_elements()) +
          static_cast<long long>(core.scan_out_elements()));
}

}  // namespace soctest
