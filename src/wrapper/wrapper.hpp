#pragma once

#include <cstdint>
#include <vector>

#include "soc/core.hpp"

namespace soctest {

/// Test application time in TAM clock cycles.
using Cycles = std::int64_t;

/// Which heuristic packs internal scan chains into wrapper chains.
enum class PartitionHeuristic {
  kBestFitDecreasing,  ///< sort chains desc, place each on currently-shortest wrapper chain
  kLpt,                ///< identical to BFD for this objective, kept for ablation naming
  kRoundRobin,         ///< naive: chain i -> wrapper chain i mod w (ablation baseline)
};

/// One wrapper scan chain: the internal scan chains routed through it plus
/// the functional-terminal wrapper cells prepended/appended to it.
struct WrapperChain {
  std::vector<int> internal_chains;  ///< indices into Core::scan_chain_lengths
  int internal_flops = 0;            ///< sum of those chain lengths
  int input_cells = 0;               ///< input wrapper cells on this chain
  int output_cells = 0;              ///< output wrapper cells on this chain

  int scan_in_length() const { return internal_flops + input_cells; }
  int scan_out_length() const { return internal_flops + output_cells; }
};

/// A complete wrapper design for one core at one TAM width.
struct WrapperDesign {
  int tam_width = 0;
  std::vector<WrapperChain> chains;  ///< exactly tam_width chains (some may be empty)

  /// Longest scan-in / scan-out chain — these set the per-pattern shift time.
  int max_scan_in() const;
  int max_scan_out() const;
};

/// Designs the core's test wrapper for a width-`w` TAM: partitions internal
/// scan chains into `w` wrapper chains (unbreakable items), then distributes
/// input and output wrapper cells to balance scan-in/scan-out lengths.
/// Requires w >= 1.
WrapperDesign design_wrapper(const Core& core, int w,
                             PartitionHeuristic heuristic =
                                 PartitionHeuristic::kBestFitDecreasing);

/// Test application time of `design` for `core`'s pattern set:
///   t = p * (1 + max(s_in, s_out)) + min(s_in, s_out)
/// — the standard scan test time model (each pattern shifts in while the
/// previous response shifts out; one capture cycle per pattern; a final
/// shift-out of the last response overlapping nothing).
Cycles wrapper_test_time(const Core& core, const WrapperDesign& design);

/// Convenience: design the wrapper and return the test time at width w.
/// NOTE: raw heuristic value; not guaranteed monotone in w. Architecture
/// optimization uses TestTimeTable, which enforces the monotone envelope.
Cycles core_test_time(const Core& core, int w,
                      PartitionHeuristic heuristic =
                          PartitionHeuristic::kBestFitDecreasing);

/// EXACT wrapper-chain partitioning: minimizes the maximum internal chain
/// length over all ways of packing the fixed internal chains into w wrapper
/// chains (branch & bound; multiway number partitioning is NP-hard, so this
/// is exponential in the chain count — use for ablation and for cores with
/// up to ~20 chains). Wrapper cells are distributed as in design_wrapper.
/// Soft flops are balanced exactly as usual.
WrapperDesign design_wrapper_exact(const Core& core, int w,
                                   long long max_nodes = 5'000'000);

/// Test time using the exact partitioner (same caveats as above).
Cycles core_test_time_exact(const Core& core, int w);

/// Test data volume in bits: stimuli shifted in plus responses shifted out
/// over the whole pattern set, TD = p * (s_in + s_out) with the *total*
/// scan element counts (independent of TAM width — width trades time for
/// channel count, not volume). Drives ATE vector-memory sizing.
long long core_test_data_volume(const Core& core);

}  // namespace soctest
