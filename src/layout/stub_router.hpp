#pragma once

#include <vector>

#include "layout/bus_planner.hpp"

namespace soctest {

/// A fully routed TAM: the bus trunks plus, for every core, the stub wire
/// connecting the core's wrapper to its assigned bus trunk.
struct StubRoutes {
  /// stub[i] = path for core i from a perimeter access cell to a trunk cell
  /// of its assigned bus. Empty path when the core touches the trunk
  /// directly (distance 0).
  std::vector<RoutePath> stubs;
  long long total_length = 0;  ///< grid edges over all stubs
  /// Channel cells whose usage exceeds the per-cell capacity (trunks count
  /// toward usage too). Overflow means the abstract detour distances were
  /// optimistic and detailed routing would need another layer/track.
  int overflow_cells = 0;
};

struct StubRouterOptions {
  /// How many wires a channel cell can carry before it overflows.
  int cell_capacity = 3;
  /// When true, stubs are routed one at a time with a congestion-aware
  /// router (cost 1 + penalty * usage), trading a little wirelength for
  /// fewer overflows. When false, every stub takes its shortest path.
  bool congestion_aware = true;
  double congestion_penalty = 1.5;
};

/// Routes every core's stub to its assigned trunk, obstacle-aware. Cores are
/// processed in decreasing detour distance (long, constrained stubs claim
/// channels first). Throws std::invalid_argument on malformed assignments
/// and std::runtime_error if a core cannot reach its trunk at all.
StubRoutes route_stubs(const Soc& soc, const BusPlan& plan,
                       const std::vector<int>& assignment,
                       const StubRouterOptions& options = {});

}  // namespace soctest
