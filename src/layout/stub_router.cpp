#include "layout/stub_router.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <string>

#include "layout/router.hpp"

namespace soctest {

StubRoutes route_stubs(const Soc& soc, const BusPlan& plan,
                       const std::vector<int>& assignment,
                       const StubRouterOptions& options) {
  if (!soc.has_placement()) {
    throw std::invalid_argument("stub routing requires a placed SOC");
  }
  if (assignment.size() != soc.num_cores()) {
    throw std::invalid_argument("assignment size mismatch");
  }
  for (int bus : assignment) {
    if (bus < 0 || static_cast<std::size_t>(bus) >= plan.num_buses()) {
      throw std::invalid_argument("core assigned to unknown bus");
    }
  }
  const DieGrid grid(soc);
  const GridRouter router(grid);
  const auto n_cells = static_cast<std::size_t>(grid.num_cells());

  // Wire usage per channel cell; trunks claim their cells first.
  std::vector<double> usage(n_cells, 0.0);
  for (const auto& bus : plan.buses) {
    for (const auto& p : bus.trunk.cells) usage[grid.index(p)] += 1.0;
  }

  // Long stubs first: they have the fewest routing choices.
  std::vector<std::size_t> order(soc.num_cores());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const int da = plan.distance(a, static_cast<std::size_t>(assignment.at(a)));
    const int db = plan.distance(b, static_cast<std::size_t>(assignment.at(b)));
    return da > db;
  });

  StubRoutes result;
  result.stubs.resize(soc.num_cores());
  std::vector<double> zero(n_cells, 0.0);
  std::vector<double> weighted(n_cells, 0.0);
  for (std::size_t i : order) {
    const int bus_idx = assignment[i];
    const auto& trunk = plan.buses[static_cast<std::size_t>(bus_idx)].trunk;
    const auto access = grid.perimeter_access(
        soc.placement(i).origin, soc.core(i).width, soc.core(i).height);
    if (access.empty()) {
      throw std::runtime_error("core " + soc.core(i).name +
                               " is walled in; no access points");
    }
    if (options.congestion_aware) {
      for (std::size_t c = 0; c < n_cells; ++c) {
        weighted[c] = options.congestion_penalty * usage[c];
      }
    }
    const auto path = router.route_weighted_multi(
        access, trunk.cells, options.congestion_aware ? weighted : zero);
    if (!path) {
      throw std::runtime_error("core " + soc.core(i).name +
                               " cannot reach bus " + std::to_string(bus_idx));
    }
    for (const Point& p : path->cells) usage[grid.index(p)] += 1.0;
    result.total_length += path->length();
    result.stubs[i] = *path;
  }

  for (std::size_t c = 0; c < n_cells; ++c) {
    if (usage[c] > options.cell_capacity + 1e-9) ++result.overflow_cells;
  }
  return result;
}

}  // namespace soctest
