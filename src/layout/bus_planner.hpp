#pragma once

#include <vector>

#include "layout/grid.hpp"
#include "layout/router.hpp"

namespace soctest {

/// A planned test bus: its routed trunk across the die and the detour
/// distance from every core to the trunk.
struct PlannedBus {
  int index = 0;
  RoutePath trunk;
  /// d_ij for this bus: shortest obstacle-avoiding distance (grid edges)
  /// from core i's nearest access point to the trunk; -1 if unreachable.
  std::vector<int> core_distance;
};

struct BusPlan {
  std::vector<PlannedBus> buses;
  /// Convenience view: distance(core, bus); -1 when unreachable.
  int distance(std::size_t core, std::size_t bus) const {
    return buses.at(bus).core_distance.at(core);
  }
  std::size_t num_buses() const { return buses.size(); }
  /// Total trunk wirelength over all buses (grid edges).
  long long total_trunk_length() const;
};

struct BusPlannerOptions {
  /// Congestion penalty added to a cell's step cost for each trunk already
  /// occupying it; spreads trunks across distinct channels.
  double congestion_penalty = 2.0;
};

/// Routes `num_buses` TAM trunks across a placed SOC, left edge to right
/// edge at evenly spaced heights, each avoiding core macros and (softly)
/// earlier trunks; then computes every core's detour distance to each trunk.
/// Throws std::runtime_error if a trunk cannot be routed at all.
BusPlan plan_buses(const Soc& soc, int num_buses,
                   const BusPlannerOptions& options = {});

}  // namespace soctest
