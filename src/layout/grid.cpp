#include "layout/grid.hpp"

#include <sstream>
#include <stdexcept>

namespace soctest {

DieGrid::DieGrid(int width, int height) : width_(width), height_(height) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("die grid dimensions must be positive");
  }
  blocked_.assign(static_cast<std::size_t>(width) * static_cast<std::size_t>(height), 0);
}

DieGrid::DieGrid(const Soc& soc) : DieGrid(soc.die_width(), soc.die_height()) {
  if (!soc.has_placement()) {
    throw std::invalid_argument("DieGrid requires a placed SOC");
  }
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    const auto& c = soc.core(i);
    const auto& o = soc.placement(i).origin;
    for (int y = o.y; y < o.y + c.height; ++y) {
      for (int x = o.x; x < o.x + c.width; ++x) {
        set_blocked(Point{x, y}, true);
      }
    }
  }
}

void DieGrid::neighbors(Point p, std::vector<Point>& out) const {
  out.clear();
  const Point candidates[4] = {
      {p.x + 1, p.y}, {p.x - 1, p.y}, {p.x, p.y + 1}, {p.x, p.y - 1}};
  for (const auto& q : candidates) {
    if (in_bounds(q) && !blocked(q)) out.push_back(q);
  }
}

std::vector<Point> DieGrid::perimeter_access(Point origin, int w, int h) const {
  std::vector<Point> out;
  auto consider = [&](Point p) {
    if (in_bounds(p) && !blocked(p)) out.push_back(p);
  };
  for (int x = origin.x; x < origin.x + w; ++x) {
    consider(Point{x, origin.y - 1});
    consider(Point{x, origin.y + h});
  }
  for (int y = origin.y; y < origin.y + h; ++y) {
    consider(Point{origin.x - 1, y});
    consider(Point{origin.x + w, y});
  }
  return out;
}

std::string DieGrid::render(
    const std::vector<std::pair<Point, char>>& overlay) const {
  std::vector<std::string> canvas(
      static_cast<std::size_t>(height_),
      std::string(static_cast<std::size_t>(width_), '.'));
  for (int y = 0; y < height_; ++y) {
    for (int x = 0; x < width_; ++x) {
      if (blocked(Point{x, y})) {
        canvas[static_cast<std::size_t>(y)][static_cast<std::size_t>(x)] = '#';
      }
    }
  }
  for (const auto& [p, ch] : overlay) {
    if (in_bounds(p)) {
      canvas[static_cast<std::size_t>(p.y)][static_cast<std::size_t>(p.x)] = ch;
    }
  }
  std::ostringstream out;
  // Render with y increasing upward (row 0 at the bottom), like a floorplan.
  for (int y = height_ - 1; y >= 0; --y) out << canvas[static_cast<std::size_t>(y)] << "\n";
  return out.str();
}

}  // namespace soctest
