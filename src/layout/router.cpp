#include "layout/router.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

#include "runtime/failpoint.hpp"

namespace soctest {

namespace {

constexpr std::size_t kNoPrev = static_cast<std::size_t>(-1);

RoutePath backtrack(const DieGrid& grid, const std::vector<std::size_t>& prev,
                    Point from, Point to) {
  RoutePath path;
  std::size_t cur = grid.index(to);
  while (true) {
    path.cells.push_back(grid.point(cur));
    if (grid.point(cur) == from) break;
    cur = prev[cur];
  }
  std::reverse(path.cells.begin(), path.cells.end());
  return path;
}

}  // namespace

std::optional<RoutePath> GridRouter::route(Point from, Point to) const {
  if (!grid_.in_bounds(from) || !grid_.in_bounds(to)) {
    throw std::invalid_argument("route endpoints out of bounds");
  }
  if (grid_.blocked(from) || grid_.blocked(to)) return std::nullopt;
  std::vector<std::size_t> prev(static_cast<std::size_t>(grid_.num_cells()), kNoPrev);
  std::vector<char> seen(static_cast<std::size_t>(grid_.num_cells()), 0);
  std::queue<Point> frontier;
  frontier.push(from);
  seen[grid_.index(from)] = 1;
  std::vector<Point> nbrs;
  StopCheck stop_check(control_.deadline, control_.cancel,
                       failpoint::sites::kRouteStep);
  while (!frontier.empty()) {
    if (stop_check.should_stop()) return std::nullopt;
    const Point p = frontier.front();
    frontier.pop();
    if (p == to) return backtrack(grid_, prev, from, to);
    grid_.neighbors(p, nbrs);
    for (const Point& q : nbrs) {
      if (!seen[grid_.index(q)]) {
        seen[grid_.index(q)] = 1;
        prev[grid_.index(q)] = grid_.index(p);
        frontier.push(q);
      }
    }
  }
  return std::nullopt;
}

std::optional<RoutePath> GridRouter::route_weighted(
    Point from, Point to, const std::vector<double>& extra_cost) const {
  if (extra_cost.size() != static_cast<std::size_t>(grid_.num_cells())) {
    throw std::invalid_argument("extra_cost size mismatch");
  }
  if (!grid_.in_bounds(from) || !grid_.in_bounds(to)) {
    throw std::invalid_argument("route endpoints out of bounds");
  }
  if (grid_.blocked(from) || grid_.blocked(to)) return std::nullopt;
  const auto n = static_cast<std::size_t>(grid_.num_cells());
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> prev(n, kNoPrev);
  using Entry = std::pair<double, std::size_t>;  // (distance, cell)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[grid_.index(from)] = 0.0;
  heap.push({0.0, grid_.index(from)});
  std::vector<Point> nbrs;
  StopCheck stop_check(control_.deadline, control_.cancel,
                       failpoint::sites::kRouteStep);
  while (!heap.empty()) {
    if (stop_check.should_stop()) return std::nullopt;
    const auto [d, cell] = heap.top();
    heap.pop();
    if (d > dist[cell]) continue;  // stale entry
    const Point p = grid_.point(cell);
    if (p == to) return backtrack(grid_, prev, from, to);
    grid_.neighbors(p, nbrs);
    for (const Point& q : nbrs) {
      const std::size_t qi = grid_.index(q);
      const double nd = d + 1.0 + extra_cost[qi];
      if (nd < dist[qi]) {
        dist[qi] = nd;
        prev[qi] = cell;
        heap.push({nd, qi});
      }
    }
  }
  return std::nullopt;
}

std::optional<RoutePath> GridRouter::route_weighted_multi(
    const std::vector<Point>& sources, const std::vector<Point>& targets,
    const std::vector<double>& extra_cost) const {
  if (extra_cost.size() != static_cast<std::size_t>(grid_.num_cells())) {
    throw std::invalid_argument("extra_cost size mismatch");
  }
  const auto n = static_cast<std::size_t>(grid_.num_cells());
  std::vector<char> is_target(n, 0);
  bool any_target = false;
  for (const Point& t : targets) {
    if (grid_.in_bounds(t) && !grid_.blocked(t)) {
      is_target[grid_.index(t)] = 1;
      any_target = true;
    }
  }
  if (!any_target) return std::nullopt;

  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<std::size_t> prev(n, kNoPrev);
  std::vector<char> is_source(n, 0);
  using Entry = std::pair<double, std::size_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (const Point& s : sources) {
    if (!grid_.in_bounds(s) || grid_.blocked(s)) continue;
    if (dist[grid_.index(s)] > 0.0) {
      dist[grid_.index(s)] = 0.0;
      is_source[grid_.index(s)] = 1;
      heap.push({0.0, grid_.index(s)});
    }
  }
  std::vector<Point> nbrs;
  StopCheck stop_check(control_.deadline, control_.cancel,
                       failpoint::sites::kRouteStep);
  while (!heap.empty()) {
    if (stop_check.should_stop()) return std::nullopt;
    const auto [d, cell] = heap.top();
    heap.pop();
    if (d > dist[cell]) continue;
    if (is_target[cell]) {
      // Backtrack to whichever source started this label.
      RoutePath path;
      std::size_t cur = cell;
      while (true) {
        path.cells.push_back(grid_.point(cur));
        if (is_source[cur] && dist[cur] == 0.0) break;
        cur = prev[cur];
      }
      std::reverse(path.cells.begin(), path.cells.end());
      return path;
    }
    grid_.neighbors(grid_.point(cell), nbrs);
    for (const Point& q : nbrs) {
      const std::size_t qi = grid_.index(q);
      const double nd = d + 1.0 + extra_cost[qi];
      if (nd < dist[qi]) {
        dist[qi] = nd;
        prev[qi] = cell;
        heap.push({nd, qi});
      }
    }
  }
  return std::nullopt;
}

std::vector<int> GridRouter::distance_map(const std::vector<Point>& sources) const {
  std::vector<int> dist(static_cast<std::size_t>(grid_.num_cells()), -1);
  std::queue<Point> frontier;
  for (const Point& s : sources) {
    if (!grid_.in_bounds(s) || grid_.blocked(s)) continue;
    if (dist[grid_.index(s)] == 0) continue;
    dist[grid_.index(s)] = 0;
    frontier.push(s);
  }
  std::vector<Point> nbrs;
  StopCheck stop_check(control_.deadline, control_.cancel,
                       failpoint::sites::kRouteStep);
  while (!frontier.empty()) {
    // On interruption the map stays partial: -1 for unexplored cells.
    if (stop_check.should_stop()) break;
    const Point p = frontier.front();
    frontier.pop();
    grid_.neighbors(p, nbrs);
    for (const Point& q : nbrs) {
      if (dist[grid_.index(q)] < 0) {
        dist[grid_.index(q)] = dist[grid_.index(p)] + 1;
        frontier.push(q);
      }
    }
  }
  return dist;
}

}  // namespace soctest
