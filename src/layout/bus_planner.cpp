#include "layout/bus_planner.hpp"

#include <stdexcept>
#include <string>

namespace soctest {

namespace {

/// Picks a free cell on the given vertical die edge (x fixed), nearest to the
/// preferred y. Throws if the whole edge column is blocked.
Point edge_pin(const DieGrid& grid, int x, int preferred_y) {
  for (int delta = 0; delta < grid.height(); ++delta) {
    for (int sign : {+1, -1}) {
      const int y = preferred_y + sign * delta;
      if (y < 0 || y >= grid.height()) continue;
      const Point p{x, y};
      if (!grid.blocked(p)) return p;
      if (delta == 0) break;  // same cell for both signs
    }
  }
  throw std::runtime_error("die edge column fully blocked; cannot place bus pin");
}

}  // namespace

long long BusPlan::total_trunk_length() const {
  long long total = 0;
  for (const auto& b : buses) total += b.trunk.length();
  return total;
}

BusPlan plan_buses(const Soc& soc, int num_buses,
                   const BusPlannerOptions& options) {
  if (num_buses <= 0) throw std::invalid_argument("num_buses must be positive");
  if (!soc.has_placement()) {
    throw std::invalid_argument("bus planning requires a placed SOC");
  }
  const DieGrid grid(soc);
  const GridRouter router(grid);
  std::vector<double> congestion(static_cast<std::size_t>(grid.num_cells()), 0.0);

  BusPlan plan;
  for (int j = 0; j < num_buses; ++j) {
    // Evenly spaced preferred heights: bus j at (j+1)/(B+1) of die height.
    const int preferred_y = (j + 1) * grid.height() / (num_buses + 1);
    const Point from = edge_pin(grid, 0, preferred_y);
    const Point to = edge_pin(grid, grid.width() - 1, preferred_y);
    auto trunk = router.route_weighted(from, to, congestion);
    if (!trunk) {
      throw std::runtime_error("bus " + std::to_string(j) +
                               " cannot be routed across the die");
    }
    for (const Point& p : trunk->cells) {
      congestion[grid.index(p)] += options.congestion_penalty;
    }
    PlannedBus bus;
    bus.index = j;
    bus.trunk = std::move(*trunk);

    // Detour distance from each core: multi-source BFS from the trunk cells,
    // then the minimum over the core's perimeter access points (+1 edge to
    // step from the access point next to the core onto the wiring).
    const auto dist = router.distance_map(bus.trunk.cells);
    bus.core_distance.resize(soc.num_cores(), -1);
    for (std::size_t i = 0; i < soc.num_cores(); ++i) {
      const auto access = grid.perimeter_access(
          soc.placement(i).origin, soc.core(i).width, soc.core(i).height);
      int best = -1;
      for (const Point& p : access) {
        const int d = dist[grid.index(p)];
        if (d >= 0 && (best < 0 || d < best)) best = d;
      }
      bus.core_distance[i] = best;
    }
    plan.buses.push_back(std::move(bus));
  }
  return plan;
}

}  // namespace soctest
