#pragma once

#include <vector>

#include "layout/bus_planner.hpp"

namespace soctest {

/// The place-and-route constraint artifacts consumed by the TAM optimizer,
/// extracted from a bus plan:
///  * `allowed(i, j)` — core i may be assigned to bus j only if its detour
///    distance d_ij is defined and at most d_max (forbidden-pair form);
///  * `distance(i, j)` — the stub wirelength cost of the assignment,
///    usable in a total-wiring-budget constraint (Σ d_ij x_ij <= L_max).
class LayoutConstraints {
 public:
  /// d_max < 0 means "no distance limit" (all reachable pairs allowed).
  LayoutConstraints(const BusPlan& plan, std::size_t num_cores, int d_max);

  std::size_t num_cores() const { return num_cores_; }
  std::size_t num_buses() const { return num_buses_; }
  int d_max() const { return d_max_; }

  bool allowed(std::size_t core, std::size_t bus) const;
  /// Detour distance; -1 when unreachable.
  int distance(std::size_t core, std::size_t bus) const;

  /// True if every core has at least one allowed bus.
  bool all_cores_connectable() const;

  /// Cores with no allowed bus (diagnostics for infeasible d_max).
  std::vector<std::size_t> disconnected_cores() const;

  /// Total stub wirelength of an assignment (core -> bus); counts -1
  /// distances as infeasible and throws.
  long long assignment_wirelength(const std::vector<int>& assignment) const;

 private:
  std::size_t num_cores_;
  std::size_t num_buses_;
  int d_max_;
  std::vector<std::vector<int>> distance_;  // [core][bus]
};

}  // namespace soctest
