#pragma once

#include "common/rng.hpp"
#include "runtime/deadline.hpp"
#include "soc/soc.hpp"

namespace soctest {

struct SaPlacerOptions {
  /// Minimum free-cell margin kept around every core (routing channel).
  int margin = 1;
  int iterations = 20000;
  double initial_temperature = 50.0;
  double cooling = 0.9995;
  /// Optional cooperative cancellation: checked every iteration; the best
  /// placement seen so far is committed on early exit.
  const CancellationToken* cancel = nullptr;
  /// Optional wall-clock deadline; same early-exit semantics as `cancel`.
  Deadline deadline;
};

/// Simulated-annealing macro placer. Objective: total Manhattan distance
/// from each core's center to the die center, weighted by the core's TAM
/// traffic (scan volume) — a proxy for TAM stub wirelength with trunks
/// crossing mid-die. Moves translate one core to a random legal position;
/// positions violating bounds, overlap, or the margin are rejected outright,
/// so the placement stays legal at every step.
///
/// The SOC must already have a legal placement (e.g. from shelf_place);
/// the placer refines it in place.
void sa_place(Soc& soc, const SaPlacerOptions& options, Rng& rng);

/// The placer's objective for a given placement (exposed for tests/benches).
long long placement_cost(const Soc& soc);

}  // namespace soctest
