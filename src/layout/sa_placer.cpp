#include "layout/sa_placer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "obs/obs.hpp"
#include "runtime/failpoint.hpp"

namespace soctest {

namespace {

long long core_traffic(const Core& c) {
  return c.total_scan_flops() + c.num_inputs + c.num_outputs + 2 * c.num_bidirs;
}

long long core_cost(const Soc& soc, std::size_t i, Point origin) {
  const auto& c = soc.core(i);
  // Manhattan distance from the core center to the die center, x2 grid for
  // exact integer halves.
  const long long cx = 2LL * origin.x + c.width;
  const long long cy = 2LL * origin.y + c.height;
  const long long dx = std::llabs(cx - soc.die_width());
  const long long dy = std::llabs(cy - soc.die_height());
  return (dx + dy) * core_traffic(c);
}

bool legal(const Soc& soc, std::size_t i, Point origin, int margin,
           const std::vector<Placement>& placements) {
  const auto& c = soc.core(i);
  if (origin.x < margin || origin.y < margin ||
      origin.x + c.width + margin > soc.die_width() ||
      origin.y + c.height + margin > soc.die_height()) {
    return false;
  }
  for (std::size_t k = 0; k < soc.num_cores(); ++k) {
    if (k == i) continue;
    const auto& o = placements[k].origin;
    const auto& d = soc.core(k);
    // Expand the other core by the margin so a channel survives between them.
    const bool overlap_x = origin.x < o.x + d.width + margin &&
                           o.x < origin.x + c.width + margin;
    const bool overlap_y = origin.y < o.y + d.height + margin &&
                           o.y < origin.y + c.height + margin;
    if (overlap_x && overlap_y) return false;
  }
  return true;
}

}  // namespace

long long placement_cost(const Soc& soc) {
  if (!soc.has_placement()) {
    throw std::invalid_argument("placement_cost requires a placed SOC");
  }
  long long total = 0;
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    total += core_cost(soc, i, soc.placement(i).origin);
  }
  return total;
}

void sa_place(Soc& soc, const SaPlacerOptions& options, Rng& rng) {
  if (!soc.has_placement()) {
    throw std::invalid_argument("sa_place refines an existing placement");
  }
  std::vector<Placement> placements;
  placements.reserve(soc.num_cores());
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    placements.push_back(soc.placement(i));
  }
  // The seed placement may sit tighter than the requested margin; keep it —
  // only *new* positions are margin-checked, so cost never regresses below
  // a legal state.
  long long cost = placement_cost(soc);
  obs::Span span("layout.sa.place", {{"cores", soc.num_cores()},
                                     {"iterations", options.iterations},
                                     {"initial_cost", cost}});
  // Per-run tallies, batched into the obs counters after the loop so the
  // per-move path stays plain increments. Progress instants sample the
  // acceptance rate over a window when tracing is live.
  long long proposed = 0;
  long long accepted = 0;
  long long rejected_illegal = 0;
  long long window_proposed = 0;
  long long window_accepted = 0;
  const int progress_stride =
      span.active() ? std::max(1, options.iterations / 32) : 0;
  std::vector<Placement> best = placements;
  long long best_cost = cost;
  double temperature = options.initial_temperature;
  StopCheck stop_check(options.deadline, options.cancel,
                       failpoint::sites::kPlacerIter);
  for (int it = 0; it < options.iterations; ++it) {
    // Graceful early exit: the best placement found so far is committed.
    if (stop_check.should_stop()) break;
    if (progress_stride > 0 && it > 0 && it % progress_stride == 0) {
      const double rate = window_proposed > 0
                              ? static_cast<double>(window_accepted) /
                                    static_cast<double>(window_proposed)
                              : 0.0;
      obs::instant("layout.sa.progress", {{"iteration", it},
                                          {"temperature", temperature},
                                          {"cost", cost},
                                          {"acceptance", rate}});
      window_proposed = 0;
      window_accepted = 0;
    }
    const std::size_t i = rng.index(soc.num_cores());
    const auto& c = soc.core(i);
    const int max_x = soc.die_width() - c.width - options.margin;
    const int max_y = soc.die_height() - c.height - options.margin;
    if (max_x < options.margin || max_y < options.margin) continue;
    const Point candidate{
        static_cast<int>(rng.uniform_int(options.margin, max_x)),
        static_cast<int>(rng.uniform_int(options.margin, max_y))};
    if (!legal(soc, i, candidate, options.margin, placements)) {
      ++rejected_illegal;
      continue;
    }
    ++proposed;
    ++window_proposed;
    const long long delta =
        core_cost(soc, i, candidate) - core_cost(soc, i, placements[i].origin);
    if (delta <= 0 ||
        rng.uniform01() < std::exp(-static_cast<double>(delta) / temperature)) {
      ++accepted;
      ++window_accepted;
      placements[i].origin = candidate;
      cost += delta;
      if (cost < best_cost) {
        best_cost = cost;
        best = placements;
      }
    }
    temperature *= options.cooling;
  }
  if (obs::enabled()) {
    obs::counter("layout.sa.places").add(1);
    obs::counter("layout.sa.proposed").add(proposed);
    obs::counter("layout.sa.accepted").add(accepted);
    obs::counter("layout.sa.rejected_illegal").add(rejected_illegal);
  }
  if (span.active()) {
    span.arg({"final_cost", best_cost});
    span.arg({"accepted", accepted});
  }
  soc.set_placements(std::move(best));
}

}  // namespace soctest
