#pragma once

#include <string>
#include <vector>

#include "soc/soc.hpp"

namespace soctest {

/// Routing grid over the die. Cells covered by placed cores are blocked for
/// wiring (hard macros); the channels between cores are routable. This is the
/// abstraction the place-and-route constraints of the DAC 2000 formulation
/// are extracted from.
class DieGrid {
 public:
  DieGrid(int width, int height);

  /// Builds the grid from a placed SOC: every cell covered by a core's
  /// footprint is blocked. Throws if the SOC has no placement.
  explicit DieGrid(const Soc& soc);

  int width() const { return width_; }
  int height() const { return height_; }
  int num_cells() const { return width_ * height_; }

  bool in_bounds(Point p) const {
    return p.x >= 0 && p.x < width_ && p.y >= 0 && p.y < height_;
  }
  bool blocked(Point p) const { return blocked_[index(p)]; }
  void set_blocked(Point p, bool value) { blocked_[index(p)] = value; }

  /// Linear cell index (row-major).
  std::size_t index(Point p) const {
    return static_cast<std::size_t>(p.y) * static_cast<std::size_t>(width_) +
           static_cast<std::size_t>(p.x);
  }
  Point point(std::size_t index) const {
    return Point{static_cast<int>(index % static_cast<std::size_t>(width_)),
                 static_cast<int>(index / static_cast<std::size_t>(width_))};
  }

  /// Up-to-4 unblocked in-bounds neighbors of p.
  void neighbors(Point p, std::vector<Point>& out) const;

  /// Free (unblocked, in-bounds) cells adjacent to the perimeter of the
  /// rectangle [origin, origin+size) — the access points of a placed core.
  std::vector<Point> perimeter_access(Point origin, int w, int h) const;

  /// ASCII rendering: '#' blocked, '.' free, plus optional overlay marks.
  std::string render(const std::vector<std::pair<Point, char>>& overlay = {}) const;

 private:
  int width_;
  int height_;
  std::vector<char> blocked_;  // char avoids vector<bool> aliasing pitfalls
};

}  // namespace soctest
