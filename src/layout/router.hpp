#pragma once

#include <optional>
#include <vector>

#include "layout/grid.hpp"
#include "runtime/deadline.hpp"

namespace soctest {

/// A routed path: contiguous sequence of free grid cells.
struct RoutePath {
  std::vector<Point> cells;
  /// Wirelength in grid edges (cells.size() - 1; 0 for a single cell).
  int length() const {
    return cells.empty() ? 0 : static_cast<int>(cells.size()) - 1;
  }
};

/// Obstacle-aware maze router on a DieGrid. Stateless; all methods are pure
/// queries against the grid passed at construction.
///
/// An optional SolveControl makes the searches interruptible: when the
/// deadline expires or the token fires mid-search, route queries return
/// nullopt (treated by callers as "no route within budget") and distance
/// maps stay partial (-1 for unexplored cells).
class GridRouter {
 public:
  explicit GridRouter(const DieGrid& grid, SolveControl control = {})
      : grid_(grid), control_(control) {}

  /// Unit-cost shortest path (BFS / Lee router). Endpoints must be free
  /// cells. Returns nullopt when no route exists.
  std::optional<RoutePath> route(Point from, Point to) const;

  /// Weighted shortest path (Dijkstra): each step into a cell costs
  /// 1 + extra_cost[cell]. Used for congestion-aware trunk routing.
  /// extra_cost must have grid.num_cells() entries, all >= 0.
  std::optional<RoutePath> route_weighted(
      Point from, Point to, const std::vector<double>& extra_cost) const;

  /// Multi-source BFS: distance (grid edges) from the nearest source cell to
  /// every free cell; -1 for unreachable or blocked cells. Blocked sources
  /// are ignored.
  std::vector<int> distance_map(const std::vector<Point>& sources) const;

  /// Cheapest path from ANY source to ANY target under the weighted cost
  /// model of route_weighted (entering a cell costs 1 + extra_cost[cell];
  /// source cells are free). Blocked sources/targets are ignored; returns
  /// nullopt when no pair is connected. The returned path starts at a source
  /// and ends at a target; a source that IS a target yields a 1-cell path.
  std::optional<RoutePath> route_weighted_multi(
      const std::vector<Point>& sources, const std::vector<Point>& targets,
      const std::vector<double>& extra_cost) const;

 private:
  const DieGrid& grid_;
  SolveControl control_;
};

}  // namespace soctest
