#include "layout/constraints.hpp"

#include <stdexcept>
#include <string>

namespace soctest {

LayoutConstraints::LayoutConstraints(const BusPlan& plan, std::size_t num_cores,
                                     int d_max)
    : num_cores_(num_cores), num_buses_(plan.num_buses()), d_max_(d_max) {
  distance_.assign(num_cores_, std::vector<int>(num_buses_, -1));
  for (std::size_t i = 0; i < num_cores_; ++i) {
    for (std::size_t j = 0; j < num_buses_; ++j) {
      distance_[i][j] = plan.distance(i, j);
    }
  }
}

bool LayoutConstraints::allowed(std::size_t core, std::size_t bus) const {
  const int d = distance_.at(core).at(bus);
  if (d < 0) return false;
  return d_max_ < 0 || d <= d_max_;
}

int LayoutConstraints::distance(std::size_t core, std::size_t bus) const {
  return distance_.at(core).at(bus);
}

bool LayoutConstraints::all_cores_connectable() const {
  return disconnected_cores().empty();
}

std::vector<std::size_t> LayoutConstraints::disconnected_cores() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < num_cores_; ++i) {
    bool any = false;
    for (std::size_t j = 0; j < num_buses_ && !any; ++j) any = allowed(i, j);
    if (!any) out.push_back(i);
  }
  return out;
}

long long LayoutConstraints::assignment_wirelength(
    const std::vector<int>& assignment) const {
  if (assignment.size() != num_cores_) {
    throw std::invalid_argument("assignment size mismatch");
  }
  long long total = 0;
  for (std::size_t i = 0; i < num_cores_; ++i) {
    const int j = assignment[i];
    if (j < 0 || static_cast<std::size_t>(j) >= num_buses_) {
      throw std::invalid_argument("assignment references unknown bus");
    }
    const int d = distance_[i][static_cast<std::size_t>(j)];
    if (d < 0) {
      throw std::invalid_argument("core " + std::to_string(i) +
                                  " unreachable from its assigned bus");
    }
    total += d;
  }
  return total;
}

}  // namespace soctest
