// Full flow on a user-described SOC: parse a .soc text description,
// refine the floorplan with the simulated-annealing placer, route the test
// bus trunks, optimize the architecture under combined layout + power
// constraints, and emit the schedule, power profile, and a .soc round-trip.
//
//   $ ./build/examples/full_flow [seed]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "layout/sa_placer.hpp"
#include "sched/gantt.hpp"
#include "sched/power_profile.hpp"
#include "sched/schedule.hpp"
#include "soc/soc_format.hpp"
#include "tam/architect.hpp"

using namespace soctest;

namespace {

// An SOC description as a downstream user would write it (the same format
// read_soc_file accepts). A camera-pipeline-flavored mix: one big DSP-like
// scan core, mid-size codecs, small glue cores.
const char* kSocText = R"soc(
soc camchip 48 48
core dsp     inputs 52 outputs 96  bidirs 8 patterns 140 power 980 size 12 12
core isp     inputs 44 outputs 60  bidirs 0 patterns 90  power 610 size 9 9
core h264    inputs 38 outputs 48  bidirs 0 patterns 120 power 720 size 9 9
core usbphy  inputs 21 outputs 18  bidirs 4 patterns 45  power 260 size 5 5
core ddrctl  inputs 64 outputs 72  bidirs 0 patterns 75  power 540 size 8 8
core pmu     inputs 12 outputs 16  bidirs 0 patterns 30  power 150 size 4 4
scan dsp    48 48 48 48 44 44 44 44
scan isp    36 36 36 32 32
scan h264   40 40 40 40
scan ddrctl 30 30 30 30 28 28
scan pmu    22
place dsp    2 2
place isp    18 2
place h264   30 2
place usbphy 2 17
place ddrctl 10 17
place pmu    21 17
end
)soc";

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

  // 1. Parse.
  Soc soc = read_soc_string(kSocText);
  std::printf("parsed SOC '%s': %zu cores on a %dx%d die\n", soc.name().c_str(),
              soc.num_cores(), soc.die_width(), soc.die_height());

  // 2. Refine the placement (keeps legality; pulls traffic-heavy cores
  //    toward the die center where the trunks run).
  Rng rng(seed);
  const long long before = placement_cost(soc);
  SaPlacerOptions placer;
  placer.iterations = 15000;
  sa_place(soc, placer, rng);
  std::printf("placement cost: %lld -> %lld\n\n", before, placement_cost(soc));

  // 3. Design under combined constraints.
  DesignRequest request;
  request.bus_widths = {12, 8};
  request.d_max = 24;
  request.p_max_mw = 1650.0;  // dsp+h264 = 1700 exceeds it: they serialize
  const auto result = design_architecture(soc, request);
  if (!result.feasible) {
    std::printf("infeasible under the combined constraints\n");
    return 1;
  }
  std::cout << describe_design(soc, request, result);

  // 4. Schedule, verify power, draw.
  const TestTimeTable table(soc, 12);
  const LayoutConstraints layout(*result.bus_plan, soc.num_cores(),
                                 request.d_max);
  const TamProblem problem =
      make_tam_problem(soc, table, result.bus_widths, &layout, -1,
                       request.p_max_mw);
  TestSchedule schedule =
      build_schedule(problem, result.assignment.core_to_bus);
  schedule = minimize_peak_order(problem, soc,
                                 result.assignment.core_to_bus, rng, 500);
  std::cout << "\n" << render_gantt(soc, schedule);
  const PowerProfile profile = compute_power_profile(soc, schedule);
  std::printf("\nschedule peak power %.0f mW (budget %.0f) -> %s\n",
              profile.peak(), request.p_max_mw,
              check_power(soc, schedule, request.p_max_mw).empty()
                  ? "OK"
                  : "VIOLATION");

  // 5. Round-trip the (re-placed) SOC back to text.
  std::printf("\nre-placed SOC description:\n%s", write_soc(soc).c_str());
  return 0;
}
