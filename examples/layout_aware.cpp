// Layout-aware architecture design: the place-and-route side of the
// DAC 2000 formulation. Routes the test bus trunks across the placed die
// (avoiding core macros), derives per-core detour distances, and optimizes
// the assignment under a detour limit d_max. Renders the floorplan with the
// routed trunks.
//
//   $ ./build/examples/layout_aware [d_max]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "layout/bus_planner.hpp"
#include "soc/builtin.hpp"
#include "tam/architect.hpp"

using namespace soctest;

int main(int argc, char** argv) {
  const Soc soc = builtin_soc1();
  const int d_max = argc > 1 ? std::atoi(argv[1]) : 20;
  const int num_buses = 3;

  // Route the trunks and draw them on the floorplan ('0'..'2' = bus id).
  const BusPlan plan = plan_buses(soc, num_buses);
  const DieGrid grid(soc);
  std::vector<std::pair<Point, char>> overlay;
  for (const auto& bus : plan.buses) {
    for (const auto& p : bus.trunk.cells) {
      overlay.emplace_back(p, static_cast<char>('0' + bus.index));
    }
  }
  std::printf("floorplan %dx%d ('#' core macro, digits = bus trunks):\n\n",
              soc.die_width(), soc.die_height());
  std::cout << grid.render(overlay) << "\n";

  std::printf("core-to-trunk detour distances (grid edges):\n");
  std::printf("%-8s", "core");
  for (int j = 0; j < num_buses; ++j) std::printf("  bus%d", j);
  std::printf("\n");
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    std::printf("%-8s", soc.core(i).name.c_str());
    for (int j = 0; j < num_buses; ++j) {
      std::printf("  %4d", plan.distance(i, static_cast<std::size_t>(j)));
    }
    std::printf("\n");
  }

  DesignRequest request;
  request.bus_widths = {16, 16, 16};
  request.d_max = d_max;
  std::printf("\noptimizing with d_max = %d ...\n\n", d_max);
  try {
    const auto result = design_architecture(soc, request);
    if (!result.feasible) {
      std::printf("no feasible assignment under d_max = %d\n", d_max);
      return 1;
    }
    std::cout << describe_design(soc, request, result);

    // Compare against the layout-free optimum to show the constraint cost.
    DesignRequest free_request;
    free_request.bus_widths = request.bus_widths;
    const auto free_result = design_architecture(soc, free_request);
    std::printf("\nlayout-free optimum: %lld cycles; constraint overhead: %.1f%%\n",
                static_cast<long long>(free_result.assignment.makespan),
                100.0 * (static_cast<double>(result.assignment.makespan) /
                             static_cast<double>(free_result.assignment.makespan) -
                         1.0));
  } catch (const std::runtime_error& e) {
    std::printf("infeasible: %s\n", e.what());
    std::printf("try a larger d_max (e.g. %d)\n", d_max * 2);
    return 1;
  }
  return 0;
}
