// Architecture study: the full decision space a test architect faces for
// one SOC, in a single run — bus vs daisy-chain style, width scaling,
// multisite throughput, power strategy comparison (pairwise / busmax /
// idle insertion / preemption) — plus SVG and JSON artifacts.
//
//   $ ./build/examples/architecture_study [output_dir]

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>

#include "layout/stub_router.hpp"
#include "report/design_report.hpp"
#include "report/svg.hpp"
#include "sched/gantt.hpp"
#include "sched/power_sched.hpp"
#include "sched/preemptive.hpp"
#include "soc/builtin.hpp"
#include "tam/architect.hpp"
#include "tam/daisychain.hpp"
#include "tam/multisite.hpp"

using namespace soctest;

int main(int argc, char** argv) {
  const std::string out_dir = argc > 1 ? argv[1] : ".";
  const Soc soc = builtin_soc1();
  std::printf("=== architecture study: %s ===\n\n", soc.name().c_str());

  // 1. Architecture style: bus vs daisy-chain at the same widths.
  std::printf("1) TAM style (widths 16/16):\n");
  const TestTimeTable table(soc, 16);
  const TamProblem bus_problem = make_tam_problem(soc, table, {16, 16});
  const auto bus = solve_exact(bus_problem);
  const DaisychainProblem rail_problem =
      make_daisychain_problem(soc, table, {16, 16});
  const auto rail = solve_daisychain_exact(rail_problem);
  std::printf("   multiplexed bus: %lld cycles\n",
              static_cast<long long>(bus.assignment.makespan));
  std::printf("   daisy-chain:     %lld cycles (+%lld bypass overhead)\n\n",
              static_cast<long long>(rail.assignment.makespan),
              static_cast<long long>(rail.assignment.makespan -
                                     bus.assignment.makespan));

  // 2. Width scaling: how much TAM is worth buying.
  std::printf("2) width scaling (2 buses, exact width split):\n");
  for (int total : {16, 32, 48, 64}) {
    DesignRequest request;
    request.num_buses = 2;
    request.total_width = total;
    const auto result = design_architecture(soc, request);
    std::printf("   W=%2d -> %6lld cycles (widths %d/%d)\n", total,
                static_cast<long long>(result.assignment.makespan),
                result.bus_widths[0], result.bus_widths[1]);
  }
  std::printf("\n");

  // 3. Power strategies at a 1800 mW budget.
  std::printf("3) power strategy comparison (1800 mW, widths 16/16):\n");
  {
    const TamProblem pairwise =
        make_tam_problem(soc, table, {16, 16}, nullptr, -1, 1800.0);
    const auto pairwise_result = solve_exact(pairwise);
    std::printf("   pairwise serialization: %lld cycles\n",
                static_cast<long long>(pairwise_result.assignment.makespan));
    const TamProblem busmax =
        make_tam_problem(soc, table, {16, 16}, nullptr, -1, 1800.0,
                         PowerConstraintMode::kBusMaxSum);
    const auto busmax_result = solve_exact(busmax);
    std::printf("   bus-max-sum:            %lld cycles (sound for any B)\n",
                static_cast<long long>(busmax_result.assignment.makespan));
    PowerScheduleOptions idle_options;
    idle_options.p_max_mw = 1800.0;
    const auto idle = build_power_aware_schedule(
        bus_problem, soc, bus.assignment.core_to_bus, idle_options);
    std::printf("   idle insertion:         %lld cycles\n",
                static_cast<long long>(idle.schedule.makespan));
    const auto preemptive = build_preemptive_schedule(
        bus_problem, soc, bus.assignment.core_to_bus, 1800.0);
    std::printf("   preemptive LRPT:        %lld cycles (%d preemptions)\n\n",
                static_cast<long long>(preemptive.schedule.makespan),
                preemptive.preemptions);
    std::cout << render_preemptive_gantt(soc, preemptive.schedule) << "\n";
  }

  // 4. Multisite: how to load a 64-channel tester.
  std::printf("4) multisite on a 64-channel tester:\n");
  MultisiteOptions ms;
  ms.num_buses = 2;
  ms.max_sites = 8;
  const auto best = best_multisite(soc, 64, ms);
  std::printf("   best: %d sites x %d wires -> %.1f kchips/Mcycle\n\n",
              best.sites, best.width_per_site, best.throughput_kchips);

  // 5. Artifacts: SVG floorplan + JSON report of the recommended design.
  DesignRequest final_request;
  final_request.bus_widths = {16, 16};
  final_request.use_layout = true;
  final_request.p_max_mw = 1800.0;
  const auto final_design = design_architecture(soc, final_request);
  const StubRoutes stubs = route_stubs(soc, *final_design.bus_plan,
                                       final_design.assignment.core_to_bus);
  const std::string svg =
      render_floorplan_svg(soc, &*final_design.bus_plan, &stubs);
  std::ofstream(out_dir + "/floorplan.svg") << svg;
  const TamProblem final_problem = make_tam_problem(
      soc, table, final_request.bus_widths, nullptr, -1, 1800.0);
  const TestSchedule schedule =
      build_schedule(final_problem, final_design.assignment.core_to_bus);
  std::ofstream(out_dir + "/design.json")
      << design_report_json(soc, final_request, final_design, &schedule);
  std::printf("5) wrote %s/floorplan.svg and %s/design.json\n\n",
              out_dir.c_str(), out_dir.c_str());

  std::cout << "power profile of the recommended design:\n"
            << render_power_profile(soc, schedule, 1800.0) << "\n";
  return 0;
}
