// Quickstart: design a test access architecture for the built-in
// representative SOC and print the resulting assignment and schedule.
//
//   $ ./build/examples/quickstart
//
// Walks the minimal public API path: Soc -> DesignRequest ->
// design_architecture -> describe_design / render_gantt.

#include <iostream>

#include "sched/gantt.hpp"
#include "sched/schedule.hpp"
#include "soc/builtin.hpp"
#include "tam/architect.hpp"

using namespace soctest;

int main() {
  // 1. Get an SOC. Build your own with Soc::add_core, read one from a .soc
  //    file with read_soc_file, or start from the bundled benchmarks.
  const Soc soc = builtin_soc1();
  std::cout << "SOC '" << soc.name() << "' with " << soc.num_cores()
            << " cores, total test power " << soc.total_test_power()
            << " mW\n\n";

  // 2. Describe the architecture you want: here, let the optimizer split a
  //    total of 32 TAM wires across 2 test buses (exact width search).
  DesignRequest request;
  request.num_buses = 2;
  request.total_width = 32;

  // 3. Optimize. The result carries the chosen widths, the optimal core
  //    assignment, and proof status.
  const DesignResult result = design_architecture(soc, request);
  std::cout << describe_design(soc, request, result);

  // 4. Realize the schedule and draw it.
  const TestTimeTable table(soc, request.total_width);
  const TamProblem problem =
      make_tam_problem(soc, table, result.bus_widths);
  const TestSchedule schedule =
      build_schedule(problem, result.assignment.core_to_bus);
  std::cout << "\n" << render_gantt(soc, schedule);
  return 0;
}
