// Power-constrained architecture design: the scenario that motivates the
// DAC 2000 paper's power constraint. A mobile-class SOC must never draw
// more than a given test power; cores whose combined draw exceeds the
// budget are serialized onto the same bus, and the realized schedule's
// instantaneous power profile is verified against the budget.
//
//   $ ./build/examples/power_constrained [P_max_mW]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "sched/gantt.hpp"
#include "sched/power_profile.hpp"
#include "sched/schedule.hpp"
#include "soc/builtin.hpp"
#include "tam/architect.hpp"
#include "tam/power.hpp"

using namespace soctest;

int main(int argc, char** argv) {
  const Soc soc = builtin_soc1();
  const double p_max = argc > 1 ? std::atof(argv[1]) : 1700.0;
  std::printf("SOC '%s': total test power %.0f mW, budget %.0f mW\n\n",
              soc.name().c_str(), soc.total_test_power(), p_max);

  // Which cores conflict under this budget?
  const auto pairs = power_conflict_pairs(soc, p_max);
  std::printf("%zu core pairs exceed the budget together:\n", pairs.size());
  for (const auto& [i, k] : pairs) {
    std::printf("  %-8s (%4.0f mW) + %-8s (%4.0f mW) = %4.0f mW\n",
                soc.core(i).name.c_str(), soc.core(i).test_power_mw,
                soc.core(k).name.c_str(), soc.core(k).test_power_mw,
                soc.core(i).test_power_mw + soc.core(k).test_power_mw);
  }
  const auto groups = power_co_groups(soc, p_max);
  std::printf("=> %zu co-assignment group(s)\n\n", groups.size());

  // Two buses: with B=2 the pairwise constraint is an exact peak guarantee.
  DesignRequest unconstrained;
  unconstrained.bus_widths = {16, 16};
  DesignRequest constrained = unconstrained;
  constrained.p_max_mw = p_max;

  const auto free_result = design_architecture(soc, unconstrained);
  const auto power_result = design_architecture(soc, constrained);
  std::printf("unconstrained optimal test time: %lld cycles\n",
              static_cast<long long>(free_result.assignment.makespan));
  if (!power_result.feasible) {
    std::printf("NO architecture meets a %.0f mW budget\n", p_max);
    return 1;
  }
  std::printf("power-constrained optimal:       %lld cycles (+%.1f%%)\n\n",
              static_cast<long long>(power_result.assignment.makespan),
              100.0 * (static_cast<double>(power_result.assignment.makespan) /
                           static_cast<double>(free_result.assignment.makespan) -
                       1.0));
  std::cout << describe_design(soc, constrained, power_result) << "\n";

  const TestTimeTable table(soc, 16);
  const TamProblem problem = make_tam_problem(
      soc, table, power_result.bus_widths, nullptr, -1, p_max);
  const TestSchedule schedule =
      build_schedule(problem, power_result.assignment.core_to_bus);
  std::cout << render_gantt(soc, schedule) << "\n";

  const PowerProfile profile = compute_power_profile(soc, schedule);
  std::printf("schedule peak power: %.0f mW (budget %.0f mW) -> %s\n",
              profile.peak(), p_max,
              check_power(soc, schedule, p_max).empty() ? "OK" : "VIOLATION");
  std::printf("test energy: %.3g mW-cycles\n", profile.energy());
  return 0;
}
