#include <gtest/gtest.h>

#include "soc/builtin.hpp"
#include "tam/power.hpp"

namespace soctest {
namespace {

Soc power_soc(std::vector<double> powers) {
  Soc soc("p", 50, 50);
  for (std::size_t i = 0; i < powers.size(); ++i) {
    Core c;
    c.name = "c" + std::to_string(i);
    c.num_inputs = 1;
    c.num_outputs = 1;
    c.num_patterns = 1;
    c.test_power_mw = powers[i];
    soc.add_core(c);
  }
  return soc;
}

TEST(UnionFind, SingletonsInitially) {
  UnionFind uf(4);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(uf.find(i), i);
  EXPECT_EQ(uf.groups(1).size(), 4u);
  EXPECT_TRUE(uf.groups(2).empty());
}

TEST(UnionFind, UniteMerges) {
  UnionFind uf(5);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_FALSE(uf.unite(1, 0));  // already merged
  EXPECT_TRUE(uf.unite(1, 2));
  EXPECT_EQ(uf.find(0), uf.find(2));
  EXPECT_NE(uf.find(0), uf.find(3));
  const auto groups = uf.groups(2);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 1, 2}));
}

TEST(UnionFind, TransitiveClosure) {
  UnionFind uf(6);
  uf.unite(0, 5);
  uf.unite(5, 3);
  uf.unite(2, 4);
  EXPECT_EQ(uf.find(0), uf.find(3));
  EXPECT_EQ(uf.find(2), uf.find(4));
  EXPECT_NE(uf.find(0), uf.find(2));
  EXPECT_EQ(uf.groups(2).size(), 2u);
}

TEST(PowerConflicts, NoBudgetNoPairs) {
  const Soc soc = power_soc({100, 200, 300});
  EXPECT_TRUE(power_conflict_pairs(soc, -1).empty());
  EXPECT_TRUE(power_co_groups(soc, -1).empty());
}

TEST(PowerConflicts, PairsAboveBudget) {
  const Soc soc = power_soc({100, 200, 300});
  // Budget 450: 200+300=500 conflicts; 100+300=400 and 100+200=300 do not.
  const auto pairs = power_conflict_pairs(soc, 450);
  ASSERT_EQ(pairs.size(), 1u);
  EXPECT_EQ(pairs[0], (std::pair<std::size_t, std::size_t>{1, 2}));
}

TEST(PowerConflicts, LowBudgetConflictsEverything) {
  const Soc soc = power_soc({100, 200, 300});
  const auto pairs = power_conflict_pairs(soc, 250);
  EXPECT_EQ(pairs.size(), 3u);
  const auto groups = power_co_groups(soc, 250);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 3u);
}

TEST(PowerConflicts, GroupsAreTransitive) {
  // 400+400 > 700 and 400+350 > 700, but 350+300 <= 700: chain still groups
  // all three high cores through the shared member.
  const Soc soc = power_soc({400, 400, 350, 100});
  const auto groups = power_co_groups(soc, 700);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0], (std::vector<std::size_t>{0, 1, 2}));
}

TEST(PowerConflicts, OverbudgetCores) {
  const Soc soc = power_soc({100, 900, 300});
  const auto over = overbudget_cores(soc, 500);
  ASSERT_EQ(over.size(), 1u);
  EXPECT_EQ(over[0], 1u);
  EXPECT_TRUE(overbudget_cores(soc, -1).empty());
  EXPECT_TRUE(overbudget_cores(soc, 1000).empty());
}

TEST(PowerConflicts, BuiltinSocSweep) {
  const Soc soc = builtin_soc1();
  // Sweeping the budget down can only grow the conflict set.
  std::size_t prev = 0;
  for (double budget : {3000.0, 2000.0, 1500.0, 1200.0, 1000.0}) {
    const auto pairs = power_conflict_pairs(soc, budget);
    EXPECT_GE(pairs.size(), prev);
    prev = pairs.size();
  }
  // At the total power, nothing conflicts.
  EXPECT_TRUE(power_conflict_pairs(soc, soc.total_test_power()).empty());
}

}  // namespace
}  // namespace soctest
