#include <gtest/gtest.h>

#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/tam_problem.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

class TamProblemBuilt : public ::testing::Test {
 protected:
  void SetUp() override {
    soc_ = builtin_soc1();
    table_.emplace(soc_, 32);
  }
  Soc soc_;
  std::optional<TestTimeTable> table_;
};

TEST_F(TamProblemBuilt, UnconstrainedShapes) {
  const TamProblem p = make_tam_problem(soc_, *table_, {16, 8, 8});
  EXPECT_EQ(p.num_cores(), 10u);
  EXPECT_EQ(p.num_buses(), 3u);
  EXPECT_EQ(p.validate(), "");
  EXPECT_TRUE(p.co_groups.empty());
  EXPECT_TRUE(p.wire_cost.empty());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(p.time[i][0], table_->time(i, 16));
    EXPECT_EQ(p.time[i][1], table_->time(i, 8));
    for (std::size_t j = 0; j < 3; ++j) EXPECT_TRUE(p.allowed[i][j]);
  }
}

TEST_F(TamProblemBuilt, WidthOutsideTableThrows) {
  EXPECT_THROW(make_tam_problem(soc_, *table_, {64, 8}), std::invalid_argument);
  EXPECT_THROW(make_tam_problem(soc_, *table_, {0, 8}), std::invalid_argument);
  EXPECT_THROW(make_tam_problem(soc_, *table_, {}), std::invalid_argument);
}

TEST_F(TamProblemBuilt, PowerBudgetCreatesGroups) {
  // 1200 mW: s38417 (1144) conflicts with almost everything.
  const TamProblem p = make_tam_problem(soc_, *table_, {8, 8}, nullptr, -1, 1500);
  EXPECT_FALSE(p.co_groups.empty());
}

TEST_F(TamProblemBuilt, OverbudgetCoreThrows) {
  // s38417 needs 1144 mW.
  EXPECT_THROW(make_tam_problem(soc_, *table_, {8, 8}, nullptr, -1, 1000),
               std::runtime_error);
}

TEST_F(TamProblemBuilt, LayoutConstraintsFlowThrough) {
  const BusPlan plan = plan_buses(soc_, 2);
  const LayoutConstraints layout(plan, soc_.num_cores(), -1);
  const TamProblem p =
      make_tam_problem(soc_, *table_, {16, 16}, &layout, 100);
  EXPECT_FALSE(p.wire_cost.empty());
  EXPECT_EQ(p.wire_budget, 100);
  for (std::size_t i = 0; i < p.num_cores(); ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      EXPECT_EQ(static_cast<bool>(p.allowed[i][j]), layout.allowed(i, j));
      if (layout.distance(i, j) >= 0) {
        EXPECT_EQ(p.wire_cost[i][j], layout.distance(i, j));
      }
    }
  }
}

TEST_F(TamProblemBuilt, UnconnectableCoreThrows) {
  const BusPlan plan = plan_buses(soc_, 2);
  const LayoutConstraints layout(plan, soc_.num_cores(), 0);
  EXPECT_THROW(make_tam_problem(soc_, *table_, {16, 16}, &layout),
               std::runtime_error);
}

TEST(TamProblem, MakespanComputation) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{10, 20}, {30, 5}, {7, 7}};
  p.allowed = {{1, 1}, {1, 1}, {1, 1}};
  EXPECT_EQ(p.makespan({0, 1, 0}), 17);  // bus0: 10+7, bus1: 5
  EXPECT_EQ(p.makespan({0, 0, 0}), 47);
  EXPECT_EQ(p.makespan({1, 1, 1}), 32);
}

TEST(TamProblem, CheckAssignmentViolations) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{10, 20}, {30, 5}};
  p.allowed = {{1, 0}, {1, 1}};
  p.co_groups = {{0, 1}};
  EXPECT_NE(p.check_assignment({0}), "");            // size mismatch
  EXPECT_NE(p.check_assignment({0, 2}), "");         // unknown bus
  EXPECT_NE(p.check_assignment({1, 1}), "");         // forbidden pair
  EXPECT_NE(p.check_assignment({0, 1}), "");         // split co-group
  EXPECT_EQ(p.check_assignment({0, 0}), "");
}

TEST(TamProblem, CheckAssignmentWireBudget) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{10, 20}, {30, 5}};
  p.allowed = {{1, 1}, {1, 1}};
  p.wire_cost = {{5, 1}, {4, 9}};
  p.wire_budget = 6;
  EXPECT_EQ(p.check_assignment({1, 0}), "");   // 1 + 4 = 5 <= 6
  EXPECT_NE(p.check_assignment({0, 1}), "");   // 5 + 9 = 14 > 6
}

TEST(TamProblem, ValidateCatchesShapeErrors) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{10, 20}, {30, 5}};
  p.allowed = {{1, 1}};  // wrong row count
  EXPECT_NE(p.validate(), "");
  p.allowed = {{1, 1}, {1, 1}};
  EXPECT_EQ(p.validate(), "");
  p.co_groups = {{0}, {1}};
  EXPECT_NE(p.validate(), "");  // group of size < 2
  p.co_groups = {{0, 1}, {1, 0}};
  EXPECT_NE(p.validate(), "");  // core in two groups
}

TEST(TamProblem, LowerBoundNeverExceedsOptimum) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    testutil::RandomProblemOptions options;
    options.num_cores = 5;
    options.num_buses = 2;
    options.forbid_probability = 0.2;
    const TamProblem p = testutil::random_problem(rng, options);
    const Cycles brute = testutil::brute_force_makespan(p);
    if (brute < 0) continue;
    EXPECT_LE(p.lower_bound(), brute);
  }
}

TEST(TamProblem, LowerBoundTightForSymmetricSingleCore) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{100, 100}};
  p.allowed = {{1, 1}};
  EXPECT_EQ(p.lower_bound(), 100);
  EXPECT_EQ(testutil::brute_force_makespan(p), 100);
}

}  // namespace
}  // namespace soctest
