#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "soc/builtin.hpp"
#include "tam/daisychain.hpp"
#include "tam/exact_solver.hpp"

namespace soctest {
namespace {

DaisychainProblem tiny(std::vector<Cycles> times, std::vector<Cycles> patterns,
                       std::size_t rails) {
  DaisychainProblem p;
  p.rail_widths.assign(rails, 8);
  p.patterns = std::move(patterns);
  for (Cycles t : times) {
    p.time.push_back(std::vector<Cycles>(rails, t));
  }
  return p;
}

/// Exhaustive reference.
Cycles brute_force(const DaisychainProblem& p) {
  const std::size_t n = p.num_cores();
  const std::size_t b = p.num_rails();
  std::vector<int> assignment(n, 0);
  Cycles best = -1;
  while (true) {
    const Cycles m = p.makespan(assignment);
    if (best < 0 || m < best) best = m;
    std::size_t pos = 0;
    while (pos < n) {
      if (static_cast<std::size_t>(++assignment[pos]) < b) break;
      assignment[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return best;
}

TEST(Daisychain, MakespanIncludesBypassOverhead) {
  // Two cores on one rail: load = t0 + t1 + 1*(p0+1 + p1+1).
  DaisychainProblem p = tiny({100, 50}, {10, 5}, 1);
  EXPECT_EQ(p.makespan({0, 0}), 100 + 50 + (11 + 6));
  // Alone on a rail: no overhead.
  DaisychainProblem q = tiny({100, 50}, {10, 5}, 2);
  EXPECT_EQ(q.makespan({0, 1}), 100);
}

TEST(Daisychain, ThreeCoresScaleOverheadQuadratically) {
  DaisychainProblem p = tiny({10, 10, 10}, {4, 4, 4}, 1);
  // load = 30 + 2 * (5*3) = 60.
  EXPECT_EQ(p.makespan({0, 0, 0}), 60);
}

TEST(Daisychain, ExactHandComputed) {
  // Overheads make consolidation costly: 2 rails, cores {100,90,20,10},
  // patterns all 9 (p+1 = 10).
  DaisychainProblem p = tiny({100, 90, 20, 10}, {9, 9, 9, 9}, 2);
  const auto r = solve_daisychain_exact(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proved_optimal);
  EXPECT_EQ(r.assignment.makespan, brute_force(p));
}

TEST(Daisychain, ExactMatchesBruteForceRandomized) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    Rng rng(seed);
    const std::size_t n = 6, b = 2;
    std::vector<Cycles> times, patterns;
    for (std::size_t i = 0; i < n; ++i) {
      times.push_back(rng.uniform_int(10, 400));
      patterns.push_back(rng.uniform_int(1, 60));
    }
    const DaisychainProblem p = tiny(times, patterns, b);
    const auto r = solve_daisychain_exact(p);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.assignment.makespan, brute_force(p)) << "seed " << seed;
  }
}

TEST(Daisychain, GreedyNeverBeatsExact) {
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    Rng rng(seed);
    std::vector<Cycles> times, patterns;
    for (int i = 0; i < 9; ++i) {
      times.push_back(rng.uniform_int(10, 500));
      patterns.push_back(rng.uniform_int(1, 100));
    }
    const DaisychainProblem p = tiny(times, patterns, 3);
    const auto exact = solve_daisychain_exact(p);
    const auto greedy = solve_daisychain_greedy(p);
    ASSERT_TRUE(exact.feasible && greedy.feasible);
    EXPECT_GE(greedy.assignment.makespan, exact.assignment.makespan);
  }
}

TEST(Daisychain, BusArchitectureDominatesOnPatternHeavySocs) {
  // The paper's multiplexed bus avoids bypass overhead entirely, so at the
  // same widths the bus optimum is never worse.
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 16);
  const std::vector<int> widths{16, 16};
  const DaisychainProblem rail = make_daisychain_problem(soc, table, widths);
  const TamProblem bus = make_tam_problem(soc, table, widths);
  const auto rail_result = solve_daisychain_exact(rail);
  const auto bus_result = solve_exact(bus);
  ASSERT_TRUE(rail_result.feasible && bus_result.feasible);
  EXPECT_GE(rail_result.assignment.makespan, bus_result.assignment.makespan);
  // The gap is the total bypass overhead of the critical rail — nonzero
  // whenever some rail carries more than one core.
  EXPECT_GT(rail_result.assignment.makespan, bus_result.assignment.makespan);
}

TEST(Daisychain, NodeCapDegradesGracefully) {
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 8);
  const DaisychainProblem p = make_daisychain_problem(soc, table, {8, 8, 8});
  const auto r = solve_daisychain_exact(p, 5);
  EXPECT_FALSE(r.proved_optimal);
}

TEST(Daisychain, MakeProblemRejectsBadWidths) {
  const Soc soc = builtin_soc2();
  const TestTimeTable table(soc, 8);
  EXPECT_THROW(make_daisychain_problem(soc, table, {}), std::invalid_argument);
  EXPECT_THROW(make_daisychain_problem(soc, table, {16}), std::invalid_argument);
}

}  // namespace
}  // namespace soctest
