#include <gtest/gtest.h>

#include "sched/gantt.hpp"
#include "sched/schedule.hpp"
#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

TamProblem small_problem() {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{40, 40}, {30, 30}, {20, 20}, {10, 10}};
  p.allowed.assign(4, {1, 1});
  return p;
}

TEST(Schedule, BackToBackPerBus) {
  const TamProblem p = small_problem();
  const std::vector<int> assignment{0, 1, 0, 1};
  const TestSchedule s = build_schedule(p, assignment);
  EXPECT_EQ(s.validate(p, assignment), "");
  EXPECT_EQ(s.makespan, 60);  // bus0: 40+20, bus1: 30+10
  const auto bus0 = s.bus_tests(0);
  ASSERT_EQ(bus0.size(), 2u);
  EXPECT_EQ(bus0[0].start, 0);
  EXPECT_EQ(bus0[0].end, 40);
  EXPECT_EQ(bus0[1].start, 40);
  EXPECT_EQ(bus0[1].end, 60);
}

TEST(Schedule, DefaultOrderIsLongestFirst) {
  const TamProblem p = small_problem();
  const std::vector<int> assignment{0, 0, 0, 0};
  const TestSchedule s = build_schedule(p, assignment);
  const auto tests = s.bus_tests(0);
  ASSERT_EQ(tests.size(), 4u);
  for (std::size_t k = 1; k < tests.size(); ++k) {
    EXPECT_GE(tests[k - 1].end - tests[k - 1].start,
              tests[k].end - tests[k].start);
  }
}

TEST(Schedule, MakespanMatchesProblem) {
  Rng rng(3);
  testutil::RandomProblemOptions options;
  options.num_cores = 7;
  options.num_buses = 3;
  const TamProblem p = testutil::random_problem(rng, options);
  const auto r = solve_exact(p);
  ASSERT_TRUE(r.feasible);
  const TestSchedule s = build_schedule(p, r.assignment.core_to_bus);
  EXPECT_EQ(s.makespan, r.assignment.makespan);
  EXPECT_EQ(s.validate(p, r.assignment.core_to_bus), "");
}

TEST(Schedule, ExplicitOrderRespected) {
  const TamProblem p = small_problem();
  const std::vector<int> assignment{0, 0, 0, 0};
  const std::vector<std::vector<std::size_t>> orders{{3, 1, 0, 2}, {}};
  const TestSchedule s = build_schedule(p, assignment, orders);
  const auto tests = s.bus_tests(0);
  ASSERT_EQ(tests.size(), 4u);
  EXPECT_EQ(tests[0].core, 3u);
  EXPECT_EQ(tests[1].core, 1u);
  EXPECT_EQ(tests[2].core, 0u);
  EXPECT_EQ(tests[3].core, 2u);
  EXPECT_EQ(s.validate(p, assignment), "");
}

TEST(Schedule, ExplicitOrderContradictionsThrow) {
  const TamProblem p = small_problem();
  const std::vector<int> assignment{0, 0, 1, 1};
  // Core 2 listed on bus 0 though assigned to bus 1.
  EXPECT_THROW(build_schedule(p, assignment, {{0, 1, 2}, {3}}),
               std::invalid_argument);
  // Missing core 1 on bus 0.
  EXPECT_THROW(build_schedule(p, assignment, {{0}, {2, 3}}),
               std::invalid_argument);
}

TEST(Schedule, AssignmentSizeMismatchThrows) {
  const TamProblem p = small_problem();
  EXPECT_THROW(build_schedule(p, {0, 1}), std::invalid_argument);
}

TEST(Schedule, ValidateCatchesTampering) {
  const TamProblem p = small_problem();
  const std::vector<int> assignment{0, 1, 0, 1};
  TestSchedule s = build_schedule(p, assignment);
  s.tests[0].end += 5;  // wrong duration
  EXPECT_NE(s.validate(p, assignment), "");
}

TEST(Gantt, RendersOneRowPerBus) {
  const TamProblem p = small_problem();
  const Soc soc = builtin_soc2();  // only names are used; 4 cores needed
  const std::vector<int> assignment{0, 1, 0, 1};
  const TestSchedule s = build_schedule(p, assignment);
  const std::string art = render_gantt(soc, s, 40);
  EXPECT_NE(art.find("bus 0"), std::string::npos);
  EXPECT_NE(art.find("bus 1"), std::string::npos);
  EXPECT_NE(art.find("cycles"), std::string::npos);
}

TEST(Gantt, EmptyScheduleHandled) {
  const Soc soc = builtin_soc2();
  EXPECT_EQ(render_gantt(soc, TestSchedule{}), "(empty schedule)\n");
}

TEST(PowerPlot, DrawsBudgetLineAndArea) {
  const Soc soc = builtin_soc2();
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{40, 40}, {30, 30}, {20, 20}, {10, 10}};
  p.allowed.assign(4, {1, 1});
  const TestSchedule s = build_schedule(p, {0, 1, 0, 1});
  const std::string art = render_power_profile(soc, s, 900.0, 40, 6);
  EXPECT_NE(art.find("<- budget"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
  EXPECT_NE(art.find("[mW]"), std::string::npos);
  EXPECT_NE(art.find("cycles"), std::string::npos);
}

TEST(PowerPlot, NoBudgetLineWhenUnbounded) {
  const Soc soc = builtin_soc2();
  TamProblem p;
  p.bus_widths = {8};
  p.time = {{40}};
  p.allowed = {{1}};
  const TestSchedule s = build_schedule(p, {0});
  const std::string art = render_power_profile(soc, s, -1.0, 30, 5);
  EXPECT_EQ(art.find("<- budget"), std::string::npos);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(PowerPlot, EmptyScheduleHandled) {
  const Soc soc = builtin_soc2();
  EXPECT_EQ(render_power_profile(soc, TestSchedule{}), "(empty schedule)\n");
}

}  // namespace
}  // namespace soctest
