#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sched/sessions.hpp"
#include "soc/builtin.hpp"

namespace soctest {
namespace {

/// Exhaustive reference over all set partitions (small N): minimal sum of
/// session maxima under the per-session power budget.
Cycles brute_force_sessions(const std::vector<Cycles>& times,
                            const std::vector<double>& powers, double p_max) {
  const std::size_t n = times.size();
  std::vector<int> block(n, 0);
  Cycles best = -1;
  // Enumerate restricted growth strings (canonical set partitions).
  std::function<void(std::size_t, int)> recurse = [&](std::size_t k, int max_block) {
    if (k == n) {
      std::vector<Cycles> session_max(static_cast<std::size_t>(max_block) + 1, 0);
      std::vector<double> session_power(static_cast<std::size_t>(max_block) + 1, 0);
      for (std::size_t i = 0; i < n; ++i) {
        auto b = static_cast<std::size_t>(block[i]);
        session_max[b] = std::max(session_max[b], times[i]);
        session_power[b] += powers[i];
      }
      Cycles total = 0;
      for (std::size_t b = 0; b <= static_cast<std::size_t>(max_block); ++b) {
        if (p_max >= 0 && session_power[b] > p_max + 1e-9) return;
        total += session_max[b];
      }
      if (best < 0 || total < best) best = total;
      return;
    }
    for (int b = 0; b <= max_block + 1; ++b) {
      block[k] = b;
      recurse(k + 1, std::max(max_block, b));
    }
  };
  recurse(0, -1);
  return best;
}

TEST(Sessions, NoBudgetOneSession) {
  const auto r = schedule_sessions_exact({50, 30, 20}, {100, 100, 100}, -1);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.total_time, 50);  // all concurrent
  EXPECT_EQ(r.schedule.sessions.size(), 1u);
}

TEST(Sessions, BudgetForcesSplit) {
  // Budget 250: at most two 100 mW cores per session... 2*100+?=300>250,
  // so sessions of <=2 cores.
  const auto r = schedule_sessions_exact({50, 30, 20}, {100, 100, 100}, 250);
  ASSERT_TRUE(r.feasible);
  // Optimal: {50,30} (200mW) + {20} -> 70; or {50,20}+{30} -> 80. Best 70.
  EXPECT_EQ(r.schedule.total_time, 70);
  EXPECT_EQ(check_sessions({50, 30, 20}, {100, 100, 100}, 250, r.schedule), "");
}

TEST(Sessions, UntestableCoreInfeasible) {
  EXPECT_FALSE(schedule_sessions_exact({10}, {900}, 500).feasible);
  EXPECT_FALSE(schedule_sessions_greedy({10}, {900}, 500).feasible);
}

TEST(Sessions, GreedyNeverBeatsExact) {
  Rng rng(3);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<Cycles> times;
    std::vector<double> powers;
    for (int i = 0; i < 9; ++i) {
      times.push_back(rng.uniform_int(10, 300));
      powers.push_back(rng.uniform(50, 400));
    }
    const double budget = rng.uniform(450, 900);
    const auto exact = schedule_sessions_exact(times, powers, budget);
    const auto greedy = schedule_sessions_greedy(times, powers, budget);
    ASSERT_TRUE(exact.feasible && greedy.feasible);
    EXPECT_GE(greedy.schedule.total_time, exact.schedule.total_time);
    EXPECT_EQ(check_sessions(times, powers, budget, greedy.schedule), "");
  }
}

TEST(Sessions, ExactMatchesBruteForce) {
  Rng rng(7);
  for (int trial = 0; trial < 12; ++trial) {
    std::vector<Cycles> times;
    std::vector<double> powers;
    for (int i = 0; i < 7; ++i) {
      times.push_back(rng.uniform_int(10, 200));
      powers.push_back(rng.uniform(50, 400));
    }
    const double budget = rng.uniform(420, 800);
    const auto exact = schedule_sessions_exact(times, powers, budget);
    const Cycles brute = brute_force_sessions(times, powers, budget);
    ASSERT_TRUE(exact.feasible);
    EXPECT_EQ(exact.schedule.total_time, brute) << "trial " << trial;
    EXPECT_EQ(check_sessions(times, powers, budget, exact.schedule), "");
  }
}

TEST(Sessions, CheckCatchesViolations) {
  SessionSchedule bad;
  bad.sessions = {{0, 1}, {1}};  // core 1 twice, core 2 missing
  bad.total_time = 0;
  EXPECT_NE(check_sessions({10, 20, 30}, {1, 1, 1}, -1, bad), "");
}

TEST(Sessions, Soc1EndToEnd) {
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 16);
  const auto times = session_times(soc, table, 16);
  const auto powers = session_powers(soc);
  const auto r = schedule_sessions_exact(times, powers, 2000);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proved_optimal);
  EXPECT_EQ(check_sessions(times, powers, 2000, r.schedule), "");
  // Tighter budgets cost time.
  const auto tight = schedule_sessions_exact(times, powers, 1400);
  ASSERT_TRUE(tight.feasible);
  EXPECT_GE(tight.schedule.total_time, r.schedule.total_time);
}

}  // namespace
}  // namespace soctest
