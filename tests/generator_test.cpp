#include <gtest/gtest.h>

#include "soc/generator.hpp"
#include "soc/soc_format.hpp"

namespace soctest {
namespace {

class GeneratorSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GeneratorSeeds, ProducesValidPlacedSoc) {
  Rng rng(GetParam());
  SocGeneratorOptions options;
  const Soc soc = generate_soc(options, rng);
  EXPECT_EQ(soc.validate(), "");
  EXPECT_EQ(soc.num_cores(), 10u);
  EXPECT_TRUE(soc.has_placement());
}

TEST_P(GeneratorSeeds, RespectsParameterRanges) {
  Rng rng(GetParam());
  SocGeneratorOptions options;
  options.num_cores = 6;
  options.min_patterns = 20;
  options.max_patterns = 30;
  options.min_power_mw = 500;
  options.max_power_mw = 600;
  const Soc soc = generate_soc(options, rng);
  for (const auto& c : soc.cores()) {
    EXPECT_GE(c.num_patterns, 20);
    EXPECT_LE(c.num_patterns, 30);
    EXPECT_GE(c.test_power_mw, 500);
    EXPECT_LT(c.test_power_mw, 600);
  }
}

TEST_P(GeneratorSeeds, Deterministic) {
  Rng rng1(GetParam()), rng2(GetParam());
  SocGeneratorOptions options;
  EXPECT_EQ(write_soc(generate_soc(options, rng1)),
            write_soc(generate_soc(options, rng2)));
}

TEST_P(GeneratorSeeds, RoundTripsThroughTextFormat) {
  Rng rng(GetParam());
  const Soc soc = generate_soc(SocGeneratorOptions{}, rng);
  const Soc parsed = read_soc_string(write_soc(soc));
  EXPECT_EQ(write_soc(parsed), write_soc(soc));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeneratorSeeds,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(Generator, AllCombinationalFraction) {
  Rng rng(99);
  SocGeneratorOptions options;
  options.combinational_fraction = 1.0;
  const Soc soc = generate_soc(options, rng);
  for (const auto& c : soc.cores()) EXPECT_TRUE(c.scan_chain_lengths.empty());
}

TEST(Generator, NoCombinationalCores) {
  Rng rng(99);
  SocGeneratorOptions options;
  options.combinational_fraction = 0.0;
  const Soc soc = generate_soc(options, rng);
  for (const auto& c : soc.cores()) EXPECT_FALSE(c.scan_chain_lengths.empty());
}

TEST(Generator, UnplacedWhenRequested) {
  Rng rng(7);
  SocGeneratorOptions options;
  options.place = false;
  EXPECT_FALSE(generate_soc(options, rng).has_placement());
}

TEST(Generator, RejectsNonPositiveCoreCount) {
  Rng rng(1);
  SocGeneratorOptions options;
  options.num_cores = 0;
  EXPECT_THROW(generate_soc(options, rng), std::invalid_argument);
}

TEST(Generator, LargeInstanceStillValid) {
  Rng rng(123);
  SocGeneratorOptions options;
  options.num_cores = 40;
  const Soc soc = generate_soc(options, rng);
  EXPECT_EQ(soc.validate(), "");
  EXPECT_EQ(soc.num_cores(), 40u);
}

TEST(ShelfPlace, KeepsChannelBetweenCores) {
  Rng rng(5);
  SocGeneratorOptions options;
  options.num_cores = 12;
  options.channel = 3;
  const Soc soc = generate_soc(options, rng);
  // Expand each core by channel/2 on each side: still no overlap because the
  // packer reserved `channel` between footprints.
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    for (std::size_t j = i + 1; j < soc.num_cores(); ++j) {
      const auto& a = soc.placement(i).origin;
      const auto& b = soc.placement(j).origin;
      const auto& ca = soc.core(i);
      const auto& cb = soc.core(j);
      const bool gap_x = a.x + ca.width + options.channel <= b.x ||
                         b.x + cb.width + options.channel <= a.x;
      const bool gap_y = a.y + ca.height + options.channel <= b.y ||
                         b.y + cb.height + options.channel <= a.y;
      EXPECT_TRUE(gap_x || gap_y)
          << "cores " << i << " and " << j << " lack a routing channel";
    }
  }
}

}  // namespace
}  // namespace soctest
