#include <gtest/gtest.h>

#include "layout/constraints.hpp"
#include "soc/builtin.hpp"

namespace soctest {
namespace {

class LayoutConstraintsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    soc_ = builtin_soc1();
    plan_ = plan_buses(soc_, 3);
  }
  Soc soc_;
  BusPlan plan_;
};

TEST_F(LayoutConstraintsTest, UnlimitedAllowsAllReachable) {
  const LayoutConstraints lc(plan_, soc_.num_cores(), -1);
  for (std::size_t i = 0; i < soc_.num_cores(); ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(lc.allowed(i, j), lc.distance(i, j) >= 0);
    }
  }
  EXPECT_TRUE(lc.all_cores_connectable());
}

TEST_F(LayoutConstraintsTest, TighterDmaxAllowsSubset) {
  const LayoutConstraints loose(plan_, soc_.num_cores(), 30);
  const LayoutConstraints tight(plan_, soc_.num_cores(), 8);
  for (std::size_t i = 0; i < soc_.num_cores(); ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      if (tight.allowed(i, j)) EXPECT_TRUE(loose.allowed(i, j));
    }
  }
}

TEST_F(LayoutConstraintsTest, DmaxZeroKeepsOnlyAdjacentCores) {
  const LayoutConstraints lc(plan_, soc_.num_cores(), 0);
  for (std::size_t i = 0; i < soc_.num_cores(); ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_EQ(lc.allowed(i, j), lc.distance(i, j) == 0);
    }
  }
}

TEST_F(LayoutConstraintsTest, DisconnectedCoresReported) {
  const LayoutConstraints lc(plan_, soc_.num_cores(), 0);
  const auto disconnected = lc.disconnected_cores();
  // With d_max = 0 only cores touching a trunk remain connectable; on soc1
  // at least one core must be away from every trunk.
  EXPECT_FALSE(lc.all_cores_connectable());
  EXPECT_FALSE(disconnected.empty());
}

TEST_F(LayoutConstraintsTest, WirelengthSumsDistances) {
  const LayoutConstraints lc(plan_, soc_.num_cores(), -1);
  std::vector<int> assignment(soc_.num_cores(), 0);
  long long expect = 0;
  for (std::size_t i = 0; i < soc_.num_cores(); ++i) {
    expect += lc.distance(i, 0);
  }
  EXPECT_EQ(lc.assignment_wirelength(assignment), expect);
}

TEST_F(LayoutConstraintsTest, WirelengthRejectsBadAssignments) {
  const LayoutConstraints lc(plan_, soc_.num_cores(), -1);
  EXPECT_THROW(lc.assignment_wirelength({}), std::invalid_argument);
  std::vector<int> bad_bus(soc_.num_cores(), 7);
  EXPECT_THROW(lc.assignment_wirelength(bad_bus), std::invalid_argument);
}

TEST_F(LayoutConstraintsTest, ChoosingNearestBusMinimizesWirelength) {
  const LayoutConstraints lc(plan_, soc_.num_cores(), -1);
  std::vector<int> nearest(soc_.num_cores(), 0);
  for (std::size_t i = 0; i < soc_.num_cores(); ++i) {
    for (std::size_t j = 1; j < 3; ++j) {
      if (lc.distance(i, j) >= 0 &&
          lc.distance(i, j) < lc.distance(i, static_cast<std::size_t>(nearest[i]))) {
        nearest[i] = static_cast<int>(j);
      }
    }
  }
  const long long best = lc.assignment_wirelength(nearest);
  std::vector<int> all_zero(soc_.num_cores(), 0);
  EXPECT_LE(best, lc.assignment_wirelength(all_zero));
}

}  // namespace
}  // namespace soctest
