#include <gtest/gtest.h>

#include "tam/exact_solver.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

/// Brute-force reference for the lexicographic objective: among feasible
/// assignments with makespan <= cap, the minimum total wire cost.
long long brute_min_wire(const TamProblem& problem, Cycles cap) {
  const std::size_t n = problem.num_cores();
  const std::size_t b = problem.num_buses();
  std::vector<int> assignment(n, 0);
  long long best = -1;
  while (true) {
    if (problem.check_assignment(assignment).empty() &&
        problem.makespan(assignment) <= cap) {
      long long wire = 0;
      for (std::size_t i = 0; i < n; ++i) {
        wire += problem.wire_cost[i][static_cast<std::size_t>(assignment[i])];
      }
      if (best < 0 || wire < best) best = wire;
    }
    std::size_t pos = 0;
    while (pos < n) {
      if (static_cast<std::size_t>(++assignment[pos]) < b) break;
      assignment[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return best;
}

long long wire_of(const TamProblem& problem, const std::vector<int>& assignment) {
  long long wire = 0;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    wire += problem.wire_cost[i][static_cast<std::size_t>(assignment[i])];
  }
  return wire;
}

TEST(LexSolver, RequiresWireCosts) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{10, 10}};
  p.allowed = {{1, 1}};
  EXPECT_THROW(solve_exact_min_wire(p, 100), std::invalid_argument);
  // lex falls back to the plain result without wire costs.
  const auto r = solve_exact_lex(p);
  EXPECT_TRUE(r.feasible);
}

TEST(LexSolver, PicksCheapWiringAmongTies) {
  // Both buses give the same makespan; wiring should break the tie.
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{10, 10}, {10, 10}};
  p.allowed.assign(2, {1, 1});
  p.wire_cost = {{5, 1}, {1, 5}};
  const auto r = solve_exact_lex(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.assignment.makespan, 10);
  EXPECT_EQ(wire_of(p, r.assignment.core_to_bus), 2);  // 1 + 1
}

TEST(LexSolver, NeverTradesMakespanForWire) {
  // Putting both cores on bus 0 would halve the wire but double the time.
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{100, 100}, {100, 100}};
  p.allowed.assign(2, {1, 1});
  p.wire_cost = {{0, 50}, {0, 50}};
  const auto r = solve_exact_lex(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.assignment.makespan, 100);  // still parallel
}

TEST(MinWireSolver, RespectsCap) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{60, 60}, {50, 50}, {40, 40}};
  p.allowed.assign(3, {1, 1});
  p.wire_cost = {{0, 9}, {0, 9}, {0, 9}};
  // Cap at the serial time: everything can go on cheap bus 0.
  const auto loose = solve_exact_min_wire(p, 150);
  ASSERT_TRUE(loose.feasible);
  EXPECT_EQ(wire_of(p, loose.assignment.core_to_bus), 0);
  // Cap at the optimum (90): must split, paying some wire.
  const auto tight = solve_exact_min_wire(p, 90);
  ASSERT_TRUE(tight.feasible);
  EXPECT_LE(tight.assignment.makespan, 90);
  EXPECT_GT(wire_of(p, tight.assignment.core_to_bus), 0);
  // Impossible cap.
  EXPECT_FALSE(solve_exact_min_wire(p, 50).feasible);
}

class LexVsBrute : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LexVsBrute, MatchesExhaustiveLexOptimum) {
  Rng rng(GetParam());
  testutil::RandomProblemOptions options;
  options.num_cores = 6;
  options.num_buses = 3;
  options.with_wire_budget = true;
  TamProblem p = testutil::random_problem(rng, options);
  p.wire_budget = -1;  // isolate the lex objective from the budget row
  const Cycles best_makespan = testutil::brute_force_makespan(p);
  ASSERT_GE(best_makespan, 0);
  const long long best_wire = brute_min_wire(p, best_makespan);
  const auto r = solve_exact_lex(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.assignment.makespan, best_makespan) << "seed " << GetParam();
  EXPECT_EQ(wire_of(p, r.assignment.core_to_bus), best_wire)
      << "seed " << GetParam();
}

TEST_P(LexVsBrute, WithCoGroupsAndForbiddenPairs) {
  Rng rng(GetParam() + 777);
  testutil::RandomProblemOptions options;
  options.num_cores = 5;
  options.num_buses = 2;
  options.forbid_probability = 0.2;
  options.num_co_pairs = 1;
  options.with_wire_budget = true;
  TamProblem p = testutil::random_problem(rng, options);
  p.wire_budget = -1;
  const Cycles best_makespan = testutil::brute_force_makespan(p);
  if (best_makespan < 0) {
    EXPECT_FALSE(solve_exact_lex(p).feasible);
    return;
  }
  const auto r = solve_exact_lex(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.assignment.makespan, best_makespan);
  EXPECT_EQ(wire_of(p, r.assignment.core_to_bus),
            brute_min_wire(p, best_makespan));
  EXPECT_EQ(p.check_assignment(r.assignment.core_to_bus), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, LexVsBrute,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace soctest
