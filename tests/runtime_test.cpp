#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/parallel.hpp"
#include "runtime/deadline.hpp"
#include "runtime/failpoint.hpp"
#include "runtime/status.hpp"

namespace soctest {
namespace {

// ---------------------------------------------------------------- Status --

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "ok");
}

TEST(Status, RendersCodeAndMessage) {
  const Status s = parse_error("camchip.soc:12:7: expected integer");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.to_string(), "parse_error: camchip.soc:12:7: expected integer");
}

TEST(Status, ExitCodeMapping) {
  EXPECT_EQ(exit_code_for(Status::Ok()), kExitSuccess);
  EXPECT_EQ(exit_code_for(invalid_argument_error("x")), kExitUsage);
  EXPECT_EQ(exit_code_for(not_found_error("x")), kExitInputError);
  EXPECT_EQ(exit_code_for(parse_error("x")), kExitInputError);
  EXPECT_EQ(exit_code_for(resource_exhausted_error("x")), kExitInputError);
  EXPECT_EQ(exit_code_for(io_error("x")), kExitIoError);
  EXPECT_EQ(exit_code_for(deadline_exceeded_error("x")), kExitDeadline);
  EXPECT_EQ(exit_code_for(cancelled_error("x")), kExitDeadline);
  EXPECT_EQ(exit_code_for(fault_injected_error("x")), kExitInternal);
  EXPECT_EQ(exit_code_for(internal_error("x")), kExitInternal);
}

TEST(Status, StatusOrCarriesValueOrStatus) {
  StatusOr<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);
  StatusOr<int> bad(not_found_error("no file"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

// ----------------------------------------------------------- certificate --

TEST(Certificate, OptimalHasZeroGap) {
  const SolveCertificate c = certify_optimal(1234);
  EXPECT_EQ(c.status, SolveStatus::kOptimal);
  EXPECT_EQ(c.lower_bound, 1234);
  EXPECT_EQ(c.upper_bound, 1234);
  EXPECT_DOUBLE_EQ(c.gap(), 0.0);
  EXPECT_EQ(c.to_string(), "optimal");
}

TEST(Certificate, BoundedReportsGap) {
  const SolveCertificate c = certify_bounded(110, 100, StopReason::kDeadline);
  EXPECT_EQ(c.status, SolveStatus::kFeasibleBounded);
  EXPECT_NEAR(c.gap(), 0.10, 1e-12);
  const std::string text = c.to_string();
  EXPECT_NE(text.find("feasible_bounded"), std::string::npos) << text;
  EXPECT_NE(text.find("gap=10.00%"), std::string::npos) << text;
  EXPECT_NE(text.find("lower_bound=100"), std::string::npos) << text;
  EXPECT_NE(text.find("stop=deadline"), std::string::npos) << text;
}

TEST(Certificate, FeasibleHasNoGap) {
  const SolveCertificate c = certify_feasible(99, StopReason::kNone);
  EXPECT_EQ(c.status, SolveStatus::kFeasible);
  EXPECT_DOUBLE_EQ(c.gap(), -1.0);  // no lower bound -> no meaningful gap
}

TEST(Certificate, InfeasibleProvenVsInterrupted) {
  const SolveCertificate proven =
      certify_infeasible(/*proven=*/true, StopReason::kDeadline);
  EXPECT_EQ(proven.stop, StopReason::kNone);  // proof implies a full search
  const SolveCertificate interrupted =
      certify_infeasible(/*proven=*/false, StopReason::kDeadline);
  EXPECT_EQ(interrupted.stop, StopReason::kDeadline);
  EXPECT_NE(interrupted.to_string().find("stop=deadline"), std::string::npos);
}

TEST(Certificate, ErrorCarriesMessage) {
  const SolveCertificate c = certify_error("all portfolio racers faulted");
  EXPECT_EQ(c.status, SolveStatus::kError);
  EXPECT_EQ(c.stop, StopReason::kFault);
  EXPECT_NE(c.to_string().find("all portfolio racers faulted"),
            std::string::npos);
}

TEST(Certificate, GapUndefinedWithoutBounds) {
  SolveCertificate c;
  EXPECT_DOUBLE_EQ(c.gap(), -1.0);
  c.lower_bound = 0;
  c.upper_bound = 10;
  EXPECT_DOUBLE_EQ(c.gap(), -1.0);  // lb 0 -> no meaningful ratio
}

// -------------------------------------------------------------- deadline --

TEST(DeadlineTest, DefaultIsInfinite) {
  const Deadline d;
  EXPECT_FALSE(d.finite());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(std::isinf(d.remaining_ms()));
}

TEST(DeadlineTest, ZeroBudgetExpiresImmediately) {
  const Deadline d = Deadline::after_ms(0);
  EXPECT_TRUE(d.finite());
  EXPECT_TRUE(d.expired());
  EXPECT_LE(d.remaining_ms(), 0.0);
}

TEST(DeadlineTest, FutureDeadlineNotExpired) {
  const Deadline d = Deadline::after_ms(60000);
  EXPECT_TRUE(d.finite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 0.0);
}

TEST(DeadlineTest, CopiesShareTheExpiryInstant) {
  const Deadline a = Deadline::after_ms(60000);
  const Deadline b = a;
  EXPECT_EQ(a.when(), b.when());
}

TEST(SolveControlTest, TrivialWhenNoSources) {
  SolveControl control;
  EXPECT_TRUE(control.trivial());
  control.deadline = Deadline::after_ms(5);
  EXPECT_FALSE(control.trivial());
}

// ------------------------------------------------------------- StopCheck --

TEST(StopCheckTest, NeverStopsWithoutSources) {
  StopCheck check(Deadline(), nullptr);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_FALSE(check.should_stop());
  }
  EXPECT_EQ(check.reason(), StopReason::kNone);
  EXPECT_FALSE(check.stopped());
}

TEST(StopCheckTest, ObservesCancellationToken) {
  CancellationToken token;
  StopCheck check(Deadline(), &token);
  EXPECT_FALSE(check.should_stop());
  token.cancel();
  EXPECT_TRUE(check.should_stop());
  EXPECT_EQ(check.reason(), StopReason::kCancelled);
}

TEST(StopCheckTest, ObservesExpiredDeadline) {
  StopCheck check(Deadline::after_ms(0), nullptr);
  EXPECT_TRUE(check.should_stop());
  EXPECT_EQ(check.reason(), StopReason::kDeadline);
}

TEST(StopCheckTest, StridedDeadlineEventuallyFires) {
  // With a stride of 64 the clock is read on polls 0, 64, 128, ... — the
  // expired deadline must be noticed within one stride of polls.
  StopCheck check(Deadline::after_ms(0), nullptr, {}, 64);
  bool stopped = false;
  for (int i = 0; i < 65 && !stopped; ++i) stopped = check.should_stop();
  EXPECT_TRUE(stopped);
  EXPECT_EQ(check.reason(), StopReason::kDeadline);
}

TEST(StopCheckTest, VerdictIsSticky) {
  CancellationToken token;
  token.cancel();
  StopCheck check(Deadline(), &token);
  EXPECT_TRUE(check.should_stop());
  EXPECT_TRUE(check.should_stop());
  EXPECT_EQ(check.reason(), StopReason::kCancelled);
}

// ------------------------------------------------------------ failpoints --

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::disarm_all(); }
  void TearDown() override { failpoint::disarm_all(); }
};

TEST_F(FailpointTest, DisarmedHitIsSilent) {
  EXPECT_FALSE(failpoint::armed());
  EXPECT_FALSE(failpoint::hit(failpoint::sites::kExactNode).has_value());
  EXPECT_EQ(failpoint::fired_count(), 0);
}

TEST_F(FailpointTest, CatalogListsEverySite) {
  const auto sites = failpoint::catalog();
  EXPECT_EQ(sites.size(), 12u);
  for (const char* site :
       {failpoint::sites::kSocParseOpen, failpoint::sites::kSocParseLine,
        failpoint::sites::kPoolTask, failpoint::sites::kExactNode,
        failpoint::sites::kSaIter, failpoint::sites::kIlpNode,
        failpoint::sites::kPackNode, failpoint::sites::kPackSaIter,
        failpoint::sites::kPlacerIter, failpoint::sites::kRouteStep,
        failpoint::sites::kPowerTick, failpoint::sites::kReportWrite}) {
    EXPECT_NE(std::find(sites.begin(), sites.end(), site), sites.end())
        << site;
  }
}

TEST_F(FailpointTest, ArmAndFire) {
  ASSERT_TRUE(failpoint::arm("tam.exact.node=error").ok());
  EXPECT_TRUE(failpoint::armed());
  const auto action = failpoint::hit(failpoint::sites::kExactNode);
  ASSERT_TRUE(action.has_value());
  EXPECT_EQ(*action, failpoint::Action::kError);
  EXPECT_EQ(failpoint::fired_count(), 1);
  // An unrelated site stays quiet.
  EXPECT_FALSE(failpoint::hit(failpoint::sites::kSaIter).has_value());
}

TEST_F(FailpointTest, HitNumberDelaysFiring) {
  ASSERT_TRUE(failpoint::arm("tam.sa.iter=cancel:3").ok());
  EXPECT_FALSE(failpoint::hit(failpoint::sites::kSaIter).has_value());
  EXPECT_FALSE(failpoint::hit(failpoint::sites::kSaIter).has_value());
  // Fires on the 3rd hit and on every later one.
  EXPECT_TRUE(failpoint::hit(failpoint::sites::kSaIter).has_value());
  EXPECT_TRUE(failpoint::hit(failpoint::sites::kSaIter).has_value());
  EXPECT_EQ(failpoint::fired_count(), 2);
}

TEST_F(FailpointTest, CommaSeparatedSpecArmsMultipleSites) {
  ASSERT_TRUE(
      failpoint::arm("tam.exact.node=timeout,ilp.bb.node=bad_alloc").ok());
  EXPECT_EQ(*failpoint::hit(failpoint::sites::kExactNode),
            failpoint::Action::kTimeout);
  EXPECT_EQ(*failpoint::hit(failpoint::sites::kIlpNode),
            failpoint::Action::kBadAlloc);
}

TEST_F(FailpointTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(failpoint::arm("tam.exact.node").ok());        // missing action
  EXPECT_FALSE(failpoint::arm("tam.exact.node=frob").ok());   // bad action
  EXPECT_FALSE(failpoint::arm("no.such.site=error").ok());    // unknown site
  EXPECT_FALSE(failpoint::arm("tam.exact.node=error:0").ok());  // bad ordinal
  EXPECT_FALSE(failpoint::arm("tam.exact.node=error:x").ok());
  EXPECT_FALSE(failpoint::armed());
}

TEST_F(FailpointTest, DisarmAllResets) {
  ASSERT_TRUE(failpoint::arm("tam.exact.node=error").ok());
  ASSERT_TRUE(failpoint::hit(failpoint::sites::kExactNode).has_value());
  failpoint::disarm_all();
  EXPECT_FALSE(failpoint::armed());
  EXPECT_FALSE(failpoint::hit(failpoint::sites::kExactNode).has_value());
  EXPECT_EQ(failpoint::fired_count(), 0);
}

TEST_F(FailpointTest, ActionNames) {
  EXPECT_STREQ(failpoint::action_name(failpoint::Action::kError), "error");
  EXPECT_STREQ(failpoint::action_name(failpoint::Action::kBadAlloc),
               "bad_alloc");
  EXPECT_STREQ(failpoint::action_name(failpoint::Action::kCancel), "cancel");
  EXPECT_STREQ(failpoint::action_name(failpoint::Action::kTimeout), "timeout");
}

TEST_F(FailpointTest, StopCheckMapsActionsToReasons) {
  ASSERT_TRUE(failpoint::arm("tam.exact.node=cancel").ok());
  StopCheck cancel_check(Deadline(), nullptr, failpoint::sites::kExactNode);
  EXPECT_TRUE(cancel_check.should_stop());
  EXPECT_EQ(cancel_check.reason(), StopReason::kCancelled);

  failpoint::disarm_all();
  ASSERT_TRUE(failpoint::arm("tam.exact.node=timeout").ok());
  StopCheck timeout_check(Deadline(), nullptr, failpoint::sites::kExactNode);
  EXPECT_TRUE(timeout_check.should_stop());
  EXPECT_EQ(timeout_check.reason(), StopReason::kDeadline);

  failpoint::disarm_all();
  ASSERT_TRUE(failpoint::arm("tam.exact.node=error").ok());
  StopCheck fault_check(Deadline(), nullptr, failpoint::sites::kExactNode);
  EXPECT_TRUE(fault_check.should_stop());
  EXPECT_EQ(fault_check.reason(), StopReason::kFault);
}

}  // namespace
}  // namespace soctest
