# gtest_discover_tests flattens a multi-element LABELS list into separate
# set_tests_properties arguments ("LABELS service tsan"), which CTest then
# parses as one label plus a stray valueless property — every label after
# the first silently stops matching `ctest -L`. Run as a POST_BUILD step
# after discovery, this rewrites the generated tests file so the labels
# are one bracket-quoted ;-list again.
#
# Inputs: TESTS_FILE (the generated <target>[1]_tests.cmake),
#         FLAT (labels joined by spaces, as discovery wrote them),
#         CSV  (labels joined by commas — commas survive -D forwarding).
file(READ "${TESTS_FILE}" content)
string(REPLACE "," ";" labels "${CSV}")
string(REPLACE "LABELS ${FLAT})" "LABELS [==[${labels}]==])"
       content "${content}")
file(WRITE "${TESTS_FILE}" "${content}")
