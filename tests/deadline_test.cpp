#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "layout/router.hpp"
#include "layout/sa_placer.hpp"
#include "sched/power_sched.hpp"
#include "soc/builtin.hpp"
#include "tam/timing.hpp"
#include "tam/architect.hpp"
#include "tam/exact_solver.hpp"
#include "tam/heuristics.hpp"
#include "tam/ilp_solver.hpp"
#include "tam/portfolio.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

// Mid-solve interruption coverage: every long-running component must honor
// a wall-clock Deadline and a CancellationToken, return its best incumbent
// (or a clean "nothing yet"), and record why it stopped. A pre-expired
// deadline / pre-fired token makes the interruption deterministic without
// depending on machine speed.

TamProblem hard_problem(unsigned seed = 7) {
  Rng rng(seed);
  testutil::RandomProblemOptions options;
  options.num_cores = 12;
  options.num_buses = 3;
  return testutil::random_problem(rng, options);
}

// ------------------------------------------------------------ exact / BB --

TEST(DeadlineSolvers, ExactHonorsPreExpiredDeadline) {
  const TamProblem problem = hard_problem();
  ExactSolverOptions options;
  options.deadline = Deadline::after_ms(0);
  const TamSolveResult result = solve_exact(problem, options);
  EXPECT_EQ(result.stop, StopReason::kDeadline);
  EXPECT_FALSE(result.proved_optimal);
}

TEST(DeadlineSolvers, ExactHonorsCancellation) {
  const TamProblem problem = hard_problem();
  CancellationToken cancel;
  cancel.cancel();
  ExactSolverOptions options;
  options.cancel = &cancel;
  const TamSolveResult result = solve_exact(problem, options);
  EXPECT_EQ(result.stop, StopReason::kCancelled);
  EXPECT_FALSE(result.proved_optimal);
}

TEST(DeadlineSolvers, ExactWithoutDeadlineIsUnaffected) {
  const TamProblem problem = hard_problem();
  const TamSolveResult golden = solve_exact(problem, {});
  ExactSolverOptions options;
  options.deadline = Deadline::after_ms(60000);  // far away: never fires
  const TamSolveResult timed = solve_exact(problem, options);
  ASSERT_TRUE(golden.feasible);
  ASSERT_TRUE(timed.feasible);
  EXPECT_TRUE(timed.proved_optimal);
  EXPECT_EQ(timed.stop, StopReason::kNone);
  // Bit-identical result: same makespan AND same assignment.
  EXPECT_EQ(timed.assignment.makespan, golden.assignment.makespan);
  EXPECT_EQ(timed.assignment.core_to_bus, golden.assignment.core_to_bus);
}

TEST(DeadlineSolvers, IlpHonorsPreExpiredDeadline) {
  const TamProblem problem = hard_problem();
  MipOptions options;
  options.deadline = Deadline::after_ms(0);
  const TamSolveResult result = solve_ilp(problem, options);
  EXPECT_EQ(result.stop, StopReason::kDeadline);
  EXPECT_FALSE(result.proved_optimal);
}

TEST(DeadlineSolvers, SaReturnsSeedUnderPreExpiredDeadline) {
  const TamProblem problem = hard_problem();
  SaSolverOptions options;
  options.deadline = Deadline::after_ms(0);
  const TamSolveResult result = solve_sa(problem, options);
  // SA refines the greedy seed, so even an immediate stop stays feasible.
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.stop, StopReason::kDeadline);
}

// --------------------------------------------------------------- portfolio --

TEST(DeadlinePortfolio, DegradesToHeuristicIncumbent) {
  const TamProblem problem = hard_problem();
  PortfolioOptions options;
  options.deadline = Deadline::after_ms(0);
  const PortfolioResult race = solve_portfolio(problem, options);
  // The greedy floor guarantees an incumbent whenever one exists.
  ASSERT_TRUE(race.best.feasible);
  EXPECT_TRUE(race.certificate.status == SolveStatus::kFeasibleBounded ||
              race.certificate.status == SolveStatus::kOptimal)
      << race.certificate.to_string();
  if (race.certificate.status == SolveStatus::kFeasibleBounded) {
    EXPECT_GT(race.certificate.lower_bound, 0);
    EXPECT_GE(race.certificate.gap(), 0.0);
    EXPECT_GE(race.certificate.upper_bound, race.certificate.lower_bound);
  }
}

TEST(DeadlinePortfolio, UnlimitedRunStaysOptimal) {
  const TamProblem problem = hard_problem();
  const TamSolveResult exact = solve_exact(problem, {});
  const PortfolioResult race = solve_portfolio(problem, {});
  ASSERT_TRUE(race.best.feasible);
  EXPECT_TRUE(race.best.proved_optimal);
  EXPECT_EQ(race.certificate.status, SolveStatus::kOptimal);
  EXPECT_EQ(race.best.assignment.makespan, exact.assignment.makespan);
}

// ----------------------------------------------------------- width search --

TEST(DeadlineWidthSearch, PreExpiredDeadlineStillYieldsArchitecture) {
  const Soc soc = builtin_soc1();
  const TestTimeTable& table = cached_test_time_table(soc, 31);
  WidthPartitionOptions options;
  options.solver = InnerSolver::kPortfolio;
  options.deadline = Deadline::after_ms(0);
  const ArchitectureResult arch = optimize_widths(soc, table, 2, 32, nullptr,
                                                  -1, -1.0, options);
  ASSERT_TRUE(arch.feasible);
  EXPECT_EQ(arch.stop, StopReason::kDeadline);
  EXPECT_NE(arch.certificate.status, SolveStatus::kOptimal);
  EXPECT_GE(arch.assignment.makespan, 1);
}

TEST(DeadlineWidthSearch, NoDeadlineMatchesGolden) {
  const Soc soc = builtin_soc1();
  const TestTimeTable& table = cached_test_time_table(soc, 31);
  const ArchitectureResult golden = optimize_widths(soc, table, 2, 32);
  const ArchitectureResult again = optimize_widths(soc, table, 2, 32);
  ASSERT_TRUE(golden.feasible);
  EXPECT_TRUE(golden.proved_optimal);
  EXPECT_EQ(golden.certificate.status, SolveStatus::kOptimal);
  EXPECT_EQ(golden.bus_widths, again.bus_widths);
  EXPECT_EQ(golden.assignment.core_to_bus, again.assignment.core_to_bus);
  EXPECT_EQ(golden.assignment.makespan, again.assignment.makespan);
}

// --------------------------------------------------------------- architect --

TEST(DeadlineArchitect, AnytimeRequestRoutesExactThroughPortfolio) {
  const Soc soc = builtin_soc1();
  DesignRequest request;
  request.num_buses = 2;
  request.total_width = 32;
  request.solver = InnerSolver::kExact;
  request.deadline = Deadline::after_ms(0);
  const DesignResult design = design_architecture(soc, request);
  // Degradation chain: the portfolio's greedy floor keeps this feasible.
  ASSERT_TRUE(design.feasible);
  EXPECT_EQ(design.stop, StopReason::kDeadline);
  EXPECT_TRUE(design.certificate.status == SolveStatus::kFeasibleBounded ||
              design.certificate.status == SolveStatus::kFeasible)
      << design.certificate.to_string();
}

TEST(DeadlineArchitect, NoDeadlineRunsAreIdentical) {
  const Soc soc = builtin_soc2();
  DesignRequest request;
  request.bus_widths = {16, 16};
  const DesignResult a = design_architecture(soc, request);
  const DesignResult b = design_architecture(soc, request);
  ASSERT_TRUE(a.feasible);
  EXPECT_TRUE(a.proved_optimal);
  EXPECT_EQ(a.certificate.status, SolveStatus::kOptimal);
  EXPECT_EQ(a.assignment.core_to_bus, b.assignment.core_to_bus);
  EXPECT_EQ(a.assignment.makespan, b.assignment.makespan);
}

TEST(DeadlineArchitect, CancelledFixedWidthSolveReportsStop) {
  const Soc soc = builtin_soc1();
  CancellationToken cancel;
  cancel.cancel();
  DesignRequest request;
  request.bus_widths = {16, 16};
  request.solver = InnerSolver::kSa;
  request.cancel = &cancel;
  const DesignResult design = design_architecture(soc, request);
  ASSERT_TRUE(design.feasible);  // SA's greedy seed survives
  EXPECT_EQ(design.stop, StopReason::kCancelled);
}

// ------------------------------------------------------------------ layout --

TEST(DeadlineLayout, PlacerCommitsBestUnderCancellation) {
  Soc soc = builtin_soc1();
  ASSERT_TRUE(soc.has_placement());
  CancellationToken cancel;
  cancel.cancel();
  SaPlacerOptions options;
  options.cancel = &cancel;
  Rng rng(1);
  sa_place(soc, options, rng);  // must not hang or throw
  EXPECT_TRUE(soc.has_placement());
  EXPECT_GT(placement_cost(soc), 0);
}

TEST(DeadlineLayout, RouterReturnsNulloptOnExpiredDeadline) {
  DieGrid grid(16, 16);
  SolveControl control;
  control.deadline = Deadline::after_ms(0);
  // Stride 256 exceeds the polls a 16x16 BFS makes, so force every router
  // stop-check to read the clock by expiring before the search begins.
  const GridRouter router(grid, control);
  EXPECT_FALSE(router.route({0, 0}, {15, 15}).has_value());
  const std::vector<double> costs(
      static_cast<std::size_t>(grid.num_cells()), 0.0);
  EXPECT_FALSE(router.route_weighted({0, 0}, {15, 15}, costs).has_value());
  EXPECT_FALSE(
      router.route_weighted_multi({{0, 0}}, {{15, 15}}, costs).has_value());
}

TEST(DeadlineLayout, DistanceMapStaysPartialOnExpiredDeadline) {
  DieGrid grid(16, 16);
  SolveControl control;
  control.deadline = Deadline::after_ms(0);
  const GridRouter router(grid, control);
  const std::vector<int> dist = router.distance_map({{0, 0}});
  // The sources are seeded before the loop; everything else stays -1.
  EXPECT_EQ(dist[grid.index({0, 0})], 0);
  EXPECT_EQ(dist[grid.index({15, 15})], -1);
}

TEST(DeadlineLayout, RouterUnlimitedStillRoutes) {
  DieGrid grid(16, 16);
  const GridRouter router(grid);
  const auto path = router.route({0, 0}, {15, 15});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->length(), 30);
}

// --------------------------------------------------------------- scheduler --

TEST(DeadlineScheduler, PowerSchedulerReportsInterruption) {
  const Soc soc = builtin_soc1();
  DesignRequest request;
  request.bus_widths = {16, 16};
  const DesignResult design = design_architecture(soc, request);
  ASSERT_TRUE(design.feasible);
  const TestTimeTable& table = cached_test_time_table(soc, 16);
  const TamProblem problem = make_tam_problem(soc, table, design.bus_widths);
  PowerScheduleOptions options;
  options.p_max_mw = 2000;
  options.deadline = Deadline::after_ms(0);
  const PowerScheduleResult ps = build_power_aware_schedule(
      problem, soc, design.assignment.core_to_bus, options);
  EXPECT_FALSE(ps.feasible);
  EXPECT_EQ(ps.stop, StopReason::kDeadline);
  EXPECT_NE(ps.error.find("interrupted"), std::string::npos) << ps.error;
  EXPECT_TRUE(ps.schedule.tests.empty());
}

}  // namespace
}  // namespace soctest
