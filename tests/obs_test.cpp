// Tests for the src/obs instrumentation layer: counter atomicity under the
// thread pool, span parent/child nesting, JSON serialization round-trips
// through the report layer, and the zero-allocation guarantee when tracing
// is disabled.

#include <atomic>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cli/options.hpp"
#include "cli/run.hpp"
#include "common/thread_pool.hpp"
#include "obs/ledger.hpp"
#include "obs/obs.hpp"
#include "report/json.hpp"
#include "report/run_report.hpp"
#include "service/protocol.hpp"

namespace {

std::atomic<long long> g_heap_allocations{0};

}  // namespace

// Replacing the global allocator lets DisabledModeAllocatesNothing observe
// the heap directly. Counting stays cheap enough not to distort other tests.
void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace soctest {
namespace {

TEST(ObsCounter, ExactUnderThreadPoolContention) {
  obs::reset_metrics();
  obs::Counter& counter = obs::counter("obs_test.atomic");
  constexpr int kTasks = 64;
  constexpr int kIncrementsPerTask = 10000;
  {
    ThreadPool pool(8);
    for (int t = 0; t < kTasks; ++t) {
      pool.post([&counter] {
        for (int i = 0; i < kIncrementsPerTask; ++i) counter.add(1);
      });
    }
    pool.wait_all();
  }
  EXPECT_EQ(counter.value(),
            static_cast<long long>(kTasks) * kIncrementsPerTask);
}

TEST(ObsCounter, RegistryReturnsStableReferencesAndSortedSnapshots) {
  obs::reset_metrics();
  obs::Counter& b = obs::counter("obs_test.sort.b");
  obs::Counter& a = obs::counter("obs_test.sort.a");
  EXPECT_EQ(&a, &obs::counter("obs_test.sort.a"));
  a.add(1);
  b.add(2);
  const auto values = obs::counter_values();
  for (std::size_t i = 1; i < values.size(); ++i) {
    EXPECT_LT(values[i - 1].name, values[i].name);
  }
  long long seen_a = -1, seen_b = -1;
  for (const auto& c : values) {
    if (c.name == "obs_test.sort.a") seen_a = c.value;
    if (c.name == "obs_test.sort.b") seen_b = c.value;
  }
  EXPECT_EQ(seen_a, 1);
  EXPECT_EQ(seen_b, 2);
}

TEST(ObsHistogram, SnapshotStats) {
  obs::reset_metrics();
  obs::Histogram& h = obs::histogram("obs_test.hist");
  h.observe(1.0);
  h.observe(2.0);
  h.observe(3.0);
  const auto snapshot = h.snapshot();
  EXPECT_EQ(snapshot.count, 3);
  EXPECT_DOUBLE_EQ(snapshot.sum, 6.0);
  EXPECT_DOUBLE_EQ(snapshot.min, 1.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 3.0);
  long long bucketed = 0;
  for (long long b : snapshot.buckets) bucketed += b;
  EXPECT_EQ(bucketed, 3);
}

TEST(ObsSpan, ParentChildNestingAndInstantLinkage) {
  obs::TraceSink sink;
  {
    obs::TraceSession session(&sink);
    obs::Span outer("outer", {{"depth", 0}});
    {
      obs::Span inner("inner");
      obs::instant("tick", {{"flag", true}});
    }
  }
  const auto& events = sink.events();
  ASSERT_EQ(events.size(), 3u);
  // Instants append at creation, spans at destruction: tick, inner, outer.
  const obs::TraceEvent& tick = events[0];
  const obs::TraceEvent& inner = events[1];
  const obs::TraceEvent& outer = events[2];
  EXPECT_EQ(tick.name, "tick");
  EXPECT_EQ(inner.name, "inner");
  EXPECT_EQ(outer.name, "outer");
  EXPECT_EQ(outer.parent, 0u);
  EXPECT_EQ(inner.parent, outer.id);
  EXPECT_EQ(tick.parent, inner.id);
  EXPECT_EQ(tick.kind, obs::TraceEvent::Kind::kInstant);
  EXPECT_EQ(outer.kind, obs::TraceEvent::Kind::kSpan);
  EXPECT_GE(outer.dur_us, inner.dur_us);
  EXPECT_LE(outer.start_us, inner.start_us);
}

TEST(ObsSpan, CrossThreadSpansHaveNoParentAndDistinctThreadIndex) {
  obs::TraceSink sink;
  {
    obs::TraceSession session(&sink);
    obs::Span root("root");
    {
      ThreadPool pool(1);
      pool.post([] { obs::Span worker("worker"); });
      pool.wait_all();
    }
  }
  const auto& events = sink.events();
  ASSERT_EQ(events.size(), 2u);
  const obs::TraceEvent& worker = events[0];
  const obs::TraceEvent& root = events[1];
  // The span-id stack is thread-local, so a pool-thread span is a root.
  EXPECT_EQ(worker.parent, 0u);
  EXPECT_NE(worker.thread, root.thread);
}

TEST(ObsSession, ResetsMetricsOnEntryAndDisablesOnExit) {
  obs::counter("obs_test.reset").add(41);
  {
    obs::TraceSession session(nullptr);  // counters-only mode
    EXPECT_TRUE(obs::enabled());
    EXPECT_EQ(obs::counter("obs_test.reset").value(), 0);
    obs::counter("obs_test.reset").add(1);
  }
  EXPECT_FALSE(obs::enabled());
  EXPECT_EQ(obs::counter("obs_test.reset").value(), 1);
}

TEST(ObsReport, TraceJsonRoundTripsThroughJsonCheck) {
  obs::TraceSink sink;
  {
    obs::TraceSession session(&sink);
    obs::counter("obs_test.json.counter").add(7);
    obs::histogram("obs_test.json.hist").observe(2.5);
    obs::Span span("obs_test.json.span",
                   {{"text", "quote\"and\\slash"}, {"n", 3}, {"x", 1.5}});
    obs::instant("obs_test.json.instant");
  }
  const std::string trace = trace_json(sink);
  EXPECT_EQ(json_check(trace), "") << trace;
  EXPECT_NE(trace.find("soctest-trace-v1"), std::string::npos);
  EXPECT_NE(trace.find("obs_test.json.span"), std::string::npos);
  EXPECT_NE(trace.find("obs_test.json.counter"), std::string::npos);

  const std::string chrome = chrome_trace_json(sink);
  EXPECT_EQ(json_check(chrome), "") << chrome;
  EXPECT_NE(chrome.find("traceEvents"), std::string::npos);
  EXPECT_NE(chrome.find("obs_test.json.span"), std::string::npos);

  const std::string metrics = metrics_json();
  EXPECT_EQ(json_check(metrics), "") << metrics;
  EXPECT_NE(metrics.find("obs_test.json.hist"), std::string::npos);
}

TEST(ObsOverhead, DisabledModeAllocatesNothing) {
  ASSERT_FALSE(obs::enabled());
  // Intern the counter before the measured region; hot code caches the
  // reference exactly like this.
  obs::Counter& counter = obs::counter("obs_test.disabled");
  const long long before = g_heap_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    obs::Span span("obs_test.disabled.span");
    counter.add(1);
    obs::instant("obs_test.disabled.instant");
  }
  const long long after = g_heap_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0);
}

TEST(ObsCli, TraceAndMetricsFlagsProduceValidJson) {
  const std::string trace_path = "obs_cli_trace.json";
  const std::string chrome_path = "obs_cli_trace_chrome.json";
  const CliOptions options =
      parse_cli({"--soc", "soc1", "--widths", "16,16", "--solver", "portfolio",
                 "--trace", trace_path, "--trace-chrome", chrome_path,
                 "--metrics"});
  EXPECT_EQ(options.trace_path, trace_path);
  EXPECT_TRUE(options.metrics);
  const CliResult result = run_cli(options);
  EXPECT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("run metrics:"), std::string::npos);
  EXPECT_NE(result.output.find("tam.portfolio.races"), std::string::npos);

  for (const std::string& path : {trace_path, chrome_path}) {
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << path;
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(json_check(buffer.str()), "") << path;
  }
  std::remove(trace_path.c_str());
  std::remove(chrome_path.c_str());
}

TEST(ObsLedger, RecordJsonIsValidAndCarriesThePinnedCounterSet) {
  obs::LedgerRecord record;
  record.soc = "soc1";
  record.widths = {16, 8, 8};
  record.solver = "exact";
  record.threads_configured = 0;
  record.threads_effective = 8;
  record.feasible = true;
  record.status = "optimal";
  record.gap = 0.0;
  record.t_cycles = 1234;
  record.wall_ms = 1.5;
  {
    obs::TraceSession session(nullptr);
    obs::counter("tam.exact.nodes").add(26);
    obs::fill_ledger_counters(record);
  }
  const std::string line = ledger_record_json(record);
  EXPECT_EQ(json_check(line), "") << line;
  const auto doc = parse_json(line);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_or("schema", ""), "soctest-ledger-v1");
  EXPECT_EQ(doc->string_or("solver", ""), "exact");
  EXPECT_DOUBLE_EQ(doc->number_or("threads_configured", -1.0), 0.0);
  EXPECT_DOUBLE_EQ(doc->number_or("threads_effective", -1.0), 8.0);
  const JsonValue* counters = doc->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_object());
  // Every pinned counter is present even when it never fired this run —
  // the set, not the run, decides the schema.
  for (const char* name : obs::kLedgerCounters) {
    EXPECT_NE(counters->find(name), nullptr) << name;
  }
  EXPECT_DOUBLE_EQ(counters->number_or("tam.exact.nodes", -1.0), 26.0);
  EXPECT_DOUBLE_EQ(counters->number_or("ilp.bb.nodes", -1.0), 0.0);
}

TEST(ObsLedger, AppendIsOneLinePerRecordAndReadersSkipATornTail) {
  const std::string path = "obs_ledger_test.jsonl";
  std::remove(path.c_str());
  obs::LedgerRecord record;
  record.soc = "soc2";
  record.solver = "sa";
  record.status = "feasible";
  ASSERT_TRUE(obs::append_ledger_record(path, record));
  ASSERT_TRUE(obs::append_ledger_record(path, record));
  // Simulate a crash mid-write: a torn half-record as the final line.
  {
    std::ofstream torn(path, std::ios::app);
    torn << "{\"schema\":\"soctest-led";
  }
  std::ifstream in(path);
  std::string line;
  int valid = 0, torn = 0;
  while (std::getline(in, line)) {
    if (parse_json(line).has_value()) {
      ++valid;
    } else {
      ++torn;
    }
  }
  EXPECT_EQ(valid, 2);
  EXPECT_EQ(torn, 1);  // only the tail can tear; earlier records are whole
  std::remove(path.c_str());
}

TEST(ObsLedger, CliLedgerFlagAppendsOneRecordPerRun) {
  const std::string path = "obs_cli_ledger_test.jsonl";
  std::remove(path.c_str());
  const CliOptions options = parse_cli(
      {"--soc", "soc1", "--widths", "16,16", "--ledger", path});
  EXPECT_EQ(run_cli(options).exit_code, 0);
  EXPECT_EQ(run_cli(options).exit_code, 0);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int records = 0;
  while (std::getline(in, line)) {
    const auto doc = parse_json(line);
    ASSERT_TRUE(doc.has_value()) << line;
    EXPECT_EQ(doc->string_or("schema", ""), "soctest-ledger-v1");
    EXPECT_EQ(doc->string_or("soc", ""), "soc1");
    EXPECT_EQ(doc->string_or("solver", ""), "exact");
    EXPECT_EQ(doc->string_or("status", ""), "optimal");
    EXPECT_DOUBLE_EQ(doc->number_or("threads_configured", -1.0), 1.0);
    EXPECT_DOUBLE_EQ(doc->number_or("threads_effective", -1.0), 1.0);
    EXPECT_GE(doc->number_or("wall_ms", -1.0), 0.0);
    ++records;
  }
  EXPECT_EQ(records, 2);
  std::remove(path.c_str());
}

TEST(ObsLedger, EnvVarNamesTheDefaultLedgerPath) {
  EXPECT_EQ(obs::ledger_path_from_env(), "");
  ::setenv("SOCTEST_LEDGER", "from_env.jsonl", 1);
  EXPECT_EQ(obs::ledger_path_from_env(), "from_env.jsonl");
  ::unsetenv("SOCTEST_LEDGER");
}

TEST(ObsLedger, RejectionRecordIsMinimalAndCarriesTheTraceId) {
  obs::RejectionRecord record;
  record.id = "req-9";
  record.shard = 1;
  record.retry_after_ms = 50.0;
  record.trace_id = "deadbeefdeadbeef";
  const std::string line = obs::rejection_record_json(record);
  const auto doc = parse_json(line);
  ASSERT_TRUE(doc.has_value()) << line;
  EXPECT_EQ(doc->string_or("schema", ""), "soctest-ledger-v1");
  EXPECT_EQ(doc->string_or("kind", ""), "rejected");
  EXPECT_EQ(doc->string_or("id", ""), "req-9");
  EXPECT_DOUBLE_EQ(doc->number_or("shard", -1.0), 1.0);
  EXPECT_DOUBLE_EQ(doc->number_or("retry_after_ms", -1.0), 50.0);
  EXPECT_EQ(doc->string_or("trace_id", ""), "deadbeefdeadbeef");

  // Untraced rejections omit the field rather than writing an empty string.
  record.trace_id.clear();
  EXPECT_EQ(obs::rejection_record_json(record).find("trace_id"),
            std::string::npos);
}

TEST(ObsRateCounter, WindowedSumAndShortHorizonRate) {
  obs::RateCounter rate(60);
  EXPECT_EQ(rate.sum(), 0);
  EXPECT_DOUBLE_EQ(rate.rate(), 0.0);
  rate.add(5);
  rate.add();
  EXPECT_EQ(rate.sum(), 6);
  // A counter younger than its window divides by its lived span (floored
  // at one second), not the full window: 6 events in <=1s is 6/s, not 0.1.
  EXPECT_DOUBLE_EQ(rate.rate(), 6.0);
  rate.reset();
  EXPECT_EQ(rate.sum(), 0);
}

TEST(ObsWindowedHistogram, PercentileInterpolatesWithinTheWindow) {
  obs::WindowedHistogram hist(60);
  EXPECT_DOUBLE_EQ(hist.percentile(0.95), 0.0);
  for (int i = 1; i <= 100; ++i) hist.observe(static_cast<double>(i));
  const auto snap = hist.snapshot();
  EXPECT_EQ(snap.count, 100);
  EXPECT_DOUBLE_EQ(snap.sum, 5050.0);
  // Power-of-two buckets are coarse; the estimate must land in the right
  // bucket neighborhood, not exactly on the sample percentile.
  const double p50 = hist.percentile(0.50);
  EXPECT_GE(p50, 32.0);
  EXPECT_LE(p50, 64.0);
  const double p95 = hist.percentile(0.95);
  EXPECT_GE(p95, 64.0);
  EXPECT_LE(p95, 128.0);
  // The static estimator over the wire-format snapshot agrees with the
  // instance one — soctest-top consumes merged buckets this way.
  EXPECT_DOUBLE_EQ(obs::WindowedHistogram::percentile_of(snap, 0.95), p95);
}

TEST(ObsEmitSpan, AppendsACompletedRootSpanWithArgs) {
  obs::TraceSink sink;
  {
    obs::TraceSession session(&sink);
    obs::emit_span("obs_test.emitted", 10.0, 5.0,
                   {{"trace_id", "feedfacefeedface"}, {"attempt", 2}});
  }
  const std::vector<obs::TraceEvent> events = sink.events();
  ASSERT_EQ(events.size(), 1u);
  const obs::TraceEvent& e = events[0];
  EXPECT_EQ(e.name, "obs_test.emitted");
  EXPECT_EQ(e.parent, 0u);
  EXPECT_DOUBLE_EQ(e.start_us, 10.0);
  EXPECT_DOUBLE_EQ(e.dur_us, 5.0);
  ASSERT_EQ(e.args.size(), 2u);
  EXPECT_EQ(e.args[0].key, "trace_id");
}

TEST(ObsOverhead, UntracedRequestStampsNothingAndAllocatesNothing) {
  ASSERT_FALSE(obs::enabled());
  ServiceRequest request;  // no trace field on the wire -> trace_id empty
  obs::Span span("obs_test.untraced");
  const long long before = g_heap_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 1000; ++i) {
    stamp_trace(span, request, "service.request");
  }
  const long long after = g_heap_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0);
}

}  // namespace
}  // namespace soctest
