#include <gtest/gtest.h>

#include "soc/builtin.hpp"
#include "soc/soc.hpp"

namespace soctest {
namespace {

Core valid_core() {
  Core c;
  c.name = "c";
  c.num_inputs = 4;
  c.num_outputs = 3;
  c.num_patterns = 10;
  c.test_power_mw = 100;
  c.width = 2;
  c.height = 2;
  return c;
}

TEST(Core, ScanElementCounts) {
  Core c = valid_core();
  c.num_bidirs = 2;
  c.scan_chain_lengths = {5, 7};
  EXPECT_EQ(c.total_scan_flops(), 12);
  EXPECT_EQ(c.scan_in_elements(), 12 + 4 + 2);
  EXPECT_EQ(c.scan_out_elements(), 12 + 3 + 2);
}

TEST(Core, ValidateAcceptsGoodCore) { EXPECT_EQ(valid_core().validate(), ""); }

TEST(Core, ValidateRejectsEmptyName) {
  Core c = valid_core();
  c.name = "";
  EXPECT_NE(c.validate(), "");
}

TEST(Core, ValidateRejectsZeroPatterns) {
  Core c = valid_core();
  c.num_patterns = 0;
  EXPECT_NE(c.validate(), "");
}

TEST(Core, ValidateRejectsNegativePower) {
  Core c = valid_core();
  c.test_power_mw = -1;
  EXPECT_NE(c.validate(), "");
}

TEST(Core, ValidateRejectsBadChain) {
  Core c = valid_core();
  c.scan_chain_lengths = {4, 0};
  EXPECT_NE(c.validate(), "");
}

TEST(Core, ValidateRejectsNoScannableInputs) {
  Core c = valid_core();
  c.num_inputs = 0;
  c.num_bidirs = 0;
  c.scan_chain_lengths.clear();
  EXPECT_NE(c.validate(), "");
}

TEST(Core, ValidateRejectsNonPositiveFootprint) {
  Core c = valid_core();
  c.width = 0;
  EXPECT_NE(c.validate(), "");
}

TEST(Point, Manhattan) {
  EXPECT_EQ(manhattan({0, 0}, {3, 4}), 7);
  EXPECT_EQ(manhattan({-2, 5}, {1, 1}), 7);
  EXPECT_EQ(manhattan({2, 2}, {2, 2}), 0);
}

TEST(Soc, AddAndFindCore) {
  Soc soc("s", 10, 10);
  Core c = valid_core();
  c.name = "alpha";
  const auto idx = soc.add_core(c);
  EXPECT_EQ(idx, 0u);
  EXPECT_EQ(soc.find_core("alpha"), std::optional<std::size_t>{0});
  EXPECT_FALSE(soc.find_core("beta").has_value());
}

TEST(Soc, TotalTestPower) {
  Soc soc("s", 10, 10);
  Core a = valid_core();
  a.name = "a";
  a.test_power_mw = 100;
  Core b = valid_core();
  b.name = "b";
  b.test_power_mw = 250;
  soc.add_core(a);
  soc.add_core(b);
  EXPECT_DOUBLE_EQ(soc.total_test_power(), 350.0);
}

TEST(Soc, ValidateRejectsEmptySoc) {
  Soc soc("s", 10, 10);
  EXPECT_NE(soc.validate(), "");
}

TEST(Soc, ValidateRejectsDuplicateNames) {
  Soc soc("s", 10, 10);
  soc.add_core(valid_core());
  soc.add_core(valid_core());
  EXPECT_NE(soc.validate().find("duplicate"), std::string::npos);
}

TEST(Soc, ValidateRejectsPlacementOutsideDie) {
  Soc soc("s", 5, 5);
  soc.add_core(valid_core());
  soc.set_placements({Placement{{4, 4}}});  // 2x2 core at (4,4) on 5x5 die
  EXPECT_NE(soc.validate().find("outside"), std::string::npos);
}

TEST(Soc, ValidateRejectsOverlaps) {
  Soc soc("s", 10, 10);
  Core a = valid_core();
  a.name = "a";
  Core b = valid_core();
  b.name = "b";
  soc.add_core(a);
  soc.add_core(b);
  soc.set_placements({Placement{{1, 1}}, Placement{{2, 2}}});
  EXPECT_NE(soc.validate().find("overlap"), std::string::npos);
}

TEST(Soc, ValidateAcceptsTouchingCores) {
  Soc soc("s", 10, 10);
  Core a = valid_core();
  a.name = "a";
  Core b = valid_core();
  b.name = "b";
  soc.add_core(a);
  soc.add_core(b);
  soc.set_placements({Placement{{0, 0}}, Placement{{2, 0}}});
  EXPECT_EQ(soc.validate(), "");
}

TEST(Soc, SetPlacementsSizeMismatchThrows) {
  Soc soc("s", 10, 10);
  soc.add_core(valid_core());
  EXPECT_THROW(soc.set_placements({}), std::invalid_argument);
}

TEST(Soc, AddCoreAfterPlacementThrows) {
  Soc soc("s", 10, 10);
  soc.add_core(valid_core());
  soc.set_placements({Placement{{0, 0}}});
  EXPECT_THROW(soc.add_core(valid_core()), std::logic_error);
}

TEST(BuiltinSoc, Soc1IsValidAndPlaced) {
  const Soc soc = builtin_soc1();
  EXPECT_EQ(soc.validate(), "");
  EXPECT_EQ(soc.num_cores(), 10u);
  EXPECT_TRUE(soc.has_placement());
  EXPECT_EQ(soc.name(), "soc1");
}

TEST(BuiltinSoc, Soc2IsValidAndPlaced) {
  const Soc soc = builtin_soc2();
  EXPECT_EQ(soc.validate(), "");
  EXPECT_EQ(soc.num_cores(), 6u);
  EXPECT_TRUE(soc.has_placement());
}

TEST(BuiltinSoc, Soc1HasExpectedCores) {
  const Soc soc = builtin_soc1();
  EXPECT_TRUE(soc.find_core("s38417").has_value());
  EXPECT_TRUE(soc.find_core("c6288").has_value());
  const auto s38417 = *soc.find_core("s38417");
  EXPECT_EQ(soc.core(s38417).total_scan_flops(), 1636);
  EXPECT_EQ(soc.core(s38417).scan_chain_lengths.size(), 32u);
}

TEST(BuiltinSoc, Soc3IsValidAndPlaced) {
  const Soc soc = builtin_soc3();
  EXPECT_EQ(soc.validate(), "");
  EXPECT_EQ(soc.num_cores(), 14u);
  EXPECT_TRUE(soc.has_placement());
  // Duplicated CPU cores share structure but not power.
  const auto cpu0 = *soc.find_core("cpu0");
  const auto cpu1 = *soc.find_core("cpu1");
  EXPECT_EQ(soc.core(cpu0).total_scan_flops(), soc.core(cpu1).total_scan_flops());
  EXPECT_NE(soc.core(cpu0).test_power_mw, soc.core(cpu1).test_power_mw);
}

TEST(BuiltinSoc, Soc4IsValidWithSoftCores) {
  const Soc soc = builtin_soc4();
  EXPECT_EQ(soc.validate(), "");
  EXPECT_EQ(soc.num_cores(), 20u);
  EXPECT_TRUE(soc.has_placement());
  const auto soft0 = *soc.find_core("soft0");
  EXPECT_EQ(soc.core(soft0).soft_scan_flops, 880);
  EXPECT_TRUE(soc.core(soft0).scan_chain_lengths.empty());
}

TEST(BuiltinSoc, Soc1PowerValuesPositive) {
  const Soc soc = builtin_soc1();
  for (const auto& c : soc.cores()) EXPECT_GT(c.test_power_mw, 0.0);
}

}  // namespace
}  // namespace soctest
