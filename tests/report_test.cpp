#include <gtest/gtest.h>

#include "report/design_report.hpp"
#include "report/json.hpp"
#include "sched/schedule.hpp"
#include "soc/builtin.hpp"

namespace soctest {
namespace {

TEST(JsonWriter, FlatObject) {
  JsonWriter w;
  w.begin_object();
  w.key("a").value(1);
  w.key("b").value("text");
  w.key("c").value(true);
  w.key("d").null();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"a":1,"b":"text","c":true,"d":null})");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("list").begin_array().value(1).value(2).begin_object().end_object().end_array();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"list":[1,2,{}]})");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.begin_object();
  w.key("s").value("a\"b\\c\nd\te");
  w.end_object();
  EXPECT_EQ(w.str(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
  EXPECT_EQ(json_check(w.str()), "");
}

TEST(JsonWriter, DoubleFormattingAndNonFinite) {
  JsonWriter w;
  w.begin_array();
  w.value(0.5);
  w.value(std::numeric_limits<double>::infinity());
  w.end_array();
  EXPECT_EQ(w.str(), "[0.5,null]");
}

TEST(JsonWriter, MisuseThrows) {
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.value(1), std::logic_error);  // value without key
  }
  {
    JsonWriter w;
    w.begin_array();
    EXPECT_THROW(w.key("x"), std::logic_error);  // key inside array
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.end_array(), std::logic_error);  // mismatched close
  }
  {
    JsonWriter w;
    w.begin_object();
    EXPECT_THROW(w.str(), std::logic_error);  // unclosed
  }
}

TEST(JsonCheck, AcceptsValidDocuments) {
  EXPECT_EQ(json_check(R"({"a": [1, 2.5, -3e2], "b": {"c": null}})"), "");
  EXPECT_EQ(json_check("[]"), "");
  EXPECT_EQ(json_check("\"str\\u00e9\""), "");
  EXPECT_EQ(json_check("true"), "");
  EXPECT_EQ(json_check("-12.5e-3"), "");
}

TEST(JsonCheck, RejectsMalformedDocuments) {
  EXPECT_NE(json_check(""), "");
  EXPECT_NE(json_check("{"), "");
  EXPECT_NE(json_check("{\"a\":}"), "");
  EXPECT_NE(json_check("[1,]"), "");
  EXPECT_NE(json_check("{\"a\":1,}"), "");
  EXPECT_NE(json_check("\"unterminated"), "");
  EXPECT_NE(json_check("01"), "");  // leading zero... actually "0" then "1" trailing
  EXPECT_NE(json_check("{} {}"), "");
  EXPECT_NE(json_check("{'a':1}"), "");
  EXPECT_NE(json_check("nul"), "");
  EXPECT_NE(json_check("\"bad \\x escape\""), "");
}

TEST(DesignReport, FeasibleRunIsValidJsonWithKeyFacts) {
  const Soc soc = builtin_soc1();
  DesignRequest request;
  request.bus_widths = {16, 16};
  request.p_max_mw = 1800;
  const DesignResult result = design_architecture(soc, request);
  ASSERT_TRUE(result.feasible);
  const TestTimeTable table(soc, 16);
  const TamProblem problem = make_tam_problem(soc, table, {16, 16}, nullptr,
                                              -1, 1800.0);
  const TestSchedule schedule =
      build_schedule(problem, result.assignment.core_to_bus);
  const std::string json =
      design_report_json(soc, request, result, &schedule);
  EXPECT_EQ(json_check(json), "") << json;
  EXPECT_NE(json.find("\"soc\""), std::string::npos);
  EXPECT_NE(json.find("\"test_time_cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"p_max_mw\""), std::string::npos);
  EXPECT_NE(json.find("\"schedule\""), std::string::npos);
  EXPECT_NE(json.find("s38417"), std::string::npos);
}

TEST(DesignReport, InfeasibleRunIsShortButValid) {
  const Soc soc = builtin_soc2();
  DesignRequest request;
  request.bus_widths = {8, 8};
  DesignResult result;  // infeasible default
  const std::string json = design_report_json(soc, request, result);
  EXPECT_EQ(json_check(json), "");
  EXPECT_NE(json.find("\"feasible\":false"), std::string::npos);
  EXPECT_EQ(json.find("\"buses\""), std::string::npos);
}

TEST(DesignReport, LayoutRunIncludesWirelength) {
  const Soc soc = builtin_soc1();
  DesignRequest request;
  request.bus_widths = {16, 16, 16};
  request.d_max = 30;
  const DesignResult result = design_architecture(soc, request);
  ASSERT_TRUE(result.feasible);
  const std::string json = design_report_json(soc, request, result);
  EXPECT_EQ(json_check(json), "");
  EXPECT_NE(json.find("\"stub_wirelength\""), std::string::npos);
  EXPECT_NE(json.find("\"d_max\":30"), std::string::npos);
}

TEST(ParseJson, MaterializesNestedValuesWithEscapes) {
  const std::string text =
      R"({"name":"a\"b\\cA","n":-2.5e2,"ok":true,"none":null,)"
      R"("list":[1,2,3],"obj":{"k":7}})";
  ASSERT_EQ(json_check(text), "");
  std::string error;
  const auto doc = parse_json(text, &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_EQ(doc->string_or("name", ""), "a\"b\\cA");
  EXPECT_DOUBLE_EQ(doc->number_or("n", 0.0), -250.0);
  const JsonValue* ok = doc->find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_TRUE(ok->is_bool());
  EXPECT_TRUE(ok->boolean);
  const JsonValue* none = doc->find("none");
  ASSERT_NE(none, nullptr);
  EXPECT_TRUE(none->is_null());
  const JsonValue* list = doc->find("list");
  ASSERT_NE(list, nullptr);
  ASSERT_EQ(list->items.size(), 3u);
  EXPECT_DOUBLE_EQ(list->items[2].number, 3.0);
  const JsonValue* obj = doc->find("obj");
  ASSERT_NE(obj, nullptr);
  EXPECT_DOUBLE_EQ(obj->number_or("k", 0.0), 7.0);
  EXPECT_EQ(doc->find("absent"), nullptr);
  EXPECT_DOUBLE_EQ(doc->number_or("absent", -1.0), -1.0);
}

TEST(ParseJson, RejectsMalformedInputWithAMessage) {
  for (const char* bad :
       {"", "{", "[1,2", "{\"a\":}", "{\"a\":1}trailing", "nul"}) {
    std::string error;
    EXPECT_FALSE(parse_json(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(ParseJson, RoundTripsJsonWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value("round-trip");
  w.key("values").begin_array();
  w.value(1.5).value(true).value("x");
  w.end_array();
  w.end_object();
  const auto doc = parse_json(w.str());
  ASSERT_TRUE(doc.has_value()) << w.str();
  EXPECT_EQ(doc->string_or("schema", ""), "round-trip");
  const JsonValue* values = doc->find("values");
  ASSERT_NE(values, nullptr);
  ASSERT_EQ(values->items.size(), 3u);
  EXPECT_DOUBLE_EQ(values->items[0].number, 1.5);
}

}  // namespace
}  // namespace soctest
