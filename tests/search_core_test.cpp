// Tests for the data-oriented search core (tam/search_core.hpp): the
// Lagrangian-strengthened root lower bound, the staircase tables, and —
// most load-bearing — a golden regression pinning the exact solver's
// (makespan, assignment) on every shipped SOC plus generated instances,
// bit-identical at 1, 2, and 8 threads. These rows were captured from the
// pre-refactor serial solver; any branching-order, bound, or witness-pass
// change that alters them is a determinism break, not a tuning choice.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "soc/builtin.hpp"
#include "soc/generator.hpp"
#include "tam/exact_solver.hpp"
#include "tam/search_core.hpp"
#include "tam/staircase.hpp"
#include "tam/width_partition.hpp"
#include "wrapper/test_time_table.hpp"

namespace soctest {
namespace {

TamProblem generated_problem(int n, const std::vector<int>& widths) {
  Rng rng(static_cast<std::uint64_t>(n) * 7919);
  SocGeneratorOptions gen;
  gen.num_cores = n;
  gen.place = false;
  const Soc soc = generate_soc(gen, rng);
  const TestTimeTable table(soc, 16);
  return make_tam_problem(soc, table, widths);
}

struct GoldenRow {
  std::string name;
  Cycles makespan;
  std::vector<int> core_to_bus;
};

// Captured from the seed (pre-refactor) solver at threads = 1. The exact
// search's determinism contract says every thread count reproduces these.
const std::vector<GoldenRow>& golden_rows() {
  static const std::vector<GoldenRow> rows = {
      {"soc1_w16_16", 26179, {1, 1, 1, 0, 1, 0, 1, 1, 1, 0}},
      {"soc1_w16_16_16", 17897, {1, 0, 2, 2, 1, 0, 0, 1, 2, 2}},
      {"soc1_pmax1600", 33735, {0, 0, 0, 1, 0, 1, 0, 0, 0, 0}},
      {"soc2_w16_8", 6816, {0, 0, 1, 0, 1, 0}},
      {"soc3_w16_8_8", 34267, {0, 0, 0, 2, 0, 1, 0, 1, 2, 1, 1, 0, 2, 2}},
      {"soc4_w16_8_8",
       47345,
       {0, 0, 2, 0, 0, 0, 0, 0, 1, 1, 1, 1, 2, 1, 1, 1, 1, 2, 2, 2}},
      {"gen_n12", 36744, {0, 2, 1, 0, 0, 2, 2, 1, 2, 1, 0, 1}},
      {"gen_n16", 39714, {0, 0, 0, 2, 1, 1, 1, 2, 1, 2, 0, 0, 1, 2, 1, 2}},
      {"gen_n22",
       65523,
       {0, 2, 1, 2, 1, 2, 0, 1, 0, 2, 2, 2, 0, 1, 0, 0, 2, 2, 0, 0, 1, 1}},
  };
  return rows;
}

TamProblem golden_problem(const std::string& name) {
  if (name == "soc1_w16_16") {
    const Soc soc = builtin_soc1();
    return make_tam_problem(soc, TestTimeTable(soc, 16), {16, 16});
  }
  if (name == "soc1_w16_16_16") {
    const Soc soc = builtin_soc1();
    return make_tam_problem(soc, TestTimeTable(soc, 16), {16, 16, 16});
  }
  if (name == "soc1_pmax1600") {
    const Soc soc = builtin_soc1();
    return make_tam_problem(soc, TestTimeTable(soc, 16), {16, 16}, nullptr,
                            -1, 1600.0);
  }
  if (name == "soc2_w16_8") {
    const Soc soc = builtin_soc2();
    return make_tam_problem(soc, TestTimeTable(soc, 16), {16, 8});
  }
  if (name == "soc3_w16_8_8") {
    const Soc soc = builtin_soc3();
    return make_tam_problem(soc, TestTimeTable(soc, 16), {16, 8, 8});
  }
  if (name == "soc4_w16_8_8") {
    const Soc soc = builtin_soc4();
    return make_tam_problem(soc, TestTimeTable(soc, 16), {16, 8, 8});
  }
  if (name == "gen_n12") return generated_problem(12, {16, 8, 8});
  if (name == "gen_n16") return generated_problem(16, {16, 8, 8});
  if (name == "gen_n22") return generated_problem(22, {16, 8, 8});
  throw std::logic_error("unknown golden problem " + name);
}

class GoldenThreads : public ::testing::TestWithParam<int> {};

TEST_P(GoldenThreads, ExactSolverReproducesSeedGoldensBitIdentically) {
  const int threads = GetParam();
  for (const GoldenRow& row : golden_rows()) {
    const TamProblem problem = golden_problem(row.name);
    ExactSolverOptions options;
    options.threads = threads;
    const TamSolveResult result = solve_exact(problem, options);
    ASSERT_TRUE(result.feasible) << row.name;
    EXPECT_TRUE(result.proved_optimal) << row.name;
    EXPECT_EQ(result.assignment.makespan, row.makespan) << row.name;
    EXPECT_EQ(result.assignment.core_to_bus, row.core_to_bus) << row.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, GoldenThreads, ::testing::Values(1, 2, 8));

// The crossover must label what ran: a forced-parallel solve reports
// kParallel, a single-thread solve kSerial, and both still match golds.
TEST(SearchMode, CrossoverLabelsMatchExecutionAndPreserveGoldens) {
  const GoldenRow& row = golden_rows()[0];  // soc1_w16_16
  const TamProblem problem = golden_problem(row.name);

  ExactSolverOptions serial;
  serial.threads = 1;
  const TamSolveResult s = solve_exact(problem, serial);
  EXPECT_EQ(s.search_mode, SearchMode::kSerial);
  EXPECT_EQ(std::string(search_mode_name(s.search_mode)), "serial");

  ExactSolverOptions forced;
  forced.threads = 4;
  forced.serial_threshold_nodes = 0;  // 0 forces the root-splitting path
  const TamSolveResult p = solve_exact(problem, forced);
  EXPECT_EQ(p.search_mode, SearchMode::kParallel);
  EXPECT_EQ(std::string(search_mode_name(p.search_mode)), "parallel");
  EXPECT_EQ(p.assignment.makespan, row.makespan);
  EXPECT_EQ(p.assignment.core_to_bus, row.core_to_bus);

  // Small instance + default threshold: the probe finishes inside the cap,
  // so a multi-threaded request still executes (and reports) serial.
  ExactSolverOptions crossover;
  crossover.threads = 4;
  const TamSolveResult c = solve_exact(problem, crossover);
  EXPECT_EQ(c.search_mode, SearchMode::kSerial);
  EXPECT_EQ(c.assignment.core_to_bus, row.core_to_bus);
}

// Property: the exported root bound (classic + Lagrangian) never exceeds
// the proven optimum — over every shipped SOC and a spread of width
// budgets. An inadmissible bound here would silently prune optima.
TEST(LowerBound, NeverExceedsProvenOptimumOnShippedSocs) {
  const std::vector<Soc> socs = {builtin_soc1(), builtin_soc2(),
                                 builtin_soc3(), builtin_soc4()};
  const std::vector<std::vector<int>> width_sets = {
      {16, 16}, {16, 8}, {16, 8, 8}, {8, 8, 8}, {16, 8, 4, 4}};
  for (const Soc& soc : socs) {
    const TestTimeTable table(soc, 16);
    for (const auto& widths : width_sets) {
      const TamProblem problem = make_tam_problem(soc, table, widths);
      const Cycles bound = exact_search_lower_bound(problem);
      const TamSolveResult exact = solve_exact(problem);
      ASSERT_TRUE(exact.feasible) << soc.name();
      ASSERT_TRUE(exact.proved_optimal) << soc.name();
      EXPECT_LE(bound, exact.assignment.makespan)
          << soc.name() << " widths=" << widths.size();
      // And it must dominate the problem's own classic bound (it is a
      // strengthening, never a replacement).
      EXPECT_GE(bound, problem.lower_bound()) << soc.name();
    }
  }
}

// Same property on generated instances with power constraints in play.
TEST(LowerBound, AdmissibleOnGeneratedAndConstrainedInstances) {
  for (const int n : {8, 12, 16}) {
    const TamProblem problem = generated_problem(n, {16, 8, 8});
    const Cycles bound = exact_search_lower_bound(problem);
    const TamSolveResult exact = solve_exact(problem);
    ASSERT_TRUE(exact.feasible) << n;
    EXPECT_LE(bound, exact.assignment.makespan) << n;
  }
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 16);
  const TamProblem constrained =
      make_tam_problem(soc, table, {16, 16}, nullptr, -1, 1600.0);
  const Cycles bound = exact_search_lower_bound(constrained);
  const TamSolveResult exact = solve_exact(constrained);
  ASSERT_TRUE(exact.feasible);
  EXPECT_LE(bound, exact.assignment.makespan);
}

TEST(Staircase, MatchesTestTimeTableCellForCell) {
  const Soc soc = builtin_soc2();
  const TestTimeTable table(soc, 16);
  const Staircase stairs(table);
  ASSERT_EQ(stairs.max_width(), table.max_width());
  ASSERT_EQ(stairs.num_cores(), table.num_cores());
  for (int w = 1; w <= table.max_width(); ++w) {
    const Cycles* row = stairs.row(w);
    for (std::size_t i = 0; i < table.num_cores(); ++i) {
      EXPECT_EQ(row[i], table.time(i, w)) << "core " << i << " width " << w;
      EXPECT_EQ(stairs.at(i, w), table.time(i, w));
    }
  }
}

TEST(Staircase, RowStatsEqualScalarReduction) {
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 16);
  const Staircase stairs(table);
  for (int w = 1; w <= table.max_width(); ++w) {
    Cycles total = 0, max_single = 0;
    for (std::size_t i = 0; i < table.num_cores(); ++i) {
      total += table.time(i, w);
      max_single = std::max(max_single, table.time(i, w));
    }
    const Staircase::RowStats stats = stairs.row_stats(w);
    EXPECT_EQ(stats.total, total) << w;
    EXPECT_EQ(stats.max_single, max_single) << w;
  }
}

TEST(Staircase, ClampsWidthsToTheTableEdge) {
  const Soc soc = builtin_soc2();
  const TestTimeTable table(soc, 8);
  const Staircase stairs(table);
  // Beyond the table: the monotone envelope's edge row.
  EXPECT_EQ(stairs.row(99), stairs.row(8));
  EXPECT_EQ(stairs.at(0, 99), table.time(0, 8));
  // Below 1 clamps up to the narrowest row.
  EXPECT_EQ(stairs.row(0), stairs.row(1));
  EXPECT_EQ(stairs.row(-3), stairs.row(1));
}

TEST(CoreTables, CandidateMaskDropsAllButLowestEmptyBusPerClass) {
  TamProblem p;
  p.bus_widths = {8, 8, 8, 4};  // buses 0..2 identical, bus 3 distinct
  p.time = {{40, 40, 40, 80}, {30, 30, 30, 60}};
  p.allowed.assign(2, {1, 1, 1, 1});
  const exactcore::CoreTables t = exactcore::build_core_tables(p);
  ASSERT_TRUE(t.masked);
  ASSERT_EQ(t.num_classes, 2);
  // All four buses empty: only bus 0 represents the {0,1,2} class.
  EXPECT_EQ(exactcore::candidate_mask(t, t.allowed[0], 0b1111u), 0b1001u);
  // Bus 0 occupied: bus 1 becomes the class representative.
  EXPECT_EQ(exactcore::candidate_mask(t, t.allowed[0], 0b1110u), 0b1011u);
  // No empty buses: nothing is dropped.
  EXPECT_EQ(exactcore::candidate_mask(t, t.allowed[0], 0u), 0b1111u);
}

}  // namespace
}  // namespace soctest
