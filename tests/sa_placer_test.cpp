#include <gtest/gtest.h>

#include "layout/sa_placer.hpp"
#include "soc/builtin.hpp"
#include "soc/generator.hpp"
#include "soc/soc_format.hpp"

namespace soctest {
namespace {

TEST(SaPlacer, RequiresPlacement) {
  Rng rng(1);
  SocGeneratorOptions options;
  options.place = false;
  Soc soc = generate_soc(options, rng);
  soc.set_die(100, 100);
  EXPECT_THROW(sa_place(soc, SaPlacerOptions{}, rng), std::invalid_argument);
  EXPECT_THROW(placement_cost(soc), std::invalid_argument);
}

TEST(SaPlacer, KeepsPlacementLegal) {
  Rng rng(2);
  Soc soc = generate_soc(SocGeneratorOptions{}, rng);
  // Enlarge the die so the placer has room to move cores.
  soc.set_die(soc.die_width() + 20, soc.die_height() + 20);
  sa_place(soc, SaPlacerOptions{}, rng);
  EXPECT_EQ(soc.validate(), "");
}

TEST(SaPlacer, NeverWorsensCost) {
  for (std::uint64_t seed : {3u, 4u, 5u}) {
    Rng rng(seed);
    Soc soc = generate_soc(SocGeneratorOptions{}, rng);
    soc.set_die(soc.die_width() + 15, soc.die_height() + 15);
    const long long before = placement_cost(soc);
    sa_place(soc, SaPlacerOptions{}, rng);
    EXPECT_LE(placement_cost(soc), before) << "seed " << seed;
  }
}

TEST(SaPlacer, ImprovesShelfPackedSeedOnRoomyDie) {
  Rng rng(6);
  Soc soc = generate_soc(SocGeneratorOptions{}, rng);
  // Shelf packing hugs the bottom-left; a roomy die leaves clear headroom.
  soc.set_die(soc.die_width() * 2, soc.die_height() * 2);
  const long long before = placement_cost(soc);
  SaPlacerOptions options;
  options.iterations = 30000;
  sa_place(soc, options, rng);
  EXPECT_LT(placement_cost(soc), before);
}

TEST(SaPlacer, DeterministicForSeed) {
  auto run = [](std::uint64_t seed) {
    Rng rng(seed);
    Soc soc = generate_soc(SocGeneratorOptions{}, rng);
    soc.set_die(soc.die_width() + 10, soc.die_height() + 10);
    sa_place(soc, SaPlacerOptions{}, rng);
    return write_soc(soc);
  };
  EXPECT_EQ(run(42), run(42));
}

TEST(SaPlacer, RespectsMarginForMovedCores) {
  Rng rng(8);
  Soc soc = generate_soc(SocGeneratorOptions{}, rng);
  soc.set_die(soc.die_width() + 30, soc.die_height() + 30);
  SaPlacerOptions options;
  options.margin = 2;
  options.iterations = 5000;
  sa_place(soc, options, rng);
  // The placement must stay legal; margin is only guaranteed for moved
  // cores, so just assert global validity plus die-boundary clearance for
  // cores that clearly moved away from the seed edge.
  EXPECT_EQ(soc.validate(), "");
}

}  // namespace
}  // namespace soctest
