#include <gtest/gtest.h>

#include <csignal>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "report/json.hpp"
#include "service/frontdoor.hpp"
#include "service/protocol.hpp"
#include "service/transport.hpp"

namespace soctest {
namespace {

// The scale-out front door (docs/service.md): fingerprint sharding, TCP
// end-to-end relay, worker crash -> restart -> retried without a lost
// job, and front-door admission control.
//
// SOCTEST_SERVE_BIN is the built soctest-serve binary, injected by CMake;
// every FrontDoor here spawns real worker processes.

std::string req(const std::string& body) {
  return "{\"schema\":\"soctest-req-v1\"," + body + "}";
}

FrontDoorConfig test_config(int workers) {
  FrontDoorConfig config;
  config.workers = workers;
  config.serve_binary = SOCTEST_SERVE_BIN;
  config.listen = "127.0.0.1:0";
  return config;
}

/// FrontDoor + its serve() thread, stopped and joined on destruction.
struct RunningDoor {
  explicit RunningDoor(const FrontDoorConfig& config) : door(config) {
    const Status st = door.start();
    EXPECT_TRUE(st.ok()) << st.to_string();
    if (st.ok()) thread = std::thread([this] { door.serve(); });
  }
  ~RunningDoor() {
    door.stop();
    if (thread.joinable()) thread.join();
  }
  FrontDoor door;
  std::thread thread;
};

std::size_t count_finals(const std::vector<std::string>& lines) {
  std::size_t n = 0;
  for (const auto& line : lines) {
    if (line.find("\"schema\":\"soctest-resp-v1\"") != std::string::npos) ++n;
  }
  return n;
}

// ------------------------------------------------------------- sharding --

TEST(FrontDoorSharding, FingerprintIsDeterministicAndContentKeyed) {
  const std::string a = req("\"id\":\"x\",\"soc\":\"soc2\"");
  const std::string b = req("\"id\":\"y\",\"soc\":\"soc2\",\"buses\":3");
  const std::string c = req("\"id\":\"x\",\"soc\":\"soc3\"");
  // Same SOC -> same fingerprint regardless of id or knobs: routing is
  // cache-affine on SOC content, and knobs only pick the cache entry
  // within the worker.
  EXPECT_EQ(request_fingerprint(a), request_fingerprint(b));
  EXPECT_NE(request_fingerprint(a), request_fingerprint(c));
  // Stable across calls (capacity planning depends on it).
  EXPECT_EQ(request_fingerprint(a), request_fingerprint(a));
}

TEST(FrontDoorSharding, InlineSocTextOverridesTheName) {
  const std::string named = req("\"id\":\"n\",\"soc\":\"whatever\"");
  const std::string inline1 =
      req("\"id\":\"n\",\"soc\":\"whatever\",\"soc_text\":\"soc a\\ncore c1 "
          "10 20 5 1.0\\nend\"");
  const std::string inline2 =
      req("\"id\":\"n\",\"soc\":\"other-name\",\"soc_text\":\"soc a\\ncore "
          "c1 10 20 5 1.0\\nend\"");
  EXPECT_NE(request_fingerprint(named), request_fingerprint(inline1));
  // Identical inline text -> identical fingerprint, whatever the name
  // says: content-addressed, like the result cache.
  EXPECT_EQ(request_fingerprint(inline1), request_fingerprint(inline2));
}

TEST(FrontDoorSharding, ShardForLineCoversUnparseableLinesViaShardZero) {
  EXPECT_EQ(shard_for_line("this is not json", 4), 0);
  EXPECT_EQ(shard_for_line("", 4), 0);
  EXPECT_EQ(shard_for_line(req("\"id\":\"z\",\"soc\":\"soc1\""), 1), 0);
  const int shard = shard_for_line(req("\"id\":\"z\",\"soc\":\"soc1\""), 3);
  EXPECT_GE(shard, 0);
  EXPECT_LT(shard, 3);
}

// ----------------------------------------------------------- end to end --

TEST(FrontDoorEndToEnd, RelaysABatchAcrossTwoWorkersOverTcp) {
  RunningDoor running(test_config(2));
  ASSERT_GT(running.door.port(), 0);

  std::vector<std::string> lines;
  for (const char* soc : {"soc1", "soc2", "soc3", "soc4", "soc1", "soc2"}) {
    lines.push_back(req("\"id\":\"e2e-" + std::string(soc) +
                        "\",\"soc\":\"" + soc +
                        "\",\"solver\":\"greedy\""));
  }
  const auto responses = client_roundtrip(running.door.endpoint(), lines);
  ASSERT_TRUE(responses.ok()) << responses.status().to_string();
  EXPECT_EQ(count_finals(responses.value()), lines.size());
  for (const auto& line : responses.value()) {
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  }

  const FrontDoorStats stats = running.door.stats();
  EXPECT_EQ(stats.received, static_cast<long long>(lines.size()));
  EXPECT_EQ(stats.forwarded, static_cast<long long>(lines.size()));
  EXPECT_EQ(stats.completed, static_cast<long long>(lines.size()));
  EXPECT_EQ(stats.rejected, 0);
  EXPECT_EQ(stats.errors, 0);
}

TEST(FrontDoorEndToEnd, StreamedPartialsPassThroughToTheClient) {
  FrontDoorConfig config = test_config(1);
  config.serial_workers = true;
  RunningDoor running(config);

  const std::vector<std::string> lines = {
      req("\"id\":\"st\",\"soc\":\"soc2\",\"stream\":true,"
          "\"time_limit_ms\":5000")};
  const auto responses = client_roundtrip(running.door.endpoint(), lines);
  ASSERT_TRUE(responses.ok()) << responses.status().to_string();
  std::size_t partials = 0;
  for (const auto& line : responses.value()) {
    if (line.find("\"schema\":\"soctest-partial-v1\"") != std::string::npos) {
      ++partials;
    }
  }
  EXPECT_GE(partials, 1u) << "no partial relayed through the front door";
  EXPECT_EQ(count_finals(responses.value()), 1u);
  EXPECT_EQ(running.door.stats().partials,
            static_cast<long long>(partials));
}

// -------------------------------------------------------- fault handling --

TEST(FrontDoorFaults, WorkerCrashRestartsAndRetriesWithoutLosingTheJob) {
  FrontDoorConfig config = test_config(1);
  RunningDoor running(config);

  // A solve that reliably occupies its worker long enough to be killed
  // mid-flight (deadline-stopped after ~2 s; no_cache keeps it a miss).
  const std::vector<std::string> lines = {
      req("\"id\":\"crash\",\"soc\":\"soc4\",\"buses\":4,\"width\":64,"
          "\"time_limit_ms\":2000,\"no_cache\":true")};

  StatusOr<std::vector<std::string>> responses =
      io_error("client never ran");
  std::thread client([&] {
    responses = client_roundtrip(running.door.endpoint(), lines);
  });

  // Wait until the request is on the worker, then kill the process the
  // hard way (SIGKILL: no drain, simulating a crash).
  for (int i = 0; i < 200 && running.door.stats().forwarded < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  const std::vector<pid_t> pids = running.door.worker_pids();
  ASSERT_EQ(pids.size(), 1u);
  ASSERT_GT(pids[0], 0);
  ::kill(pids[0], SIGKILL);

  client.join();
  ASSERT_TRUE(responses.ok()) << responses.status().to_string();
  ASSERT_EQ(count_finals(responses.value()), 1u)
      << "the in-flight request was lost in the crash";
  EXPECT_NE(responses.value().back().find("\"ok\":true"), std::string::npos)
      << responses.value().back();

  const FrontDoorStats stats = running.door.stats();
  EXPECT_GE(stats.restarts, 1);
  EXPECT_GE(stats.retried, 1);
  EXPECT_EQ(stats.completed, 1);
}

TEST(FrontDoorFaults, AdmissionBoundRejectsWithRetryAdvice) {
  FrontDoorConfig config = test_config(1);
  config.max_inflight = 1;
  config.retry_after_ms = 25.0;
  RunningDoor running(config);

  // Five pipelined slow requests: the first occupies the only slot, the
  // rest bounce off the front-door admission bound.
  std::vector<std::string> lines;
  for (int i = 0; i < 5; ++i) {
    lines.push_back(req("\"id\":\"bp-" + std::to_string(i) +
                        "\",\"soc\":\"soc4\",\"buses\":4,\"width\":64,"
                        "\"time_limit_ms\":800,\"no_cache\":true"));
  }
  const auto responses = client_roundtrip(running.door.endpoint(), lines);
  ASSERT_TRUE(responses.ok()) << responses.status().to_string();
  // Every request is answered exactly once: no line is dropped, rejected
  // ones just answer immediately.
  EXPECT_EQ(count_finals(responses.value()), lines.size());

  std::size_t rejected = 0;
  for (const auto& line : responses.value()) {
    if (line.find("\"retry_after_ms\":25") != std::string::npos &&
        line.find("resource_exhausted") != std::string::npos) {
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 1u) << "no backpressure rejection reached the client";
  EXPECT_EQ(running.door.stats().rejected,
            static_cast<long long>(rejected));
}

TEST(FrontDoorFaults, AnswersPingsAuthoritatively) {
  RunningDoor running(test_config(1));

  const auto responses =
      client_roundtrip(running.door.endpoint(), {ping_json("fd-live")});
  ASSERT_TRUE(responses.ok()) << responses.status().to_string();
  ASSERT_EQ(responses.value().size(), 1u);
  std::string id;
  ASSERT_TRUE(parse_pong(responses.value()[0], &id))
      << responses.value()[0];
  EXPECT_EQ(id, "fd-live");
  // A ping is transport traffic: it is never forwarded and never counted
  // as a request.
  EXPECT_EQ(running.door.stats().received, 0);
  EXPECT_EQ(running.door.stats().forwarded, 0);
}

TEST(FrontDoorFaults, OversizedLineIsAnsweredAuthoritativelyAndResyncs) {
  RunningDoor running(test_config(1));

  // The front door must answer the oversized line itself — workers never
  // see it — and keep the connection usable for the next request.
  std::string big(kMaxProtocolLineBytes + 1, 'x');
  const auto responses = client_roundtrip(
      running.door.endpoint(),
      {big, req("\"id\":\"after\",\"soc\":\"soc1\",\"solver\":\"greedy\"")});
  ASSERT_TRUE(responses.ok()) << responses.status().to_string();
  ASSERT_EQ(responses.value().size(), 2u);
  EXPECT_EQ(responses.value()[0], oversized_line_response_json());
  EXPECT_NE(responses.value()[1].find("\"id\":\"after\""), std::string::npos);
  EXPECT_NE(responses.value()[1].find("\"ok\":true"), std::string::npos);

  const FrontDoorStats stats = running.door.stats();
  EXPECT_EQ(stats.received, 2);
  EXPECT_EQ(stats.forwarded, 1);
  EXPECT_EQ(stats.errors, 1);
}

TEST(FrontDoorFaults, HungWorkerIsDetectedKilledAndItsJobRetried) {
  // A SIGSTOP'd worker is the nasty case: its process exists, its listen
  // backlog still accepts, but nothing answers. Only heartbeat silence
  // identifies it; the front door must SIGKILL it and let the ordinary
  // crash machinery respawn and retry the in-flight job.
  FrontDoorConfig config = test_config(1);
  config.heartbeat_ms = 100.0;
  config.heartbeat_timeout_ms = 600.0;
  RunningDoor running(config);

  const std::vector<std::string> lines = {
      req("\"id\":\"hung\",\"soc\":\"soc4\",\"buses\":4,\"width\":64,"
          "\"time_limit_ms\":2000,\"no_cache\":true")};

  StatusOr<std::vector<std::string>> responses =
      io_error("client never ran");
  std::thread client([&] {
    responses = client_roundtrip(running.door.endpoint(), lines);
  });

  for (int i = 0; i < 200 && running.door.stats().forwarded < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  const std::vector<pid_t> pids = running.door.worker_pids();
  ASSERT_EQ(pids.size(), 1u);
  ASSERT_GT(pids[0], 0);
  ::kill(pids[0], SIGSTOP);

  client.join();
  ASSERT_TRUE(responses.ok()) << responses.status().to_string();
  ASSERT_EQ(count_finals(responses.value()), 1u)
      << "the in-flight request was lost on the hung worker";
  EXPECT_NE(responses.value().back().find("\"ok\":true"), std::string::npos)
      << responses.value().back();

  const FrontDoorStats stats = running.door.stats();
  EXPECT_GE(stats.hung_restarts, 1);
  EXPECT_GE(stats.restarts, 1);
  EXPECT_GE(stats.retried, 1);
  EXPECT_EQ(stats.completed, 1);
}

TEST(FrontDoorFaults, StartFailsFastOnAMissingWorkerBinary) {
  FrontDoorConfig config = test_config(1);
  config.serve_binary = "/nonexistent/soctest-serve";
  FrontDoor door(config);
  const Status st = door.start();
  EXPECT_FALSE(st.ok());
}

TEST(FrontDoorStats, ExitLineIsNameSortedPerTheCliMetricsContract) {
  // The documented CLI metrics contract (docs/observability.md) orders
  // every stats surface by name; the drain line must match it so log
  // scrapers can pin field positions.
  FrontDoorStats stats;
  stats.received = 9;
  stats.forwarded = 8;
  stats.rejected = 1;
  stats.completed = 7;
  stats.partials = 3;
  stats.errors = 2;
  stats.restarts = 4;
  stats.retried = 5;
  stats.hung_restarts = 6;
  EXPECT_EQ(frontdoor_stats_line(stats),
            "soctest-frontdoor: 7 completed, 2 errors, 8 forwarded, 6 hung, "
            "3 partials, 9 received, 1 rejected, 4 restarts, 5 retried");
}

}  // namespace
}  // namespace soctest
