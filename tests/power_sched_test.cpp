#include <gtest/gtest.h>

#include "sched/power_profile.hpp"
#include "sched/power_sched.hpp"
#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

Soc make_power_soc(const std::vector<double>& powers) {
  Soc soc("p", 40, 40);
  for (std::size_t i = 0; i < powers.size(); ++i) {
    Core c;
    c.name = "c" + std::to_string(i);
    c.num_inputs = 1;
    c.num_outputs = 1;
    c.num_patterns = 1;
    c.test_power_mw = powers[i];
    soc.add_core(c);
  }
  return soc;
}

TamProblem two_bus_problem(const std::vector<Cycles>& times) {
  TamProblem p;
  p.bus_widths = {8, 8};
  for (Cycles t : times) {
    p.time.push_back({t, t});
    p.allowed.push_back({1, 1});
  }
  return p;
}

TEST(PowerSched, NoBudgetMatchesPlainSchedule) {
  const TamProblem p = two_bus_problem({40, 30, 20, 10});
  const Soc soc = make_power_soc({100, 100, 100, 100});
  const std::vector<int> assignment{0, 1, 0, 1};
  const auto ps = build_power_aware_schedule(p, soc, assignment);
  ASSERT_TRUE(ps.feasible);
  EXPECT_EQ(ps.schedule.makespan, build_schedule(p, assignment).makespan);
  EXPECT_EQ(ps.idle_inserted,
            2 * ps.schedule.makespan - (40 + 30 + 20 + 10));
  EXPECT_EQ(check_schedule_with_gaps(p, assignment, ps.schedule), "");
}

TEST(PowerSched, SerializesWhenPairOverBudget) {
  const TamProblem p = two_bus_problem({50, 50});
  const Soc soc = make_power_soc({300, 300});
  const std::vector<int> assignment{0, 1};
  PowerScheduleOptions options;
  options.p_max_mw = 500;  // the two cores cannot overlap
  const auto ps = build_power_aware_schedule(p, soc, assignment, options);
  ASSERT_TRUE(ps.feasible);
  EXPECT_EQ(ps.schedule.makespan, 100);  // forced sequential across buses
  EXPECT_EQ(check_power(soc, ps.schedule, 500), "");
  EXPECT_EQ(check_schedule_with_gaps(p, assignment, ps.schedule), "");
}

TEST(PowerSched, OverlapsWhenBudgetAllows) {
  const TamProblem p = two_bus_problem({50, 50});
  const Soc soc = make_power_soc({300, 300});
  const std::vector<int> assignment{0, 1};
  PowerScheduleOptions options;
  options.p_max_mw = 600;
  const auto ps = build_power_aware_schedule(p, soc, assignment, options);
  ASSERT_TRUE(ps.feasible);
  EXPECT_EQ(ps.schedule.makespan, 50);
  EXPECT_EQ(ps.idle_inserted, 0);
}

TEST(PowerSched, SingleCoreOverBudgetIsInfeasible) {
  const TamProblem p = two_bus_problem({50});
  const Soc soc = make_power_soc({700});
  PowerScheduleOptions options;
  options.p_max_mw = 600;
  const auto ps = build_power_aware_schedule(p, soc, {0}, options);
  EXPECT_FALSE(ps.feasible);
  EXPECT_NE(ps.error.find("exceeds"), std::string::npos);
}

TEST(PowerSched, PrecedenceHonoredAcrossBuses) {
  const TamProblem p = two_bus_problem({50, 30});
  const Soc soc = make_power_soc({100, 100});
  const std::vector<int> assignment{0, 1};
  PowerScheduleOptions options;
  options.precedences = {{0, 1}};  // core 1 waits for core 0
  const auto ps = build_power_aware_schedule(p, soc, assignment, options);
  ASSERT_TRUE(ps.feasible);
  EXPECT_EQ(ps.schedule.makespan, 80);
  EXPECT_EQ(check_schedule_with_gaps(p, assignment, ps.schedule,
                                     options.precedences),
            "");
}

TEST(PowerSched, PrecedenceCycleDetected) {
  const TamProblem p = two_bus_problem({50, 30});
  const Soc soc = make_power_soc({100, 100});
  PowerScheduleOptions options;
  options.precedences = {{0, 1}, {1, 0}};
  const auto ps = build_power_aware_schedule(p, soc, {0, 1}, options);
  EXPECT_FALSE(ps.feasible);
  EXPECT_NE(ps.error.find("deadlock"), std::string::npos);
}

TEST(PowerSched, InvalidPrecedenceRejected) {
  const TamProblem p = two_bus_problem({50, 30});
  const Soc soc = make_power_soc({100, 100});
  PowerScheduleOptions options;
  options.precedences = {{0, 9}};
  EXPECT_FALSE(build_power_aware_schedule(p, soc, {0, 1}, options).feasible);
}

TEST(PowerSched, MutexPairsNeverOverlap) {
  const TamProblem p = two_bus_problem({50, 40});
  const Soc soc = make_power_soc({100, 100});
  const std::vector<int> assignment{0, 1};
  PowerScheduleOptions options;
  options.mutex_pairs = {{0, 1}};  // shared BIST engine
  const auto ps = build_power_aware_schedule(p, soc, assignment, options);
  ASSERT_TRUE(ps.feasible);
  EXPECT_EQ(ps.schedule.makespan, 90);  // forced sequential
  EXPECT_EQ(check_schedule_with_gaps(p, assignment, ps.schedule, {},
                                     options.mutex_pairs),
            "");
}

TEST(PowerSched, MutexOnSameBusIsFree) {
  // Cores on the same bus never overlap anyway.
  const TamProblem p = two_bus_problem({50, 40});
  const Soc soc = make_power_soc({100, 100});
  const std::vector<int> assignment{0, 0};
  PowerScheduleOptions options;
  options.mutex_pairs = {{0, 1}};
  const auto ps = build_power_aware_schedule(p, soc, assignment, options);
  ASSERT_TRUE(ps.feasible);
  EXPECT_EQ(ps.schedule.makespan, 90);
}

TEST(PowerSched, InvalidMutexRejected) {
  const TamProblem p = two_bus_problem({50, 40});
  const Soc soc = make_power_soc({100, 100});
  PowerScheduleOptions options;
  options.mutex_pairs = {{0, 0}};
  EXPECT_FALSE(build_power_aware_schedule(p, soc, {0, 1}, options).feasible);
}

TEST(PowerSched, CheckWithGapsCatchesMutexOverlap) {
  const TamProblem p = two_bus_problem({50, 40});
  const std::vector<int> assignment{0, 1};
  TestSchedule s;
  s.tests = {{0, 0, 0, 50}, {1, 1, 10, 50}};
  s.makespan = 50;
  EXPECT_NE(check_schedule_with_gaps(p, assignment, s, {}, {{0, 1}}), "");
  EXPECT_EQ(check_schedule_with_gaps(p, assignment, s, {}, {}), "");
}

TEST(PowerSched, Deterministic) {
  const TamProblem p = two_bus_problem({50, 40, 30, 20, 10});
  const Soc soc = make_power_soc({300, 250, 200, 150, 100});
  const std::vector<int> assignment{0, 1, 0, 1, 0};
  PowerScheduleOptions options;
  options.p_max_mw = 450;
  const auto a = build_power_aware_schedule(p, soc, assignment, options);
  const auto b = build_power_aware_schedule(p, soc, assignment, options);
  ASSERT_TRUE(a.feasible && b.feasible);
  ASSERT_EQ(a.schedule.tests.size(), b.schedule.tests.size());
  for (std::size_t k = 0; k < a.schedule.tests.size(); ++k) {
    EXPECT_EQ(a.schedule.tests[k].core, b.schedule.tests[k].core);
    EXPECT_EQ(a.schedule.tests[k].start, b.schedule.tests[k].start);
  }
}

TEST(PowerSched, CheckScheduleWithGapsCatchesViolations) {
  const TamProblem p = two_bus_problem({50, 30});
  const Soc soc = make_power_soc({100, 100});
  const std::vector<int> assignment{0, 0};
  TestSchedule bad;
  bad.tests = {{0, 0, 0, 50}, {1, 0, 40, 70}};  // overlap on bus 0
  bad.makespan = 70;
  EXPECT_NE(check_schedule_with_gaps(p, assignment, bad), "");
  TestSchedule gapped;
  gapped.tests = {{0, 0, 0, 50}, {1, 0, 60, 90}};  // gap is fine
  gapped.makespan = 90;
  EXPECT_EQ(check_schedule_with_gaps(p, assignment, gapped), "");
}

/// Property sweep: for random problems and budgets, the idle-insertion
/// schedule always meets the budget, never beats the no-budget makespan,
/// and matches it when the budget is the total power.
class PowerSchedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PowerSchedSweep, BudgetRespectedAndMonotone) {
  Rng rng(GetParam());
  testutil::RandomProblemOptions problem_options;
  problem_options.num_cores = 8;
  problem_options.num_buses = 3;
  const TamProblem p = testutil::random_problem(rng, problem_options);
  std::vector<double> powers;
  double max_power = 0, total_power = 0;
  for (int i = 0; i < 8; ++i) {
    powers.push_back(rng.uniform(100, 500));
    max_power = std::max(max_power, powers.back());
    total_power += powers.back();
  }
  const Soc soc = make_power_soc(powers);
  const auto solved = solve_exact(p);
  ASSERT_TRUE(solved.feasible);
  const auto& assignment = solved.assignment.core_to_bus;

  // Note: makespan is deliberately NOT asserted monotone in the budget —
  // greedy list scheduling under resource ceilings exhibits Graham
  // anomalies, where loosening a constraint can occasionally lengthen the
  // realized schedule.
  Cycles last_makespan = -1;
  for (double budget : {max_power, max_power * 1.3, max_power * 1.8, total_power}) {
    PowerScheduleOptions options;
    options.p_max_mw = budget;
    const auto ps = build_power_aware_schedule(p, soc, assignment, options);
    ASSERT_TRUE(ps.feasible) << "budget " << budget;
    EXPECT_EQ(check_power(soc, ps.schedule, budget), "");
    EXPECT_EQ(check_schedule_with_gaps(p, assignment, ps.schedule), "");
    EXPECT_GE(ps.schedule.makespan, solved.assignment.makespan);
    last_makespan = ps.schedule.makespan;
  }
  // At total power the ceiling is slack: plain makespan must be recovered.
  EXPECT_EQ(last_makespan, build_schedule(p, assignment).makespan);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PowerSchedSweep,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(PowerSched, VsPairwiseSerializationOnSoc1) {
  // Compares the paper's pairwise serialization against scheduling the
  // power-oblivious optimal assignment with idle insertion. Neither
  // dominates universally: pairwise re-optimizes the assignment, idle
  // insertion keeps the best assignment but may stall buses. Where the
  // pairwise constraint is *pessimistic* (the realized peak would already
  // fit), idle insertion provably wins or ties.
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 16);
  const TamProblem free_problem = make_tam_problem(soc, table, {16, 16});
  const auto free_solved = solve_exact(free_problem);

  for (double p_max : {1900.0, 1700.0, 1500.0}) {
    const TamProblem constrained =
        make_tam_problem(soc, table, {16, 16}, nullptr, -1, p_max);
    const auto pairwise = solve_exact(constrained);
    ASSERT_TRUE(pairwise.feasible);
    PowerScheduleOptions options;
    options.p_max_mw = p_max;
    const auto ps = build_power_aware_schedule(
        free_problem, soc, free_solved.assignment.core_to_bus, options);
    ASSERT_TRUE(ps.feasible) << p_max;
    // Both approaches must actually meet the budget...
    EXPECT_EQ(check_power(soc, ps.schedule, p_max), "");
    // ...and neither can beat the unconstrained optimum.
    EXPECT_GE(ps.schedule.makespan, free_solved.assignment.makespan);
    EXPECT_GE(pairwise.assignment.makespan, free_solved.assignment.makespan);
  }

  // At 1900 mW the pairwise constraint is active (a 1967 mW pair exists)
  // but the power-oblivious optimum can run under the ceiling with little
  // or no idle time: idle insertion must win or tie there.
  const TamProblem constrained_1900 =
      make_tam_problem(soc, table, {16, 16}, nullptr, -1, 1900.0);
  const auto pairwise_1900 = solve_exact(constrained_1900);
  PowerScheduleOptions options_1900;
  options_1900.p_max_mw = 1900.0;
  const auto ps_1900 = build_power_aware_schedule(
      free_problem, soc, free_solved.assignment.core_to_bus, options_1900);
  ASSERT_TRUE(pairwise_1900.feasible && ps_1900.feasible);
  EXPECT_GT(pairwise_1900.assignment.makespan,
            free_solved.assignment.makespan);  // constraint active
  EXPECT_LE(ps_1900.schedule.makespan, pairwise_1900.assignment.makespan);
}

}  // namespace
}  // namespace soctest
