#include <gtest/gtest.h>

#include "sched/power_sched.hpp"
#include "sched/preemptive.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

Soc make_power_soc(const std::vector<double>& powers) {
  Soc soc("p", 40, 40);
  for (std::size_t i = 0; i < powers.size(); ++i) {
    Core c;
    c.name = "c" + std::to_string(i);
    c.num_inputs = 1;
    c.num_outputs = 1;
    c.num_patterns = 1;
    c.test_power_mw = powers[i];
    soc.add_core(c);
  }
  return soc;
}

TamProblem two_bus(const std::vector<Cycles>& times) {
  TamProblem p;
  p.bus_widths = {8, 8};
  for (Cycles t : times) {
    p.time.push_back({t, t});
    p.allowed.push_back({1, 1});
  }
  return p;
}

TEST(Preemptive, NoBudgetEqualsBusLoads) {
  const TamProblem p = two_bus({50, 30, 20});
  const Soc soc = make_power_soc({100, 100, 100});
  const std::vector<int> assignment{0, 1, 1};
  const auto r = build_preemptive_schedule(p, soc, assignment, -1);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.schedule.makespan, 50);
  EXPECT_EQ(r.preemptions, 0);  // no budget, no reason to preempt
  EXPECT_EQ(check_preemptive_schedule(p, soc, assignment, r.schedule, -1), "");
}

TEST(Preemptive, SplitsTestsToFillPowerHeadroom) {
  // Two heavy cores on distinct buses cannot overlap (budget 500), but a
  // light core can run alongside either. Preemption interleaves heavies
  // and keeps the light one flexible.
  const TamProblem p = two_bus({60, 60});
  const Soc soc = make_power_soc({300, 300});
  const std::vector<int> assignment{0, 1};
  const auto r = build_preemptive_schedule(p, soc, assignment, 500);
  ASSERT_TRUE(r.feasible);
  // Serialization is unavoidable: total work 120 on a single power slot.
  EXPECT_EQ(r.schedule.makespan, 120);
  EXPECT_EQ(check_preemptive_schedule(p, soc, assignment, r.schedule, 500), "");
}

TEST(Preemptive, CoreTotalsConserved) {
  Rng rng(11);
  testutil::RandomProblemOptions options;
  options.num_cores = 7;
  options.num_buses = 3;
  const TamProblem p = testutil::random_problem(rng, options);
  std::vector<double> powers;
  for (int i = 0; i < 7; ++i) powers.push_back(rng.uniform(100, 400));
  const Soc soc = make_power_soc(powers);
  std::vector<int> assignment;
  for (int i = 0; i < 7; ++i) assignment.push_back(static_cast<int>(rng.index(3)));
  const auto r = build_preemptive_schedule(p, soc, assignment, 600);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(check_preemptive_schedule(p, soc, assignment, r.schedule, 600), "");
  for (std::size_t i = 0; i < 7; ++i) {
    EXPECT_EQ(r.schedule.core_total(i),
              p.time[i][static_cast<std::size_t>(assignment[i])]);
  }
}

TEST(Preemptive, GanttRendersSegments) {
  const TamProblem p = two_bus({60, 60});
  const Soc soc = make_power_soc({300, 300});
  const std::vector<int> assignment{0, 1};
  const auto r = build_preemptive_schedule(p, soc, assignment, 500);
  ASSERT_TRUE(r.feasible);
  const std::string art = render_preemptive_gantt(soc, r.schedule, 40);
  EXPECT_NE(art.find("bus 0"), std::string::npos);
  EXPECT_NE(art.find("bus 1"), std::string::npos);
  EXPECT_NE(art.find("cycles"), std::string::npos);
  EXPECT_EQ(render_preemptive_gantt(soc, PreemptiveSchedule{}),
            "(empty schedule)\n");
}

TEST(Preemptive, OverbudgetCoreRejected) {
  const TamProblem p = two_bus({10});
  const Soc soc = make_power_soc({900});
  const auto r = build_preemptive_schedule(p, soc, {0}, 500);
  EXPECT_FALSE(r.feasible);
  EXPECT_NE(r.error.find("exceeds"), std::string::npos);
}

class PreemptiveSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PreemptiveSweep, BudgetAlwaysRespectedAndBeatsOrTiesIdleInsertion) {
  Rng rng(GetParam());
  testutil::RandomProblemOptions options;
  options.num_cores = 8;
  options.num_buses = 3;
  const TamProblem p = testutil::random_problem(rng, options);
  std::vector<double> powers;
  double max_power = 0;
  for (int i = 0; i < 8; ++i) {
    powers.push_back(rng.uniform(100, 500));
    max_power = std::max(max_power, powers.back());
  }
  const Soc soc = make_power_soc(powers);
  std::vector<int> assignment;
  for (int i = 0; i < 8; ++i) assignment.push_back(static_cast<int>(rng.index(3)));
  int preemptive_wins = 0, ties = 0, losses = 0;
  for (double factor : {1.0, 1.4, 2.0}) {
    const double budget = max_power * factor;
    const auto pre = build_preemptive_schedule(p, soc, assignment, budget);
    ASSERT_TRUE(pre.feasible) << budget;
    EXPECT_EQ(check_preemptive_schedule(p, soc, assignment, pre.schedule, budget),
              "");
    PowerScheduleOptions np_options;
    np_options.p_max_mw = budget;
    const auto np = build_power_aware_schedule(p, soc, assignment, np_options);
    ASSERT_TRUE(np.feasible);
    if (pre.schedule.makespan < np.schedule.makespan) {
      ++preemptive_wins;
    } else if (pre.schedule.makespan == np.schedule.makespan) {
      ++ties;
    } else {
      ++losses;
    }
    // Preemptive can never beat the per-bus load lower bound.
    Cycles max_load = 0;
    std::vector<Cycles> load(3, 0);
    for (std::size_t i = 0; i < 8; ++i) {
      load[static_cast<std::size_t>(assignment[i])] +=
          p.time[i][static_cast<std::size_t>(assignment[i])];
    }
    for (Cycles l : load) max_load = std::max(max_load, l);
    EXPECT_GE(pre.schedule.makespan, max_load);
  }
  // Both are greedy heuristics: preemption should rarely lose outright.
  EXPECT_LE(losses, 1) << "wins " << preemptive_wins << " ties " << ties;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreemptiveSweep,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace soctest
