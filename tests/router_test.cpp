#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "layout/router.hpp"

namespace soctest {
namespace {

TEST(Router, StraightLineOnEmptyGrid) {
  const DieGrid grid(10, 10);
  const GridRouter router(grid);
  const auto path = router.route({0, 0}, {9, 0});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->length(), 9);
  EXPECT_EQ(path->cells.front(), (Point{0, 0}));
  EXPECT_EQ(path->cells.back(), (Point{9, 0}));
}

TEST(Router, ManhattanOptimalOnEmptyGrid) {
  const DieGrid grid(20, 20);
  const GridRouter router(grid);
  const auto path = router.route({3, 4}, {15, 11});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->length(), manhattan({3, 4}, {15, 11}));
}

TEST(Router, SameSourceSink) {
  const DieGrid grid(5, 5);
  const GridRouter router(grid);
  const auto path = router.route({2, 2}, {2, 2});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->length(), 0);
}

TEST(Router, DetoursAroundWall) {
  DieGrid grid(10, 10);
  for (int y = 0; y < 9; ++y) grid.set_blocked({5, y}, true);  // wall with gap at top
  const GridRouter router(grid);
  const auto path = router.route({0, 0}, {9, 0});
  ASSERT_TRUE(path.has_value());
  // Must climb to y=9 and back: 9 right + 2*9 vertical = 27.
  EXPECT_EQ(path->length(), 27);
  for (const auto& p : path->cells) EXPECT_FALSE(grid.blocked(p));
}

TEST(Router, ReportsUnreachable) {
  DieGrid grid(10, 10);
  for (int y = 0; y < 10; ++y) grid.set_blocked({5, y}, true);  // full wall
  const GridRouter router(grid);
  EXPECT_FALSE(router.route({0, 0}, {9, 0}).has_value());
}

TEST(Router, BlockedEndpointIsUnroutable) {
  DieGrid grid(5, 5);
  grid.set_blocked({4, 4}, true);
  const GridRouter router(grid);
  EXPECT_FALSE(router.route({0, 0}, {4, 4}).has_value());
  EXPECT_FALSE(router.route({4, 4}, {0, 0}).has_value());
}

TEST(Router, OutOfBoundsEndpointThrows) {
  const DieGrid grid(5, 5);
  const GridRouter router(grid);
  EXPECT_THROW(router.route({0, 0}, {5, 0}), std::invalid_argument);
}

TEST(Router, PathCellsAreContiguous) {
  DieGrid grid(15, 15);
  grid.set_blocked({7, 7}, true);
  grid.set_blocked({7, 8}, true);
  const GridRouter router(grid);
  const auto path = router.route({0, 7}, {14, 8});
  ASSERT_TRUE(path.has_value());
  for (std::size_t k = 1; k < path->cells.size(); ++k) {
    EXPECT_EQ(manhattan(path->cells[k - 1], path->cells[k]), 1);
  }
}

TEST(Router, WeightedAvoidsExpensiveCells) {
  const DieGrid grid(3, 5);
  std::vector<double> cost(static_cast<std::size_t>(grid.num_cells()), 0.0);
  // Make the straight middle column expensive.
  for (int y = 0; y < 5; ++y) cost[grid.index({1, y})] = 10.0;
  const GridRouter router(grid);
  const auto path = router.route_weighted({0, 2}, {2, 2}, cost);
  ASSERT_TRUE(path.has_value());
  // It must still pass column 1 somewhere (no way around on a 3-wide grid),
  // but should do so exactly once.
  int col1 = 0;
  for (const auto& p : path->cells) {
    if (p.x == 1) ++col1;
  }
  EXPECT_EQ(col1, 1);
}

TEST(Router, WeightedMatchesBfsOnZeroCosts) {
  DieGrid grid(12, 12);
  grid.set_blocked({6, 6}, true);
  const GridRouter router(grid);
  const std::vector<double> zero(static_cast<std::size_t>(grid.num_cells()), 0.0);
  const auto a = router.route({0, 0}, {11, 11});
  const auto b = router.route_weighted({0, 0}, {11, 11}, zero);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->length(), b->length());
}

TEST(Router, WeightedCostSizeMismatchThrows) {
  const DieGrid grid(4, 4);
  const GridRouter router(grid);
  EXPECT_THROW(router.route_weighted({0, 0}, {1, 1}, {1.0}), std::invalid_argument);
}

TEST(Router, DistanceMapSingleSource) {
  const DieGrid grid(6, 6);
  const GridRouter router(grid);
  const auto dist = router.distance_map({{0, 0}});
  EXPECT_EQ(dist[grid.index({0, 0})], 0);
  EXPECT_EQ(dist[grid.index({5, 5})], 10);
  EXPECT_EQ(dist[grid.index({3, 2})], 5);
}

TEST(Router, DistanceMapIgnoresBlockedSources) {
  DieGrid grid(4, 4);
  grid.set_blocked({0, 0}, true);
  const GridRouter router(grid);
  const auto dist = router.distance_map({{0, 0}});
  for (int v : dist) EXPECT_EQ(v, -1);
}

TEST(Router, DistanceMapMarksUnreachable) {
  DieGrid grid(5, 5);
  for (int y = 0; y < 5; ++y) grid.set_blocked({2, y}, true);
  const GridRouter router(grid);
  const auto dist = router.distance_map({{0, 0}});
  EXPECT_EQ(dist[grid.index({4, 4})], -1);
  EXPECT_GE(dist[grid.index({1, 4})], 0);
}

TEST(Router, MultiRouteFindsNearestPair) {
  const DieGrid grid(10, 10);
  const GridRouter router(grid);
  const std::vector<double> zero(static_cast<std::size_t>(grid.num_cells()), 0.0);
  const auto path = router.route_weighted_multi(
      {{0, 0}, {0, 9}}, {{9, 9}, {4, 9}}, zero);
  ASSERT_TRUE(path.has_value());
  // Best pair: (0,9) -> (4,9), distance 4.
  EXPECT_EQ(path->length(), 4);
  EXPECT_EQ(path->cells.front(), (Point{0, 9}));
  EXPECT_EQ(path->cells.back(), (Point{4, 9}));
}

TEST(Router, MultiRouteSourceIsTarget) {
  const DieGrid grid(5, 5);
  const GridRouter router(grid);
  const std::vector<double> zero(static_cast<std::size_t>(grid.num_cells()), 0.0);
  const auto path = router.route_weighted_multi({{2, 2}}, {{2, 2}}, zero);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->length(), 0);
}

TEST(Router, MultiRouteHandlesBlockedEndpoints) {
  DieGrid grid(5, 5);
  grid.set_blocked({0, 0}, true);
  grid.set_blocked({4, 4}, true);
  const GridRouter router(grid);
  const std::vector<double> zero(static_cast<std::size_t>(grid.num_cells()), 0.0);
  // Blocked source/target ignored; remaining pair works.
  const auto path =
      router.route_weighted_multi({{0, 0}, {1, 1}}, {{4, 4}, {3, 3}}, zero);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->length(), 4);
  // All endpoints blocked -> no route.
  EXPECT_FALSE(router.route_weighted_multi({{0, 0}}, {{4, 4}}, zero).has_value());
}

TEST(Router, MultiRouteMatchesDistanceMapMinimum) {
  DieGrid grid(12, 12);
  for (int y = 2; y < 10; ++y) grid.set_blocked({6, y}, true);
  const GridRouter router(grid);
  const std::vector<double> zero(static_cast<std::size_t>(grid.num_cells()), 0.0);
  const std::vector<Point> sources{{1, 1}, {1, 10}};
  const std::vector<Point> targets{{10, 5}, {11, 11}};
  const auto path = router.route_weighted_multi(sources, targets, zero);
  ASSERT_TRUE(path.has_value());
  const auto dist = router.distance_map(sources);
  int best = -1;
  for (const auto& t : targets) {
    const int d = dist[grid.index(t)];
    if (d >= 0 && (best < 0 || d < best)) best = d;
  }
  EXPECT_EQ(path->length(), best);
}

/// Property: multi-source distance map equals the min over per-source maps.
class RouterRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RouterRandom, MultiSourceEqualsMinOfSingleSources) {
  Rng rng(GetParam());
  DieGrid grid(14, 14);
  for (int i = 0; i < 40; ++i) {
    grid.set_blocked({static_cast<int>(rng.uniform_int(0, 13)),
                      static_cast<int>(rng.uniform_int(0, 13))},
                     true);
  }
  const GridRouter router(grid);
  std::vector<Point> sources;
  for (int s = 0; s < 3; ++s) {
    sources.push_back({static_cast<int>(rng.uniform_int(0, 13)),
                       static_cast<int>(rng.uniform_int(0, 13))});
  }
  const auto multi = router.distance_map(sources);
  std::vector<std::vector<int>> singles;
  for (const auto& s : sources) singles.push_back(router.distance_map({s}));
  for (int idx = 0; idx < grid.num_cells(); ++idx) {
    int expect = -1;
    for (const auto& single : singles) {
      const int d = single[static_cast<std::size_t>(idx)];
      if (d >= 0 && (expect < 0 || d < expect)) expect = d;
    }
    EXPECT_EQ(multi[static_cast<std::size_t>(idx)], expect) << "cell " << idx;
  }
}

TEST_P(RouterRandom, BfsPathLengthMatchesDistanceMap) {
  Rng rng(GetParam() + 1000);
  DieGrid grid(12, 12);
  for (int i = 0; i < 30; ++i) {
    grid.set_blocked({static_cast<int>(rng.uniform_int(0, 11)),
                      static_cast<int>(rng.uniform_int(0, 11))},
                     true);
  }
  const GridRouter router(grid);
  const Point from{0, 0}, to{11, 11};
  if (grid.blocked(from) || grid.blocked(to)) return;
  const auto path = router.route(from, to);
  const auto dist = router.distance_map({from});
  if (path) {
    EXPECT_EQ(path->length(), dist[grid.index(to)]);
  } else {
    EXPECT_EQ(dist[grid.index(to)], -1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterRandom,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace soctest
