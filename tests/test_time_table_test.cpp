#include <gtest/gtest.h>

#include "soc/builtin.hpp"
#include "wrapper/test_time_table.hpp"

namespace soctest {
namespace {

TEST(TestTimeTable, RejectsBadWidth) {
  const Soc soc = builtin_soc2();
  EXPECT_THROW(TestTimeTable(soc, 0), std::invalid_argument);
  const TestTimeTable table(soc, 8);
  EXPECT_THROW(table.time(0, 0), std::out_of_range);
  EXPECT_THROW(table.time(0, 9), std::out_of_range);
}

TEST(TestTimeTable, MonotoneNonIncreasing) {
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 64);
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    for (int w = 2; w <= 64; ++w) {
      EXPECT_LE(table.time(i, w), table.time(i, w - 1))
          << "core " << i << " width " << w;
    }
  }
}

TEST(TestTimeTable, EnvelopeNeverAboveRaw) {
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 48);
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    for (int w = 1; w <= 48; ++w) {
      EXPECT_LE(table.time(i, w), table.raw_time(i, w));
    }
  }
}

TEST(TestTimeTable, EffectiveWidthAchievesEnvelope) {
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 48);
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    for (int w = 1; w <= 48; ++w) {
      const int ew = table.effective_width(i, w);
      EXPECT_LE(ew, w);
      EXPECT_GE(ew, 1);
      EXPECT_EQ(table.raw_time(i, ew), table.time(i, w));
    }
  }
}

TEST(TestTimeTable, ParetoWidthsStrictlyImprove) {
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 64);
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    const auto widths = table.pareto_widths(i);
    ASSERT_FALSE(widths.empty());
    EXPECT_EQ(widths.front(), 1);
    for (std::size_t k = 1; k < widths.size(); ++k) {
      EXPECT_LT(table.time(i, widths[k]), table.time(i, widths[k - 1]));
    }
  }
}

TEST(TestTimeTable, TotalTimeIsSum) {
  const Soc soc = builtin_soc2();
  const TestTimeTable table(soc, 16);
  Cycles sum = 0;
  for (std::size_t i = 0; i < soc.num_cores(); ++i) sum += table.time(i, 16);
  EXPECT_EQ(table.total_time(16), sum);
}

TEST(TestTimeTable, WidthOneMatchesSerialFormula) {
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 4);
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    const Core& c = soc.core(i);
    const Cycles si = c.scan_in_elements();
    const Cycles so = c.scan_out_elements();
    const Cycles expect =
        c.num_patterns * (1 + std::max(si, so)) + std::min(si, so);
    EXPECT_EQ(table.time(i, 1), expect) << c.name;
  }
}

TEST(TestTimeTable, BigCoresBenefitFromWidth) {
  // s38417 (32 scan chains) must speed up dramatically from w=1 to w=32.
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 32);
  const auto idx = *soc.find_core("s38417");
  EXPECT_LT(table.time(idx, 32) * 10, table.time(idx, 1));
}

}  // namespace
}  // namespace soctest
