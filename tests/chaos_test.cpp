#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "service/chaos.hpp"
#include "service/protocol.hpp"
#include "service/retry.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"

namespace soctest {
namespace {

// The chaos proxy itself (docs/robustness.md): a fault-free proxy is an
// invisible wire, faults are deterministic per (seed, connection), and
// every fault respects the line-boundary contract — the proxy corrupts
// the stream, never the bytes inside a real response line.

struct RunningTcp {
  explicit RunningTcp(const ServiceConfig& config) : service(config) {
    thread = std::thread(
        [this] { serve_tcp(service, "127.0.0.1:0", &port, &stop); });
    for (int i = 0; i < 500 && port.load() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GT(port.load(), 0);
  }
  ~RunningTcp() {
    stop.store(true);
    if (thread.joinable()) thread.join();
  }
  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(port.load());
  }

  SolveService service;
  std::atomic<int> port{0};
  std::atomic<bool> stop{false};
  std::thread thread;
};

struct RunningChaos {
  explicit RunningChaos(const ChaosConfig& config) : proxy(config) {
    const Status st = proxy.start();
    EXPECT_TRUE(st.ok()) << st.to_string();
    thread = std::thread([this] { proxy.serve(&stop); });
  }
  ~RunningChaos() {
    stop.store(true);
    if (thread.joinable()) thread.join();
  }

  ChaosProxy proxy;
  std::atomic<bool> stop{false};
  std::thread thread;
};

std::vector<std::string> no_cache_batch(const std::string& prefix, int n) {
  std::vector<std::string> lines;
  const char* socs[] = {"soc1", "soc2", "soc3", "soc4"};
  for (int i = 0; i < n; ++i) {
    lines.push_back("{\"schema\":\"soctest-req-v1\",\"id\":\"" + prefix +
                    "-" + std::to_string(i) + "\",\"soc\":\"" +
                    socs[i % 4] +
                    "\",\"solver\":\"greedy\",\"no_cache\":true}");
  }
  return lines;
}

std::size_t count_finals(const std::vector<std::string>& lines) {
  std::size_t n = 0;
  for (const auto& line : lines) {
    if (line.find("\"schema\":\"soctest-resp-v1\"") != std::string::npos) ++n;
  }
  return n;
}

// ----------------------------------------------------------- fault free --

TEST(ChaosProxyTest, FaultFreeProxyIsAByteIdenticalWire) {
  ServiceConfig config;
  config.serial = true;
  RunningTcp server(config);

  ChaosConfig chaos;  // all probabilities zero
  chaos.upstream = server.endpoint();
  RunningChaos proxy(chaos);

  const auto lines = no_cache_batch("wire", 6);
  const auto direct = client_roundtrip(server.endpoint(), lines);
  ASSERT_TRUE(direct.ok()) << direct.status().to_string();
  const auto proxied = client_roundtrip(proxy.proxy.endpoint(), lines);
  ASSERT_TRUE(proxied.ok()) << proxied.status().to_string();

  EXPECT_EQ(proxied.value(), direct.value());

  const ChaosStats stats = proxy.proxy.stats();
  EXPECT_EQ(stats.connections, 1);
  EXPECT_EQ(stats.drops + stats.tears + stats.delays + stats.garbage +
                stats.halfopen,
            0);
  EXPECT_GT(stats.bytes_to_upstream, 0);
  EXPECT_GT(stats.bytes_to_client, 0);
}

TEST(ChaosProxyTest, FaultScheduleIsDeterministicPerSeed) {
  ServiceConfig config;
  config.serial = true;
  RunningTcp server(config);

  // Same seed, same connection sequence -> identical per-connection fault
  // plan. The census counts accept-time decisions (delay assignment) —
  // per-write events like tear counts depend on kernel chunking and are
  // deterministic per plan, not per byte.
  const auto census = [&](std::uint64_t seed) {
    ChaosConfig chaos;
    chaos.upstream = server.endpoint();
    chaos.seed = seed;
    chaos.delay_prob = 0.5;
    chaos.delay_ms = 1.0;
    RunningChaos proxy(chaos);
    for (int c = 0; c < 8; ++c) {
      const auto r = client_roundtrip(proxy.proxy.endpoint(),
                                      no_cache_batch("det", 2));
      EXPECT_TRUE(r.ok());
    }
    return proxy.proxy.stats().delays;
  };
  const long long a = census(99);
  const long long b = census(99);
  EXPECT_EQ(a, b);
  // And the schedule is non-trivial: with p=0.5 over 8 connections this
  // seed assigns the delay fault to some but not all of them.
  EXPECT_GT(a, 0);
  EXPECT_LT(a, 8);
}

// ------------------------------------------------------- delays + tears --

TEST(ChaosProxyTest, TearsAndDelaysNeverCorruptOrReorderResponses) {
  ServiceConfig config;
  config.serial = true;
  RunningTcp server(config);

  ChaosConfig chaos;
  chaos.upstream = server.endpoint();
  chaos.seed = 5;
  chaos.tear_prob = 1.0;
  chaos.delay_prob = 1.0;
  chaos.stall_ms = 3.0;
  chaos.delay_ms = 2.0;
  RunningChaos proxy(chaos);

  const auto lines = no_cache_batch("slow", 6);
  const auto direct = client_roundtrip(server.endpoint(), lines);
  ASSERT_TRUE(direct.ok());
  const auto proxied = client_roundtrip(proxy.proxy.endpoint(), lines);
  ASSERT_TRUE(proxied.ok());

  // Latency faults are invisible to a patient client: same bytes, same
  // order — segments within a direction are FIFO by construction.
  EXPECT_EQ(proxied.value(), direct.value());
  EXPECT_GE(proxy.proxy.stats().tears, 1);
  EXPECT_GE(proxy.proxy.stats().delays, 1);
}

// --------------------------------------------------------------- garbage --

TEST(ChaosProxyTest, GarbageArrivesOnItsOwnLineAndRealResponsesSurvive) {
  ServiceConfig config;
  config.serial = true;
  RunningTcp server(config);

  ChaosConfig chaos;
  chaos.upstream = server.endpoint();
  chaos.seed = 11;
  chaos.garbage_prob = 1.0;
  RunningChaos proxy(chaos);

  const auto lines = no_cache_batch("junk", 10);
  const auto direct = client_roundtrip(server.endpoint(), lines);
  ASSERT_TRUE(direct.ok());
  const auto proxied = client_roundtrip(proxy.proxy.endpoint(), lines);
  ASSERT_TRUE(proxied.ok());
  ASSERT_GE(proxy.proxy.stats().garbage, 1)
      << "seed 11 should cross the garbage byte threshold on this batch";

  // Filtering out lines that are not real finals must recover the direct
  // stream exactly: garbage never splices into a real line.
  std::vector<std::string> real;
  for (const auto& line : proxied.value()) {
    if (count_finals({line}) == 1 &&
        line.find("\"id\":\"junk-") != std::string::npos) {
      real.push_back(line);
    }
  }
  EXPECT_EQ(real, direct.value());
  EXPECT_GT(proxied.value().size(), direct.value().size())
      << "garbage line missing from the client-visible stream";
}

TEST(ChaosProxyTest, RetryingClientShrugsOffGarbage) {
  ServiceConfig config;
  config.serial = true;
  RunningTcp server(config);

  ChaosConfig chaos;
  chaos.upstream = server.endpoint();
  chaos.seed = 11;
  chaos.garbage_prob = 1.0;
  RunningChaos proxy(chaos);

  const auto lines = no_cache_batch("shrug", 10);
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryingClient client(proxy.proxy.endpoint(), policy);
  const auto responses = client.run_batch(lines);
  ASSERT_TRUE(responses.ok()) << responses.status().to_string();
  // The retrying client classifies lines: garbage is ignored, so exactly
  // the real finals come back — no retries burned, nothing synthesized.
  EXPECT_EQ(count_finals(responses.value()), lines.size());
  EXPECT_EQ(responses.value().size(), lines.size());
  EXPECT_EQ(client.stats().gave_up, 0);
}

// -------------------------------------------------------------- half-open --

TEST(ChaosProxyTest, HalfOpenConnectionsNeverReachTheUpstream) {
  ServiceConfig config;
  config.serial = true;
  RunningTcp server(config);

  ChaosConfig chaos;
  chaos.upstream = server.endpoint();
  chaos.seed = 2;
  chaos.halfopen_prob = 1.0;
  RunningChaos proxy(chaos);

  // client_roundtrip sends, half-closes, and waits for the server to
  // close; a half-open proxy connection reads-and-discards, then closes
  // on our EOF — so the call returns (no hang) with zero responses.
  const auto responses = client_roundtrip(proxy.proxy.endpoint(),
                                          no_cache_batch("void", 2));
  ASSERT_TRUE(responses.ok()) << responses.status().to_string();
  EXPECT_TRUE(responses.value().empty());
  EXPECT_GE(proxy.proxy.stats().halfopen, 1);
  EXPECT_EQ(proxy.proxy.stats().bytes_to_upstream, 0);
  EXPECT_EQ(server.service.stats().received, 0);
}

}  // namespace
}  // namespace soctest
