#include <gtest/gtest.h>

#include <set>

#include "layout/stub_router.hpp"
#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/tam_problem.hpp"

namespace soctest {
namespace {

class StubRouterSoc1 : public ::testing::Test {
 protected:
  void SetUp() override {
    soc_ = builtin_soc1();
    plan_ = plan_buses(soc_, 3);
    // A realistic assignment: the layout-free optimum.
    const TestTimeTable table(soc_, 16);
    const TamProblem problem = make_tam_problem(soc_, table, {16, 16, 16});
    assignment_ = solve_exact(problem).assignment.core_to_bus;
  }
  Soc soc_;
  BusPlan plan_;
  std::vector<int> assignment_;
};

TEST_F(StubRouterSoc1, EveryStubConnectsCoreToItsTrunk) {
  const StubRoutes routes = route_stubs(soc_, plan_, assignment_);
  const DieGrid grid(soc_);
  for (std::size_t i = 0; i < soc_.num_cores(); ++i) {
    const auto& stub = routes.stubs[i];
    ASSERT_FALSE(stub.cells.empty()) << "core " << i;
    // Starts at an access cell of the core.
    const auto access = grid.perimeter_access(
        soc_.placement(i).origin, soc_.core(i).width, soc_.core(i).height);
    EXPECT_NE(std::find(access.begin(), access.end(), stub.cells.front()),
              access.end())
        << "core " << i << " stub does not start at its perimeter";
    // Ends on the assigned trunk.
    const auto& trunk =
        plan_.buses[static_cast<std::size_t>(assignment_[i])].trunk.cells;
    EXPECT_NE(std::find(trunk.begin(), trunk.end(), stub.cells.back()),
              trunk.end())
        << "core " << i << " stub does not end on its trunk";
    // Obstacle-free and contiguous.
    for (std::size_t k = 0; k < stub.cells.size(); ++k) {
      EXPECT_FALSE(grid.blocked(stub.cells[k]));
      if (k > 0) EXPECT_EQ(manhattan(stub.cells[k - 1], stub.cells[k]), 1);
    }
  }
}

TEST_F(StubRouterSoc1, ShortestModeMatchesPlanDistances) {
  StubRouterOptions options;
  options.congestion_aware = false;
  const StubRoutes routes = route_stubs(soc_, plan_, assignment_, options);
  long long expect = 0;
  for (std::size_t i = 0; i < soc_.num_cores(); ++i) {
    // plan distance counts edges from access cell to trunk; the path has the
    // same cells, i.e. length == distance (a 1-cell path = distance 0).
    EXPECT_EQ(routes.stubs[i].length(),
              plan_.distance(i, static_cast<std::size_t>(assignment_[i])))
        << "core " << i;
    expect += plan_.distance(i, static_cast<std::size_t>(assignment_[i]));
  }
  EXPECT_EQ(routes.total_length, expect);
}

TEST_F(StubRouterSoc1, CongestionAwareNeverShorterThanShortest) {
  StubRouterOptions shortest;
  shortest.congestion_aware = false;
  const auto a = route_stubs(soc_, plan_, assignment_, shortest);
  const auto b = route_stubs(soc_, plan_, assignment_);
  EXPECT_GE(b.total_length, a.total_length);
  // ...and never more congested.
  EXPECT_LE(b.overflow_cells, a.overflow_cells);
}

TEST_F(StubRouterSoc1, CapacityOneFlagsSharedChannels) {
  StubRouterOptions tight;
  tight.cell_capacity = 1;
  const auto routes = route_stubs(soc_, plan_, assignment_, tight);
  // Trunk cells alone hold 1 wire; any stub joining a trunk pushes a cell to
  // 2 -> with 10 stubs there must be overflow at capacity 1.
  EXPECT_GT(routes.overflow_cells, 0);
}

TEST_F(StubRouterSoc1, RejectsMalformedAssignments) {
  EXPECT_THROW(route_stubs(soc_, plan_, {}), std::invalid_argument);
  std::vector<int> bad(soc_.num_cores(), 99);
  EXPECT_THROW(route_stubs(soc_, plan_, bad), std::invalid_argument);
}

TEST(StubRouter, RequiresPlacement) {
  Soc soc("u", 5, 5);
  Core c;
  c.name = "a";
  c.num_inputs = 1;
  c.num_outputs = 1;
  c.num_patterns = 1;
  soc.add_core(c);
  BusPlan plan;
  EXPECT_THROW(route_stubs(soc, plan, {0}), std::invalid_argument);
}

TEST(StubRouter, WorksOnSoc2TwoBuses) {
  const Soc soc = builtin_soc2();
  const BusPlan plan = plan_buses(soc, 2);
  std::vector<int> nearest(soc.num_cores(), 0);
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    if (plan.distance(i, 1) >= 0 &&
        (plan.distance(i, 0) < 0 || plan.distance(i, 1) < plan.distance(i, 0))) {
      nearest[i] = 1;
    }
  }
  const auto routes = route_stubs(soc, plan, nearest);
  EXPECT_EQ(routes.stubs.size(), soc.num_cores());
  EXPECT_GE(routes.total_length, 0);
}

}  // namespace
}  // namespace soctest
