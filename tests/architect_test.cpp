#include <gtest/gtest.h>

#include "soc/builtin.hpp"
#include "tam/architect.hpp"

namespace soctest {
namespace {

TEST(Architect, FixedWidthsUnconstrained) {
  const Soc soc = builtin_soc1();
  DesignRequest request;
  request.bus_widths = {16, 16};
  const auto result = design_architecture(soc, request);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.proved_optimal);
  EXPECT_EQ(result.bus_widths, (std::vector<int>{16, 16}));
  EXPECT_FALSE(result.bus_plan.has_value());
  EXPECT_EQ(result.partitions_tried, 1);
}

TEST(Architect, WidthSearchMode) {
  const Soc soc = builtin_soc2();
  DesignRequest request;
  request.num_buses = 2;
  request.total_width = 16;
  const auto result = design_architecture(soc, request);
  ASSERT_TRUE(result.feasible);
  EXPECT_EQ(result.bus_widths.size(), 2u);
  EXPECT_EQ(result.bus_widths[0] + result.bus_widths[1], 16);
  EXPECT_GT(result.partitions_tried, 1);
}

TEST(Architect, LayoutRunProducesPlanAndWirelength) {
  const Soc soc = builtin_soc1();
  DesignRequest request;
  request.bus_widths = {16, 16};
  request.d_max = 40;
  const auto result = design_architecture(soc, request);
  ASSERT_TRUE(result.feasible);
  ASSERT_TRUE(result.bus_plan.has_value());
  EXPECT_EQ(result.bus_plan->num_buses(), 2u);
  EXPECT_GT(result.stub_wirelength, 0);
}

TEST(Architect, LayoutConstraintCanOnlyHurt) {
  const Soc soc = builtin_soc1();
  DesignRequest free_request;
  free_request.bus_widths = {16, 8};
  DesignRequest tight_request = free_request;
  tight_request.d_max = 25;
  const auto free_result = design_architecture(soc, free_request);
  const auto tight_result = design_architecture(soc, tight_request);
  ASSERT_TRUE(free_result.feasible);
  ASSERT_TRUE(tight_result.feasible);
  EXPECT_GE(tight_result.assignment.makespan, free_result.assignment.makespan);
}

TEST(Architect, PowerConstraintCanOnlyHurt) {
  const Soc soc = builtin_soc1();
  DesignRequest free_request;
  free_request.bus_widths = {16, 16};
  DesignRequest power_request = free_request;
  power_request.p_max_mw = 1500;
  const auto free_result = design_architecture(soc, free_request);
  const auto power_result = design_architecture(soc, power_request);
  ASSERT_TRUE(free_result.feasible && power_result.feasible);
  EXPECT_GE(power_result.assignment.makespan, free_result.assignment.makespan);
}

TEST(Architect, UnplacedSocRejectsLayoutRequests) {
  Soc soc("u", 10, 10);
  Core c;
  c.name = "a";
  c.num_inputs = 2;
  c.num_outputs = 2;
  c.num_patterns = 3;
  c.test_power_mw = 10;
  soc.add_core(c);
  DesignRequest request;
  request.bus_widths = {4};
  request.d_max = 5;
  EXPECT_THROW(design_architecture(soc, request), std::invalid_argument);
}

TEST(Architect, UnplacedSocFineWithoutLayout) {
  Soc soc("u", 10, 10);
  Core c;
  c.name = "a";
  c.num_inputs = 2;
  c.num_outputs = 2;
  c.num_patterns = 3;
  c.test_power_mw = 10;
  soc.add_core(c);
  DesignRequest request;
  request.bus_widths = {4};
  const auto result = design_architecture(soc, request);
  EXPECT_TRUE(result.feasible);
}

TEST(Architect, InvalidSocRejected) {
  Soc soc("empty", 10, 10);
  DesignRequest request;
  request.bus_widths = {4};
  EXPECT_THROW(design_architecture(soc, request), std::invalid_argument);
}

TEST(Architect, OverbudgetPowerThrows) {
  const Soc soc = builtin_soc1();  // s38417 draws 1144 mW
  DesignRequest request;
  request.bus_widths = {16, 16};
  request.p_max_mw = 800;
  EXPECT_THROW(design_architecture(soc, request), std::runtime_error);
}

TEST(Architect, HeuristicSolversWork) {
  const Soc soc = builtin_soc1();
  DesignRequest exact_request;
  exact_request.bus_widths = {16, 16};
  DesignRequest greedy_request = exact_request;
  greedy_request.solver = InnerSolver::kGreedy;
  DesignRequest sa_request = exact_request;
  sa_request.solver = InnerSolver::kSa;
  const auto exact = design_architecture(soc, exact_request);
  const auto greedy = design_architecture(soc, greedy_request);
  const auto sa = design_architecture(soc, sa_request);
  ASSERT_TRUE(exact.feasible && greedy.feasible && sa.feasible);
  EXPECT_GE(greedy.assignment.makespan, exact.assignment.makespan);
  EXPECT_GE(sa.assignment.makespan, exact.assignment.makespan);
}

TEST(Architect, IlpSolverMatchesExact) {
  const Soc soc = builtin_soc2();
  DesignRequest exact_request;
  exact_request.bus_widths = {8, 8};
  DesignRequest ilp_request = exact_request;
  ilp_request.solver = InnerSolver::kIlp;
  const auto exact = design_architecture(soc, exact_request);
  const auto ilp = design_architecture(soc, ilp_request);
  ASSERT_TRUE(exact.feasible && ilp.feasible);
  EXPECT_EQ(exact.assignment.makespan, ilp.assignment.makespan);
}

TEST(Architect, DescribeDesignMentionsKeyFacts) {
  const Soc soc = builtin_soc2();
  DesignRequest request;
  request.bus_widths = {8, 8};
  request.p_max_mw = 1400;
  const auto result = design_architecture(soc, request);
  const std::string report = describe_design(soc, request, result);
  EXPECT_NE(report.find("soc2"), std::string::npos);
  EXPECT_NE(report.find("system test time"), std::string::npos);
  EXPECT_NE(report.find("p_max"), std::string::npos);
  EXPECT_NE(report.find("bus 0"), std::string::npos);
  EXPECT_NE(report.find("bus 1"), std::string::npos);
}

TEST(Architect, DescribeInfeasibleDesign) {
  const Soc soc = builtin_soc2();
  DesignRequest request;
  request.bus_widths = {8, 8};
  DesignResult result;  // default: infeasible
  const std::string report = describe_design(soc, request, result);
  EXPECT_NE(report.find("NO FEASIBLE"), std::string::npos);
}

}  // namespace
}  // namespace soctest
