#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "soc/builtin.hpp"
#include "tam/width_partition.hpp"

namespace soctest {
namespace {

TEST(WidthPartitions, KnownCounts) {
  // Partitions of n into exactly k parts: p(6,3) = 3; p(8,4) = 5; p(10,2)=5.
  EXPECT_EQ(width_partitions(6, 3).size(), 3u);
  EXPECT_EQ(width_partitions(8, 4).size(), 5u);
  EXPECT_EQ(width_partitions(10, 2).size(), 5u);
  EXPECT_EQ(width_partitions(5, 5).size(), 1u);
  EXPECT_EQ(width_partitions(4, 5).size(), 0u);
  EXPECT_EQ(width_partitions(7, 1).size(), 1u);
}

TEST(WidthPartitions, PartsSumAndAreNonIncreasing) {
  for (const auto& partition : width_partitions(20, 4)) {
    EXPECT_EQ(std::accumulate(partition.begin(), partition.end(), 0), 20);
    ASSERT_EQ(partition.size(), 4u);
    for (std::size_t k = 1; k < partition.size(); ++k) {
      EXPECT_LE(partition[k], partition[k - 1]);
    }
    for (int w : partition) EXPECT_GE(w, 1);
  }
}

TEST(WidthPartitions, AllDistinct) {
  const auto partitions = width_partitions(24, 3);
  std::set<std::vector<int>> unique(partitions.begin(), partitions.end());
  EXPECT_EQ(unique.size(), partitions.size());
}

class WidthSearch : public ::testing::Test {
 protected:
  void SetUp() override {
    soc_ = builtin_soc2();
    table_.emplace(soc_, 24);
  }
  Soc soc_;
  std::optional<TestTimeTable> table_;
};

TEST_F(WidthSearch, BeatsOrMatchesEqualSplit) {
  const auto best = optimize_widths(soc_, *table_, 2, 24);
  ASSERT_TRUE(best.feasible);
  EXPECT_TRUE(best.proved_optimal);
  // Compare to the fixed equal split (12, 12).
  const TamProblem equal = make_tam_problem(soc_, *table_, {12, 12});
  const auto equal_result = solve_exact(equal);
  ASSERT_TRUE(equal_result.feasible);
  EXPECT_LE(best.assignment.makespan, equal_result.assignment.makespan);
}

TEST_F(WidthSearch, MoreTotalWidthNeverHurts) {
  Cycles prev = -1;
  for (int total : {8, 12, 16, 20, 24}) {
    const auto r = optimize_widths(soc_, *table_, 2, total);
    ASSERT_TRUE(r.feasible) << "W=" << total;
    if (prev >= 0) {
      EXPECT_LE(r.assignment.makespan, prev) << "W=" << total;
    }
    prev = r.assignment.makespan;
  }
}

TEST_F(WidthSearch, MoreBusesNeverHelpWithFixedTotal) {
  // With total width fixed, adding buses splits wires; 1 fat bus serializes
  // everything, many thin buses parallelize. Neither direction is monotone a
  // priori, but B buses can always emulate B-1 buses only if a zero-width
  // bus were allowed — it is not — so we just assert all are solved and the
  // best of the three is no worse than each individually.
  const auto b1 = optimize_widths(soc_, *table_, 1, 16);
  const auto b2 = optimize_widths(soc_, *table_, 2, 16);
  const auto b3 = optimize_widths(soc_, *table_, 3, 16);
  ASSERT_TRUE(b1.feasible && b2.feasible && b3.feasible);
  // Parallelism should pay off for this SOC: 2 buses beat 1.
  EXPECT_LE(b2.assignment.makespan, b1.assignment.makespan);
}

TEST_F(WidthSearch, WidthSumsRespected) {
  const auto r = optimize_widths(soc_, *table_, 3, 18);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(std::accumulate(r.bus_widths.begin(), r.bus_widths.end(), 0), 18);
  EXPECT_EQ(r.bus_widths.size(), 3u);
}

TEST_F(WidthSearch, GreedyInnerSolverRunsAndIsNoBetter) {
  WidthPartitionOptions greedy_options;
  greedy_options.solver = InnerSolver::kGreedy;
  const auto greedy = optimize_widths(soc_, *table_, 2, 16, nullptr, -1, -1.0,
                                      greedy_options);
  const auto exact = optimize_widths(soc_, *table_, 2, 16);
  ASSERT_TRUE(greedy.feasible && exact.feasible);
  EXPECT_GE(greedy.assignment.makespan, exact.assignment.makespan);
  EXPECT_FALSE(greedy.proved_optimal);
}

TEST_F(WidthSearch, RejectsBadArguments) {
  EXPECT_THROW(optimize_widths(soc_, *table_, 0, 8), std::invalid_argument);
  EXPECT_THROW(optimize_widths(soc_, *table_, 4, 3), std::invalid_argument);
}

TEST_F(WidthSearch, PowerConstraintsRaiseTestTime) {
  const auto unconstrained = optimize_widths(soc_, *table_, 2, 16);
  const auto constrained =
      optimize_widths(soc_, *table_, 2, 16, nullptr, -1, 1200.0);
  ASSERT_TRUE(unconstrained.feasible);
  ASSERT_TRUE(constrained.feasible);
  EXPECT_GE(constrained.assignment.makespan, unconstrained.assignment.makespan);
}

TEST_F(WidthSearch, LayoutPermutationExploresWidthsOntoRoutes) {
  const BusPlan plan = plan_buses(soc_, 2);
  const LayoutConstraints layout(plan, soc_.num_cores(), -1);
  const auto r = optimize_widths(soc_, *table_, 2, 12, &layout);
  ASSERT_TRUE(r.feasible);
  // Permutation mode: partitions_tried counts arrangements, which must be at
  // least the number of plain partitions of 12 into 2 parts (6).
  EXPECT_GE(r.partitions_tried, 6);
}

}  // namespace
}  // namespace soctest
