// Cross-solver consistency matrix: for random instances under every
// combination of constraint families, all four solvers must agree on
// feasibility semantics — exact == ILP optimum, heuristics never better,
// every returned assignment passes check_assignment.

#include <gtest/gtest.h>

#include "tam/exact_solver.hpp"
#include "tam/heuristics.hpp"
#include "tam/ilp_solver.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

struct ConstraintConfig {
  const char* name;
  bool forbid;
  bool co_pairs;
  bool wire;
  bool bus_power;
  bool depth;
};

constexpr ConstraintConfig kConfigs[] = {
    {"none", false, false, false, false, false},
    {"forbid", true, false, false, false, false},
    {"cogroups", false, true, false, false, false},
    {"wire", false, false, true, false, false},
    {"buspower", false, false, false, true, false},
    {"depth", false, false, false, false, true},
    {"forbid_cogroups", true, true, false, false, false},
    {"forbid_wire", true, false, true, false, false},
    {"cogroups_wire", false, true, true, false, false},
    {"buspower_depth", false, false, false, true, true},
    {"forbid_buspower", true, false, false, true, false},
    {"all_compatible", true, true, true, false, true},
};

class SolverMatrix
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, int>> {};

TEST_P(SolverMatrix, AllSolversConsistent) {
  const auto [seed, config_idx] = GetParam();
  const ConstraintConfig& config = kConfigs[config_idx];
  Rng rng(seed * 131 + static_cast<std::uint64_t>(config_idx));
  testutil::RandomProblemOptions options;
  options.num_cores = 5;
  options.num_buses = 2;
  options.forbid_probability = config.forbid ? 0.25 : 0.0;
  options.num_co_pairs = config.co_pairs ? 1 : 0;
  options.with_wire_budget = config.wire;
  options.with_bus_power = config.bus_power;
  TamProblem p = testutil::random_problem(rng, options);
  if (config.depth) {
    // A cap that bites occasionally: optimum (unconstrained by depth) plus
    // a small random slack.
    TamProblem free_p = p;
    free_p.bus_depth_limit = -1;
    const auto free_r = solve_exact(free_p);
    if (!free_r.feasible) return;  // other constraints already kill it
    p.bus_depth_limit =
        free_r.assignment.makespan + rng.uniform_int(0, 100);
  }

  const Cycles brute = testutil::brute_force_makespan(p);
  const auto exact = solve_exact(p);
  const auto ilp = solve_ilp(p);
  const auto greedy = solve_greedy_lpt(p);
  SaSolverOptions sa_options;
  sa_options.seed = seed;
  sa_options.iterations = 10000;
  const auto sa = solve_sa(p, sa_options);

  // Exact and ILP agree with the exhaustive reference.
  ASSERT_EQ(exact.feasible, brute >= 0)
      << config.name << " seed " << seed;
  ASSERT_EQ(ilp.feasible, brute >= 0) << config.name << " seed " << seed;
  if (brute < 0) {
    EXPECT_FALSE(greedy.feasible) << config.name;
    EXPECT_FALSE(sa.feasible) << config.name;
    return;
  }
  EXPECT_EQ(exact.assignment.makespan, brute) << config.name << " seed " << seed;
  EXPECT_EQ(ilp.assignment.makespan, brute) << config.name << " seed " << seed;
  EXPECT_EQ(p.check_assignment(exact.assignment.core_to_bus), "");
  EXPECT_EQ(p.check_assignment(ilp.assignment.core_to_bus), "");

  // Heuristics: never better than the optimum, and valid when feasible.
  if (greedy.feasible) {
    EXPECT_GE(greedy.assignment.makespan, brute) << config.name;
    EXPECT_EQ(p.check_assignment(greedy.assignment.core_to_bus), "");
  }
  if (sa.feasible) {
    EXPECT_GE(sa.assignment.makespan, brute) << config.name;
    EXPECT_EQ(p.check_assignment(sa.assignment.core_to_bus), "");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, SolverMatrix,
    ::testing::Combine(::testing::Range<std::uint64_t>(0, 6),
                       ::testing::Range(0, static_cast<int>(std::size(kConfigs)))),
    [](const ::testing::TestParamInfo<std::tuple<std::uint64_t, int>>& info) {
      return std::string(kConfigs[std::get<1>(info.param)].name) + "_seed" +
             std::to_string(std::get<0>(info.param));
    });

}  // namespace
}  // namespace soctest
