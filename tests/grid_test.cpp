#include <gtest/gtest.h>

#include "layout/grid.hpp"
#include "soc/builtin.hpp"

namespace soctest {
namespace {

TEST(DieGrid, RejectsBadDimensions) {
  EXPECT_THROW(DieGrid(0, 5), std::invalid_argument);
  EXPECT_THROW(DieGrid(5, -1), std::invalid_argument);
}

TEST(DieGrid, StartsUnblocked) {
  const DieGrid grid(4, 3);
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 4; ++x) EXPECT_FALSE(grid.blocked({x, y}));
  }
}

TEST(DieGrid, IndexRoundTrip) {
  const DieGrid grid(7, 5);
  for (int y = 0; y < 5; ++y) {
    for (int x = 0; x < 7; ++x) {
      EXPECT_EQ(grid.point(grid.index({x, y})), (Point{x, y}));
    }
  }
}

TEST(DieGrid, InBounds) {
  const DieGrid grid(4, 4);
  EXPECT_TRUE(grid.in_bounds({0, 0}));
  EXPECT_TRUE(grid.in_bounds({3, 3}));
  EXPECT_FALSE(grid.in_bounds({4, 0}));
  EXPECT_FALSE(grid.in_bounds({0, -1}));
}

TEST(DieGrid, BlocksCoreFootprints) {
  const Soc soc = builtin_soc1();
  const DieGrid grid(soc);
  long long blocked_cells = 0;
  for (int y = 0; y < grid.height(); ++y) {
    for (int x = 0; x < grid.width(); ++x) {
      if (grid.blocked({x, y})) ++blocked_cells;
    }
  }
  long long core_area = 0;
  for (const auto& c : soc.cores()) core_area += static_cast<long long>(c.width) * c.height;
  EXPECT_EQ(blocked_cells, core_area);
  // Spot check: inside and outside the first core.
  const auto& origin = soc.placement(0).origin;
  EXPECT_TRUE(grid.blocked(origin));
  EXPECT_FALSE(grid.blocked({origin.x - 1, origin.y - 1}));
}

TEST(DieGrid, RequiresPlacement) {
  Soc soc("s", 5, 5);
  Core c;
  c.name = "a";
  c.num_inputs = 1;
  c.num_outputs = 1;
  c.num_patterns = 1;
  c.width = c.height = 1;
  soc.add_core(c);
  EXPECT_THROW(DieGrid{soc}, std::invalid_argument);
}

TEST(DieGrid, NeighborsRespectBlockagesAndBounds) {
  DieGrid grid(3, 3);
  grid.set_blocked({1, 0}, true);
  std::vector<Point> out;
  grid.neighbors({0, 0}, out);
  // (1,0) blocked, (-1,0) and (0,-1) out of bounds -> only (0,1).
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], (Point{0, 1}));
}

TEST(DieGrid, PerimeterAccessOfInteriorCore) {
  DieGrid grid(6, 6);
  // 2x2 core at (2,2); perimeter = 2*2 + 2*2 + ... = 8 cells (no corners).
  for (int y = 2; y < 4; ++y) {
    for (int x = 2; x < 4; ++x) grid.set_blocked({x, y}, true);
  }
  const auto access = grid.perimeter_access({2, 2}, 2, 2);
  EXPECT_EQ(access.size(), 8u);
  for (const auto& p : access) EXPECT_FALSE(grid.blocked(p));
}

TEST(DieGrid, PerimeterAccessClipsAtDieEdge) {
  const DieGrid grid(6, 6);
  // Core at the origin: bottom and left perimeter rows fall off the die.
  const auto access = grid.perimeter_access({0, 0}, 2, 2);
  EXPECT_EQ(access.size(), 4u);  // only top and right sides
}

TEST(DieGrid, RenderShowsBlockagesAndOverlay) {
  DieGrid grid(3, 2);
  grid.set_blocked({1, 1}, true);
  const std::string art = grid.render({{Point{0, 0}, '*'}});
  // Top row (y=1) printed first: ".#."; bottom row: "*..".
  EXPECT_EQ(art, ".#.\n*..\n");
}

}  // namespace
}  // namespace soctest
