#include <gtest/gtest.h>

#include "soc/builtin.hpp"
#include "soc/soc_format.hpp"

namespace soctest {
namespace {

const char* kMinimal = R"(
# a tiny SOC
soc tiny 10 10
core a inputs 3 outputs 2 bidirs 1 patterns 5 power 12.5 size 2 2
core b inputs 1 outputs 1 bidirs 0 patterns 7 power 3 size 3 3
scan b 4 4 5
end
)";

TEST(SocFormat, ParsesMinimal) {
  const Soc soc = read_soc_string(kMinimal);
  EXPECT_EQ(soc.name(), "tiny");
  EXPECT_EQ(soc.die_width(), 10);
  ASSERT_EQ(soc.num_cores(), 2u);
  EXPECT_EQ(soc.core(0).num_inputs, 3);
  EXPECT_EQ(soc.core(0).num_bidirs, 1);
  EXPECT_DOUBLE_EQ(soc.core(0).test_power_mw, 12.5);
  EXPECT_EQ(soc.core(1).scan_chain_lengths, (std::vector<int>{4, 4, 5}));
  EXPECT_FALSE(soc.has_placement());
}

TEST(SocFormat, ParsesPlacements) {
  const std::string text =
      "soc t 10 10\n"
      "core a inputs 1 outputs 1 patterns 2 power 1 size 2 2\n"
      "core b inputs 1 outputs 1 patterns 2 power 1 size 2 2\n"
      "place a 0 0\nplace b 5 5\nend\n";
  const Soc soc = read_soc_string(text);
  ASSERT_TRUE(soc.has_placement());
  EXPECT_EQ(soc.placement(0).origin, (Point{0, 0}));
  EXPECT_EQ(soc.placement(1).origin, (Point{5, 5}));
}

TEST(SocFormat, RoundTripBuiltin1) {
  const Soc original = builtin_soc1();
  const Soc parsed = read_soc_string(write_soc(original));
  ASSERT_EQ(parsed.num_cores(), original.num_cores());
  EXPECT_EQ(parsed.name(), original.name());
  EXPECT_EQ(parsed.die_width(), original.die_width());
  for (std::size_t i = 0; i < original.num_cores(); ++i) {
    EXPECT_EQ(parsed.core(i).name, original.core(i).name);
    EXPECT_EQ(parsed.core(i).num_inputs, original.core(i).num_inputs);
    EXPECT_EQ(parsed.core(i).num_outputs, original.core(i).num_outputs);
    EXPECT_EQ(parsed.core(i).num_patterns, original.core(i).num_patterns);
    EXPECT_EQ(parsed.core(i).scan_chain_lengths, original.core(i).scan_chain_lengths);
    EXPECT_EQ(parsed.placement(i), original.placement(i));
  }
}

TEST(SocFormat, RoundTripBuiltin2) {
  const Soc original = builtin_soc2();
  const Soc parsed = read_soc_string(write_soc(original));
  EXPECT_EQ(parsed.num_cores(), original.num_cores());
  EXPECT_EQ(write_soc(parsed), write_soc(original));
}

TEST(SocFormatErrors, MissingSocHeader) {
  EXPECT_THROW(read_soc_string("core a inputs 1\nend\n"), std::runtime_error);
}

TEST(SocFormatErrors, MissingEnd) {
  EXPECT_THROW(read_soc_string("soc t 5 5\n"
                               "core a inputs 1 outputs 1 patterns 1 power 1 size 1 1\n"),
               std::runtime_error);
}

TEST(SocFormatErrors, DuplicateSocLine) {
  EXPECT_THROW(read_soc_string("soc a 5 5\nsoc b 5 5\nend\n"), std::runtime_error);
}

TEST(SocFormatErrors, UnknownKeyword) {
  EXPECT_THROW(read_soc_string("soc t 5 5\nfrobnicate\nend\n"), std::runtime_error);
}

TEST(SocFormatErrors, UnknownCoreAttribute) {
  EXPECT_THROW(read_soc_string("soc t 5 5\ncore a wobble 3\nend\n"),
               std::runtime_error);
}

TEST(SocFormatErrors, BadInteger) {
  EXPECT_THROW(read_soc_string("soc t 5 x\nend\n"), std::runtime_error);
}

TEST(SocFormatErrors, TrailingGarbageInInteger) {
  EXPECT_THROW(read_soc_string("soc t 5 5z\nend\n"), std::runtime_error);
}

TEST(SocFormatErrors, ScanForUnknownCore) {
  EXPECT_THROW(read_soc_string("soc t 5 5\nscan ghost 3\nend\n"),
               std::runtime_error);
}

TEST(SocFormatErrors, PlaceForUnknownCore) {
  EXPECT_THROW(read_soc_string("soc t 5 5\nplace ghost 0 0\nend\n"),
               std::runtime_error);
}

TEST(SocFormatErrors, PartialPlacementRejected) {
  const std::string text =
      "soc t 10 10\n"
      "core a inputs 1 outputs 1 patterns 2 power 1 size 2 2\n"
      "core b inputs 1 outputs 1 patterns 2 power 1 size 2 2\n"
      "place a 0 0\nend\n";
  EXPECT_THROW(read_soc_string(text), std::runtime_error);
}

TEST(SocFormatErrors, ContentAfterEnd) {
  EXPECT_THROW(read_soc_string("soc t 5 5\n"
                               "core a inputs 1 outputs 1 patterns 1 power 1 size 1 1\n"
                               "end\ncore b inputs 1\n"),
               std::runtime_error);
}

TEST(SocFormatErrors, InvalidSocRejected) {
  // Overlapping placement parses but fails semantic validation.
  const std::string text =
      "soc t 10 10\n"
      "core a inputs 1 outputs 1 patterns 2 power 1 size 3 3\n"
      "core b inputs 1 outputs 1 patterns 2 power 1 size 3 3\n"
      "place a 0 0\nplace b 1 1\nend\n";
  EXPECT_THROW(read_soc_string(text), std::runtime_error);
}

TEST(SocFormatErrors, MissingFileThrows) {
  EXPECT_THROW(read_soc_file("/nonexistent/path.soc"), std::runtime_error);
}

TEST(SocFormat, SoftScanRoundTrips) {
  const std::string text =
      "soc t 10 10\n"
      "core a inputs 4 outputs 4 patterns 5 power 10 size 2 2\n"
      "softscan a 128\n"
      "end\n";
  const Soc soc = read_soc_string(text);
  EXPECT_EQ(soc.core(0).soft_scan_flops, 128);
  EXPECT_EQ(soc.core(0).total_scan_flops(), 128);
  const Soc again = read_soc_string(write_soc(soc));
  EXPECT_EQ(again.core(0).soft_scan_flops, 128);
}

TEST(SocFormatErrors, SoftScanUnknownCore) {
  EXPECT_THROW(read_soc_string("soc t 5 5\nsoftscan ghost 8\nend\n"),
               std::runtime_error);
}

TEST(SocFormat, CommentsAndBlankLinesIgnored) {
  const std::string text =
      "# header comment\n\n"
      "soc t 5 5   # trailing comment\n"
      "core a inputs 1 outputs 1 patterns 1 power 1 size 1 1\n"
      "\n# another\nend\n";
  EXPECT_EQ(read_soc_string(text).num_cores(), 1u);
}

}  // namespace
}  // namespace soctest
