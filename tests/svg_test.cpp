#include <gtest/gtest.h>

#include "layout/stub_router.hpp"
#include "report/svg.hpp"
#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/tam_problem.hpp"

namespace soctest {
namespace {

TEST(XmlCheck, AcceptsWellFormed) {
  EXPECT_EQ(xml_check("<a><b x=\"1\"/><c>text</c></a>"), "");
  EXPECT_EQ(xml_check("<?xml version=\"1.0\"?><r/>"), "");
  EXPECT_EQ(xml_check("<!-- comment --><r></r>"), "");
}

TEST(XmlCheck, RejectsMalformed) {
  EXPECT_NE(xml_check("<a><b></a></b>"), "");   // crossed tags
  EXPECT_NE(xml_check("<a>"), "");              // unclosed
  EXPECT_NE(xml_check("<a x=\"1></a>"), "");    // unbalanced quotes... note '>' inside quote
  EXPECT_NE(xml_check("<a"), "");               // unterminated
}

TEST(Svg, RequiresPlacement) {
  Soc soc("u", 5, 5);
  Core c;
  c.name = "a";
  c.num_inputs = 1;
  c.num_outputs = 1;
  c.num_patterns = 1;
  soc.add_core(c);
  EXPECT_THROW(render_floorplan_svg(soc), std::invalid_argument);
}

TEST(Svg, FloorplanOnlyIsWellFormed) {
  const Soc soc = builtin_soc1();
  const std::string svg = render_floorplan_svg(soc);
  EXPECT_EQ(xml_check(svg), "");
  // One rect per core plus the die outline.
  std::size_t rects = 0, pos = 0;
  while ((pos = svg.find("<rect", pos)) != std::string::npos) {
    ++rects;
    ++pos;
  }
  EXPECT_EQ(rects, soc.num_cores() + 1);
  EXPECT_NE(svg.find("s38417"), std::string::npos);
}

TEST(Svg, WithTrunksAndStubs) {
  const Soc soc = builtin_soc1();
  const BusPlan plan = plan_buses(soc, 3);
  const TestTimeTable table(soc, 16);
  const TamProblem problem = make_tam_problem(soc, table, {16, 16, 16});
  const auto solved = solve_exact(problem);
  const StubRoutes stubs =
      route_stubs(soc, plan, solved.assignment.core_to_bus);
  const std::string svg = render_floorplan_svg(soc, &plan, &stubs);
  EXPECT_EQ(xml_check(svg), "");
  // One polyline per trunk plus one per non-empty stub.
  std::size_t polylines = 0, pos = 0;
  while ((pos = svg.find("<polyline", pos)) != std::string::npos) {
    ++polylines;
    ++pos;
  }
  std::size_t expected = plan.num_buses();
  for (const auto& stub : stubs.stubs) {
    if (!stub.cells.empty()) ++expected;
  }
  EXPECT_EQ(polylines, expected);
}

TEST(Svg, EscapesCoreNames) {
  Soc soc("x", 12, 12);
  Core c;
  c.name = "a<b>&c";
  c.num_inputs = 1;
  c.num_outputs = 1;
  c.num_patterns = 1;
  c.width = c.height = 2;
  soc.add_core(c);
  soc.set_placements({Placement{{1, 1}}});
  const std::string svg = render_floorplan_svg(soc);
  EXPECT_EQ(xml_check(svg), "");
  EXPECT_NE(svg.find("a&lt;b&gt;&amp;c"), std::string::npos);
}

}  // namespace
}  // namespace soctest
