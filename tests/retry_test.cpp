#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "service/chaos.hpp"
#include "service/protocol.hpp"
#include "service/retry.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"

namespace soctest {
namespace {

// The resilient client layer (docs/robustness.md): deterministic jittered
// backoff, retry_after_ms honoring, reconnect-with-replay through dropped
// connections, and a bounded attempt budget that fails loudly instead of
// retrying forever.

struct RunningTcp {
  explicit RunningTcp(const ServiceConfig& config) : service(config) {
    thread = std::thread(
        [this] { serve_tcp(service, "127.0.0.1:0", &port, &stop); });
    for (int i = 0; i < 500 && port.load() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GT(port.load(), 0);
  }
  ~RunningTcp() {
    stop.store(true);
    if (thread.joinable()) thread.join();
  }
  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(port.load());
  }

  SolveService service;
  std::atomic<int> port{0};
  std::atomic<bool> stop{false};
  std::thread thread;
};

struct RunningChaos {
  explicit RunningChaos(const ChaosConfig& config) : proxy(config) {
    const Status st = proxy.start();
    EXPECT_TRUE(st.ok()) << st.to_string();
    thread = std::thread([this] { proxy.serve(&stop); });
  }
  ~RunningChaos() {
    stop.store(true);
    if (thread.joinable()) thread.join();
  }

  ChaosProxy proxy;
  std::atomic<bool> stop{false};
  std::thread thread;
};

std::string greedy_req(const std::string& id, const std::string& soc) {
  return "{\"schema\":\"soctest-req-v1\",\"id\":\"" + id + "\",\"soc\":\"" +
         soc + "\",\"solver\":\"greedy\"}";
}

std::size_t count_finals(const std::vector<std::string>& lines) {
  std::size_t n = 0;
  for (const auto& line : lines) {
    if (line.find("\"schema\":\"soctest-resp-v1\"") != std::string::npos) ++n;
  }
  return n;
}

// -------------------------------------------------------------- backoff --

TEST(RetryBackoff, IsDeterministicJitteredAndClamped) {
  RetryPolicy policy;
  policy.base_backoff_ms = 10.0;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_ms = 100.0;
  policy.jitter_seed = 7;

  for (int attempt = 1; attempt <= 12; ++attempt) {
    const double nominal =
        std::min(100.0, 10.0 * std::pow(2.0, attempt - 1));
    const double b = retry_backoff_ms(policy, attempt);
    // Same (policy, attempt) -> same value: chaos soaks reproduce.
    EXPECT_EQ(b, retry_backoff_ms(policy, attempt));
    // Jitter keeps the value inside [nominal/2, nominal): desynchronizes
    // reconnect storms without ever exceeding the clamp.
    EXPECT_GE(b, nominal * 0.5) << "attempt " << attempt;
    EXPECT_LT(b, nominal) << "attempt " << attempt;
  }

  RetryPolicy other = policy;
  other.jitter_seed = 8;
  EXPECT_NE(retry_backoff_ms(policy, 3), retry_backoff_ms(other, 3))
      << "different seeds must jitter differently";
}

// ----------------------------------------------------------- fault free --

TEST(RetryClient, FaultFreeBatchMatchesClientRoundtripByteForByte) {
  ServiceConfig config;
  config.serial = true;
  RunningTcp server(config);

  // no_cache pins "cached":false in both runs: the comparison must see
  // identical bytes, not a cold-vs-warm cache difference.
  std::vector<std::string> lines;
  for (const char* soc : {"soc1", "soc2", "soc3", "soc1"}) {
    lines.push_back("{\"schema\":\"soctest-req-v1\",\"id\":\"ff-" +
                    std::to_string(lines.size()) + "\",\"soc\":\"" +
                    std::string(soc) +
                    "\",\"solver\":\"greedy\",\"no_cache\":true}");
  }
  const auto direct = client_roundtrip(server.endpoint(), lines);
  ASSERT_TRUE(direct.ok()) << direct.status().to_string();

  RetryPolicy policy;  // max_attempts=1: pure pass-through
  RetryingClient client(server.endpoint(), policy);
  const auto via_client = client.run_batch(lines);
  ASSERT_TRUE(via_client.ok()) << via_client.status().to_string();

  // Serial mode omits timing and cache markers, so the two response
  // streams must be byte-identical — the retry layer is invisible when
  // nothing goes wrong.
  EXPECT_EQ(via_client.value(), direct.value());
  EXPECT_EQ(client.stats().attempts,
            static_cast<long long>(lines.size()));
  EXPECT_EQ(client.stats().retries, 0);
  EXPECT_EQ(client.stats().reconnects, 0);
  EXPECT_EQ(client.stats().gave_up, 0);
}

// ----------------------------------------------------------- rejections --

TEST(RetryClient, HonorsRetryAfterAdviceUntilAdmitted) {
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  config.retry_after_ms = 20.0;
  RunningTcp server(config);

  // Four slow solves against a single admission slot: all but one bounce
  // with retry_after_ms advice. The client must park them and resend on
  // schedule until each is admitted and answered for real.
  std::vector<std::string> lines;
  for (int i = 0; i < 4; ++i) {
    lines.push_back("{\"schema\":\"soctest-req-v1\",\"id\":\"adm-" +
                    std::to_string(i) +
                    "\",\"soc\":\"soc4\",\"buses\":4,\"width\":64,"
                    "\"time_limit_ms\":150,\"no_cache\":true}");
  }
  RetryPolicy policy;
  policy.max_attempts = 200;
  policy.base_backoff_ms = 5.0;
  RetryingClient client(server.endpoint(), policy);
  const auto responses = client.run_batch(lines);
  ASSERT_TRUE(responses.ok()) << responses.status().to_string();

  ASSERT_EQ(count_finals(responses.value()), lines.size());
  for (const auto& line : responses.value()) {
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos) << line;
  }
  EXPECT_GE(client.stats().rejections_honored, 1);
  EXPECT_EQ(client.stats().gave_up, 0);
}

// ------------------------------------------------------------- reconnect --

TEST(RetryClient, ReplaysUnansweredRequestsThroughConnectionDrops) {
  ServiceConfig server_config;
  server_config.serial = true;
  RunningTcp server(server_config);

  ChaosConfig chaos;
  chaos.upstream = server.endpoint();
  chaos.seed = 42;
  chaos.drop_prob = 1.0;  // every connection dies after 1..6000 bytes
  RunningChaos proxy(chaos);

  // Enough traffic that every connection's drop byte budget (1..6000
  // relayed bytes) fires before the batch can finish on it: the client is
  // forced through several drop -> reconnect -> replay cycles.
  std::vector<std::string> lines;
  for (int i = 0; i < 30; ++i) {
    lines.push_back(greedy_req("drop-" + std::to_string(i), "soc1"));
  }
  RetryPolicy policy;
  policy.max_attempts = 30;
  policy.base_backoff_ms = 1.0;
  policy.max_backoff_ms = 20.0;
  RetryingClient client(proxy.proxy.endpoint(), policy);
  const auto responses = client.run_batch(lines);
  ASSERT_TRUE(responses.ok()) << responses.status().to_string();

  // Every request answered exactly once despite the carnage: replays are
  // idempotent (id-matched, cache-backed) and duplicates are dropped.
  ASSERT_EQ(count_finals(responses.value()), lines.size());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::size_t hits = 0;
    const std::string needle = "\"id\":\"drop-" + std::to_string(i) + "\"";
    for (const auto& line : responses.value()) {
      if (line.find(needle) != std::string::npos) ++hits;
    }
    EXPECT_EQ(hits, 1u) << "request " << i << " lost or duplicated";
  }
  EXPECT_GE(client.stats().reconnects, 1);
  EXPECT_EQ(client.stats().gave_up, 0);
  EXPECT_GE(proxy.proxy.stats().drops, 1);
  // The drop budget clips bursts instead of discarding them, so response
  // bytes land on every connection whose budget outlives the replayed
  // upload — convergence is a property of the byte budgets, not of how
  // fast the server happens to answer (sanitizer builds run 10-20x slow).
  EXPECT_GT(proxy.proxy.stats().bytes_to_client, 0);
}

// ---------------------------------------------------------------- budget --

TEST(RetryClient, GivesUpLoudlyAfterTheAttemptBudget) {
  // Every connection is half-open: accepted, read, never answered. Only
  // the silence watchdog can unstick the client, and after max_attempts
  // it must synthesize a structured failure rather than hang or retry
  // forever.
  ServiceConfig server_config;
  server_config.serial = true;
  RunningTcp server(server_config);

  ChaosConfig chaos;
  chaos.upstream = server.endpoint();
  chaos.seed = 3;
  chaos.halfopen_prob = 1.0;
  RunningChaos proxy(chaos);

  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.base_backoff_ms = 1.0;
  policy.max_backoff_ms = 5.0;
  policy.response_timeout_ms = 100.0;
  RetryingClient client(proxy.proxy.endpoint(), policy);
  const auto responses =
      client.run_batch({greedy_req("doomed", "soc1")});
  ASSERT_TRUE(responses.ok()) << responses.status().to_string();

  ASSERT_EQ(responses.value().size(), 1u);
  const std::string& final = responses.value()[0];
  EXPECT_NE(final.find("\"ok\":false"), std::string::npos) << final;
  EXPECT_NE(final.find("\"id\":\"doomed\""), std::string::npos) << final;
  EXPECT_NE(final.find("retry budget exhausted"), std::string::npos) << final;
  EXPECT_EQ(client.stats().gave_up, 1);
  EXPECT_GE(client.stats().timeouts, 1);
  EXPECT_GE(proxy.proxy.stats().halfopen, 1);
}

TEST(RetryClient, UnreachableServerFailsTheBatchWithAStatus) {
  // Nothing is listening: the client must give up after its connect
  // budget and surface a status, since not even a synthesized response
  // can claim an id was "attempted" against a server that never existed.
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 1.0;
  policy.max_backoff_ms = 2.0;
  policy.max_connect_failures = 3;
  RetryingClient client("127.0.0.1:1", policy);  // port 1: refused
  const auto responses = client.run_batch({greedy_req("no-server", "soc1")});
  EXPECT_FALSE(responses.ok());
}

}  // namespace
}  // namespace soctest
