#include <gtest/gtest.h>

#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/timing.hpp"

namespace soctest {
namespace {

class TimingSoc1 : public ::testing::Test {
 protected:
  void SetUp() override {
    soc_ = builtin_soc1();
    plan_ = plan_buses(soc_, 2);
    table_.emplace(soc_, 16);
    problem_ = make_tam_problem(soc_, *table_, {16, 16});
  }
  Soc soc_;
  BusPlan plan_;
  std::optional<TestTimeTable> table_;
  TamProblem problem_;
};

TEST_F(TimingSoc1, PeriodsGrowWithCriticalWire) {
  const auto solved = solve_exact(problem_);
  TamClockModel model;
  const auto periods = bus_clock_periods_ns(plan_, solved.assignment.core_to_bus, model);
  ASSERT_EQ(periods.size(), 2u);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_GE(periods[j],
              model.base_period_ns +
                  model.per_cell_ns * plan_.buses[j].trunk.length());
  }
  // Zero wire delay collapses to the base period.
  TamClockModel ideal;
  ideal.per_cell_ns = 0.0;
  for (double p : bus_clock_periods_ns(plan_, solved.assignment.core_to_bus, ideal)) {
    EXPECT_DOUBLE_EQ(p, ideal.base_period_ns);
  }
}

TEST_F(TimingSoc1, WallClockMatchesHandComputation) {
  const auto solved = solve_exact(problem_);
  const auto& assignment = solved.assignment.core_to_bus;
  const auto periods = bus_clock_periods_ns(plan_, assignment);
  std::vector<Cycles> load(2, 0);
  for (std::size_t i = 0; i < soc_.num_cores(); ++i) {
    const auto j = static_cast<std::size_t>(assignment[i]);
    load[j] += problem_.time[i][j];
  }
  const double expect = std::max(static_cast<double>(load[0]) * periods[0],
                                 static_cast<double>(load[1]) * periods[1]);
  EXPECT_DOUBLE_EQ(wall_clock_test_time_ns(problem_, plan_, assignment), expect);
}

TEST_F(TimingSoc1, LexWireOptimumNeverSlowerInWallClock) {
  // Same cycle count, shorter stubs -> periods can only shrink.
  const BusPlan plan3 = plan_buses(soc_, 3);
  const LayoutConstraints layout(plan3, soc_.num_cores(), -1);
  const TamProblem problem =
      make_tam_problem(soc_, *table_, {16, 16, 16}, &layout);
  const auto plain = solve_exact(problem);
  const auto lex = solve_exact_lex(problem);
  ASSERT_TRUE(plain.feasible && lex.feasible);
  ASSERT_EQ(plain.assignment.makespan, lex.assignment.makespan);
  const double t_plain =
      wall_clock_test_time_ns(problem, plan3, plain.assignment.core_to_bus);
  const double t_lex =
      wall_clock_test_time_ns(problem, plan3, lex.assignment.core_to_bus);
  // Lex minimizes TOTAL wire, not per-bus max stubs, so strict dominance is
  // not guaranteed — but it should not lose by much and usually wins.
  EXPECT_LE(t_lex, t_plain * 1.05);
}

TEST_F(TimingSoc1, RejectsBadAssignments) {
  std::vector<int> bad(soc_.num_cores(), 9);
  EXPECT_THROW(bus_clock_periods_ns(plan_, bad), std::invalid_argument);
  std::vector<int> negative(soc_.num_cores(), -1);
  EXPECT_THROW(bus_clock_periods_ns(plan_, negative), std::invalid_argument);
}

}  // namespace
}  // namespace soctest
