#include <gtest/gtest.h>

#include <iterator>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "report/json.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace soctest {
namespace {

// Deterministic mutational fuzzing of the soctest-req-v1 wire surface: a
// hostile or corrupted peer (the chaos proxy manufactures both) may hand
// the parser any byte salad, and the contract is a structured error —
// never a crash, never a hang, never a second response. Seeds are fixed,
// so a failure here is a plain reproducible test failure.

std::vector<std::string> seed_corpus() {
  std::vector<std::string> corpus;
  {
    ServiceRequest r;
    r.id = "f-1";
    corpus.push_back(request_json(r));
  }
  {
    ServiceRequest r;
    r.id = "f-2";
    r.soc = "soc3";
    r.widths = {16, 8, 8};
    r.solver = InnerSolver::kGreedy;
    r.p_max = 1200.0;
    r.time_limit_ms = 50.0;
    corpus.push_back(request_json(r));
  }
  {
    ServiceRequest r;
    r.id = "f-3";
    r.soc_text = "soc fuzz\ncore c1 10 20 5 1.0\nend";
    r.stream = true;
    r.no_cache = true;
    corpus.push_back(request_json(r));
  }
  corpus.push_back(ping_json("f-ping"));
  corpus.push_back(pong_json("f-pong"));
  corpus.push_back(rejection_json("f-rej", 25.0, "busy"));
  corpus.push_back(oversized_line_response_json());
  return corpus;
}

/// One mutation step: splice, flip, truncate, duplicate, or inject a
/// token. Mutations compose — the fuzzer applies 1..4 per line.
std::string mutate(std::string line, Rng& rng) {
  static const char* kTokens[] = {
      "\"", "{", "}", "[", "]", ":", ",", "null", "true", "false",
      "1e308", "-0", "\\u0000", "\"id\"", "\"schema\"", "\"soc_text\"",
      "\xff\xfe", "\\u", "9999999999999999999999",
  };
  const int op = static_cast<int>(rng.uniform_int(0, 4));
  switch (op) {
    case 0: {  // flip one byte
      if (line.empty()) return line;
      const std::size_t at = rng.index(line.size());
      line[at] = static_cast<char>(rng.uniform_int(1, 255));
      return line;
    }
    case 1: {  // truncate
      if (line.empty()) return line;
      line.resize(rng.index(line.size()));
      return line;
    }
    case 2: {  // duplicate a slice in place
      if (line.size() < 2) return line;
      const std::size_t a = rng.index(line.size());
      const std::size_t b = a + rng.index(line.size() - a);
      line.insert(a, line.substr(a, b - a));
      return line;
    }
    case 3: {  // inject a structural token
      const std::size_t at = line.empty() ? 0 : rng.index(line.size());
      line.insert(at, kTokens[rng.index(std::size(kTokens))]);
      return line;
    }
    default: {  // swap two halves
      if (line.size() < 2) return line;
      const std::size_t cut = 1 + rng.index(line.size() - 1);
      return line.substr(cut) + line.substr(0, cut);
    }
  }
}

TEST(ProtocolFuzz, ParseRequestNeverCrashesAndRoundTripsSurvivors) {
  const auto corpus = seed_corpus();
  Rng rng(20260808);
  int survivors = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    std::string line = corpus[rng.index(corpus.size())];
    const int steps = static_cast<int>(rng.uniform_int(1, 4));
    for (int s = 0; s < steps; ++s) line = mutate(std::move(line), rng);

    const auto parsed = parse_request(line);
    if (!parsed.ok()) continue;  // structured rejection: the common case
    ++survivors;
    // A line the parser accepts must serialize back to a line it accepts
    // again, with an identical canonical form (idempotent round trip) —
    // otherwise the front door's fingerprint and the result cache key
    // could disagree about the same request.
    const std::string canonical = request_json(parsed.value());
    const auto reparsed = parse_request(canonical);
    ASSERT_TRUE(reparsed.ok())
        << "round trip rejected its own output for: " << line;
    EXPECT_EQ(request_json(reparsed.value()), canonical);
  }
  // The mutator must not be so destructive that nothing survives — a few
  // byte flips inside string values stay valid JSON.
  EXPECT_GT(survivors, 0);
}

TEST(ProtocolFuzz, PingAndPongProbesTolerateMutation) {
  Rng rng(77);
  for (int iter = 0; iter < 2000; ++iter) {
    std::string line = iter % 2 == 0 ? ping_json("p-" + std::to_string(iter))
                                     : pong_json("p-" + std::to_string(iter));
    const int steps = static_cast<int>(rng.uniform_int(1, 3));
    for (int s = 0; s < steps; ++s) line = mutate(std::move(line), rng);
    std::string id;
    // Either outcome is fine; crashing or misclassifying a non-ping as a
    // ping with phantom state is not. parse_* must also agree with a
    // second call (no hidden state).
    const bool ping1 = parse_ping(line, &id);
    std::string id2;
    const bool ping2 = parse_ping(line, &id2);
    EXPECT_EQ(ping1, ping2);
    EXPECT_EQ(id, id2);
    std::string pid;
    parse_pong(line, &pid);
  }
}

TEST(ProtocolFuzz, MalformedLinesGetExactlyOneStructuredResponse) {
  // End to end through the serial service: every submitted line — however
  // mangled — must produce exactly one response, and a failed parse must
  // answer with ok=false plus an error object, not silence.
  ServiceConfig config;
  config.serial = true;
  SolveService service(config);

  const auto corpus = seed_corpus();
  Rng rng(4242);
  int checked = 0;
  for (int iter = 0; iter < 600; ++iter) {
    std::string line = corpus[rng.index(corpus.size())];
    const int steps = static_cast<int>(rng.uniform_int(1, 4));
    for (int s = 0; s < steps; ++s) line = mutate(std::move(line), rng);
    if (parse_request(line).ok()) continue;  // might be a real (slow) solve
    std::string ping_id;
    if (parse_ping(line, &ping_id)) continue;  // transport answers these
    ++checked;

    int responses = 0;
    service.submit(line, [&](std::string response) {
      ++responses;
      const auto doc = parse_json(response);
      ASSERT_TRUE(doc && doc->is_object()) << response;
      EXPECT_EQ(doc->string_or("schema", ""), kResponseSchema);
      const JsonValue* ok = doc->find("ok");
      ASSERT_NE(ok, nullptr);
      EXPECT_FALSE(ok->boolean);
      EXPECT_NE(doc->find("error"), nullptr) << response;
    });
    EXPECT_EQ(responses, 1) << "line answered " << responses
                            << " times: " << line;
  }
  EXPECT_GT(checked, 100);
  service.drain();
}

}  // namespace
}  // namespace soctest
