#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "cli/options.hpp"
#include "cli/run.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "layout/router.hpp"
#include "layout/sa_placer.hpp"
#include "pack/exact_pack.hpp"
#include "pack/skyline.hpp"
#include "runtime/failpoint.hpp"
#include "sched/power_sched.hpp"
#include "soc/builtin.hpp"
#include "soc/soc_format.hpp"
#include "tam/architect.hpp"
#include "tam/exact_solver.hpp"
#include "tam/heuristics.hpp"
#include "tam/ilp_solver.hpp"
#include "tam/portfolio.hpp"
#include "tam/timing.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

// Every failpoint in the catalog is armed at least once here, and every
// test asserts graceful degradation: no crash, no hang, no exception past
// the component boundary, and an honest status/stop-reason on the result.

constexpr const char* kMinimalSoc =
    "soc faulty 20 20\n"
    "core a inputs 8 outputs 8 patterns 20 power 100 size 4 4\n"
    "core b inputs 6 outputs 6 patterns 30 power 150 size 4 4\n"
    "end\n";

class FaultInjection : public ::testing::Test {
 protected:
  void SetUp() override { failpoint::disarm_all(); }
  void TearDown() override { failpoint::disarm_all(); }
};

// ------------------------------------------------------------ soc.parse.* --

TEST_F(FaultInjection, ParserOpenFaultBecomesIoError) {
  ASSERT_TRUE(failpoint::arm("soc.parse.open=error").ok());
  const StatusOr<Soc> result = parse_soc_string(kMinimalSoc, "mem.soc");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_NE(result.status().message().find("injected"), std::string::npos);
}

TEST_F(FaultInjection, ParserOpenBadAllocBecomesResourceExhausted) {
  ASSERT_TRUE(failpoint::arm("soc.parse.open=bad_alloc").ok());
  const StatusOr<Soc> result = parse_soc_string(kMinimalSoc, "mem.soc");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(FaultInjection, ParserLineFaultReportsLocation) {
  ASSERT_TRUE(failpoint::arm("soc.parse.line=error:2").ok());
  const StatusOr<Soc> result = parse_soc_string(kMinimalSoc, "mem.soc");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kParseError);
  EXPECT_NE(result.status().message().find("mem.soc:2"), std::string::npos)
      << result.status().message();
  EXPECT_NE(result.status().message().find("injected"), std::string::npos);
}

TEST_F(FaultInjection, ParserRecoversOnceDisarmed) {
  ASSERT_TRUE(failpoint::arm("soc.parse.line=error").ok());
  ASSERT_FALSE(parse_soc_string(kMinimalSoc, "mem.soc").ok());
  failpoint::disarm_all();
  EXPECT_TRUE(parse_soc_string(kMinimalSoc, "mem.soc").ok());
}

// -------------------------------------------------------- common.pool.task --

TEST_F(FaultInjection, PoolContainsInjectedTaskFault) {
  ASSERT_TRUE(failpoint::arm("common.pool.task=error").ok());
  ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) {
    pool.post([] {});
  }
  pool.wait_all();
  EXPECT_GT(pool.task_errors(), 0);
  // The workers survive: once disarmed the pool keeps executing tasks.
  failpoint::disarm_all();
  std::atomic<int> ran{0};
  pool.post([&] { ran.fetch_add(1); });
  pool.wait_all();
  EXPECT_EQ(ran.load(), 1);
}

TEST_F(FaultInjection, PoolContainsInjectedBadAlloc) {
  ASSERT_TRUE(failpoint::arm("common.pool.task=bad_alloc").ok());
  ThreadPool pool(2);
  for (int i = 0; i < 4; ++i) {
    pool.post([] {});
  }
  pool.wait_all();
  EXPECT_GT(pool.task_errors(), 0);
}

// -------------------------------------------------------------- solvers --

TamProblem small_problem() {
  Rng rng(3);
  testutil::RandomProblemOptions options;
  options.num_cores = 8;
  options.num_buses = 2;
  return testutil::random_problem(rng, options);
}

TEST_F(FaultInjection, ExactSolverStopsWithFault) {
  ASSERT_TRUE(failpoint::arm("tam.exact.node=error").ok());
  const TamSolveResult result = solve_exact(small_problem(), {});
  EXPECT_EQ(result.stop, StopReason::kFault);
  EXPECT_FALSE(result.proved_optimal);
}

TEST_F(FaultInjection, ExactSolverFaultDeepInTheSearch) {
  // Let the search run 50 nodes before the fault: the incumbent found so
  // far must survive the abort. Needs a problem whose search tree outlives
  // the ordinal — 12 cores over 3 buses visits thousands of nodes.
  ASSERT_TRUE(failpoint::arm("tam.exact.node=error:50").ok());
  Rng rng(7);
  testutil::RandomProblemOptions options;
  options.num_cores = 12;
  options.num_buses = 3;
  const TamSolveResult result =
      solve_exact(testutil::random_problem(rng, options), {});
  EXPECT_EQ(result.stop, StopReason::kFault);
  EXPECT_TRUE(result.feasible);  // 50 nodes is plenty to find an incumbent
}

TEST_F(FaultInjection, SaSolverKeepsIncumbentOnFault) {
  ASSERT_TRUE(failpoint::arm("tam.sa.iter=error:10").ok());
  const TamSolveResult result = solve_sa(small_problem(), {});
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.stop, StopReason::kFault);
}

TEST_F(FaultInjection, IlpSolverStopsWithFault) {
  ASSERT_TRUE(failpoint::arm("ilp.bb.node=error").ok());
  const TamSolveResult result = solve_ilp(small_problem(), {});
  EXPECT_EQ(result.stop, StopReason::kFault);
  EXPECT_FALSE(result.proved_optimal);
}

TEST_F(FaultInjection, PortfolioDegradesWhenExactRacerFaults) {
  ASSERT_TRUE(failpoint::arm("tam.exact.node=error").ok());
  const PortfolioResult race = solve_portfolio(small_problem(), {});
  // SA and the greedy floor survive, so the race still yields an incumbent.
  ASSERT_TRUE(race.best.feasible);
  EXPECT_NE(race.certificate.status, SolveStatus::kError)
      << race.certificate.to_string();
}

TEST_F(FaultInjection, PortfolioSurvivesPoolTaskFaults) {
  // Both racers die before running (their pool tasks throw); the greedy
  // floor computed on the calling thread still yields an architecture.
  ASSERT_TRUE(failpoint::arm("common.pool.task=error").ok());
  const PortfolioResult race = solve_portfolio(small_problem(), {});
  ASSERT_TRUE(race.best.feasible);
  EXPECT_EQ(race.best.stop, StopReason::kFault);
}

// ------------------------------------------------------------ pack.*.* --

PackProblem small_pack_problem() {
  const Soc soc = builtin_soc1();
  return make_pack_problem(soc, cached_test_time_table(soc, 32), 32);
}

TEST_F(FaultInjection, PackExactKeepsWarmStartOnFault) {
  ASSERT_TRUE(failpoint::arm("pack.exact.node=error").ok());
  const PackProblem problem = small_pack_problem();
  const PackSolveResult r = solve_pack_exact(problem);
  // The skyline warm start survives the aborted search as the incumbent.
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.stop, StopReason::kFault);
  EXPECT_FALSE(r.proved_optimal);
  EXPECT_EQ(r.certificate.status, SolveStatus::kFeasibleBounded);
  EXPECT_EQ(check_packing(problem, r.placements, r.makespan), "");
}

TEST_F(FaultInjection, PackExactFaultDeepInTheSearch) {
  ASSERT_TRUE(failpoint::arm("pack.exact.node=error:200").ok());
  const PackProblem problem = small_pack_problem();
  const PackSolveResult r = solve_pack_exact(problem);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.stop, StopReason::kFault);
  EXPECT_EQ(check_packing(problem, r.placements, r.makespan), "");
}

TEST_F(FaultInjection, PackRepairKeepsBasePassOnFault) {
  ASSERT_TRUE(failpoint::arm("pack.sa.iter=error:5").ok());
  const PackProblem problem = small_pack_problem();
  const PackSolveResult r = solve_pack(problem);
  // The deterministic base pass is the incumbent; the aborted repair loop
  // must not lose it or report a dishonest certificate.
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.stop, StopReason::kFault);
  EXPECT_EQ(r.certificate.status, SolveStatus::kFeasibleBounded);
  EXPECT_EQ(check_packing(problem, r.placements, r.makespan), "");
}

TEST_F(FaultInjection, PackRepairCancelActionMapsToCancelled) {
  ASSERT_TRUE(failpoint::arm("pack.sa.iter=cancel").ok());
  const PackSolveResult r = solve_pack(small_pack_problem());
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.stop, StopReason::kCancelled);
}

// ---------------------------------------------------------------- layout --

TEST_F(FaultInjection, PlacerCommitsBestOnFault) {
  ASSERT_TRUE(failpoint::arm("layout.sa.iter=error:100").ok());
  Soc soc = builtin_soc1();
  ASSERT_TRUE(soc.has_placement());
  Rng rng(1);
  sa_place(soc, {}, rng);
  EXPECT_TRUE(soc.has_placement());
  EXPECT_GT(placement_cost(soc), 0);
}

TEST_F(FaultInjection, RouterReturnsNoRouteOnFault) {
  ASSERT_TRUE(failpoint::arm("layout.route.step=error").ok());
  DieGrid grid(8, 8);
  const GridRouter router(grid);
  EXPECT_FALSE(router.route({0, 0}, {7, 7}).has_value());
  failpoint::disarm_all();
  EXPECT_TRUE(router.route({0, 0}, {7, 7}).has_value());
}

// -------------------------------------------------------- sched.power.tick --

TEST_F(FaultInjection, PowerSchedulerFailsCleanOnTimeoutFault) {
  ASSERT_TRUE(failpoint::arm("sched.power.tick=timeout").ok());
  const Soc soc = builtin_soc1();
  DesignRequest request;
  request.bus_widths = {16, 16};
  const DesignResult design = design_architecture(soc, request);
  ASSERT_TRUE(design.feasible);
  const TestTimeTable& table = cached_test_time_table(soc, 16);
  const TamProblem problem = make_tam_problem(soc, table, design.bus_widths);
  PowerScheduleOptions options;
  options.p_max_mw = 2000;
  const PowerScheduleResult ps = build_power_aware_schedule(
      problem, soc, design.assignment.core_to_bus, options);
  EXPECT_FALSE(ps.feasible);
  EXPECT_EQ(ps.stop, StopReason::kDeadline);
  EXPECT_TRUE(ps.schedule.tests.empty());
}

// ------------------------------------------------------------ report.write --

TEST_F(FaultInjection, TraceWriterFaultSetsInternalExit) {
  const std::string path = ::testing::TempDir() + "/fault_trace.json";
  const CliResult r = run_cli(parse_cli(
      {"--soc", "soc1", "--widths", "16,16", "--trace", path, "--failpoints",
       "report.write=error"}));
  EXPECT_EQ(r.exit_code, kExitInternal) << r.output;
  EXPECT_NE(r.output.find("injected fault writing"), std::string::npos)
      << r.output;
}

// ------------------------------------------------------------ CLI arming --

TEST_F(FaultInjection, CliRejectsBadFailpointSpec) {
  const CliResult r =
      run_cli(parse_cli({"--soc", "soc1", "--failpoints", "no.such=error"}));
  EXPECT_EQ(r.exit_code, kExitUsage);
  EXPECT_NE(r.output.find("unknown failpoint site"), std::string::npos);
}

TEST_F(FaultInjection, CliDisarmsAfterTheRun) {
  const CliResult r = run_cli(parse_cli(
      {"--soc", "soc1", "--widths", "16,16", "--failpoints",
       "tam.sa.iter=error"}));
  EXPECT_EQ(r.exit_code, 0) << r.output;  // exact path: SA site never hit
  EXPECT_FALSE(failpoint::armed());
}

TEST_F(FaultInjection, CliSolverFaultDegradesGracefully) {
  // Exact solver faults on node 1; the run must still terminate cleanly
  // (infeasible-with-reason or a degraded incumbent, never a crash).
  const CliResult r = run_cli(parse_cli(
      {"--soc", "soc1", "--widths", "16,16", "--failpoints",
       "tam.exact.node=error"}));
  EXPECT_NE(r.output.find("status="), std::string::npos) << r.output;
  EXPECT_TRUE(r.exit_code == kExitSuccess || r.exit_code == kExitInternal)
      << r.exit_code << "\n" << r.output;
}

// Catalog completeness: every site must be exercised by this suite. This
// meta-test fails when a new site is added without a matching fault test.
TEST_F(FaultInjection, EverySiteIsCovered) {
  const std::vector<std::string> covered = {
      failpoint::sites::kSocParseOpen, failpoint::sites::kSocParseLine,
      failpoint::sites::kPoolTask,     failpoint::sites::kExactNode,
      failpoint::sites::kSaIter,       failpoint::sites::kIlpNode,
      failpoint::sites::kPlacerIter,   failpoint::sites::kRouteStep,
      failpoint::sites::kPowerTick,    failpoint::sites::kReportWrite,
      failpoint::sites::kPackNode,     failpoint::sites::kPackSaIter,
  };
  for (const std::string& site : failpoint::catalog()) {
    EXPECT_NE(std::find(covered.begin(), covered.end(), site), covered.end())
        << "failpoint site " << site
        << " has no test in fault_injection_test.cpp";
  }
}

}  // namespace
}  // namespace soctest
