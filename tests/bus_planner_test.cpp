#include <gtest/gtest.h>

#include <set>

#include "layout/bus_planner.hpp"
#include "soc/builtin.hpp"
#include "soc/generator.hpp"

namespace soctest {
namespace {

TEST(BusPlanner, RejectsBadInputs) {
  const Soc soc = builtin_soc1();
  EXPECT_THROW(plan_buses(soc, 0), std::invalid_argument);
  Soc unplaced("u", 5, 5);
  Core c;
  c.name = "a";
  c.num_inputs = 1;
  c.num_outputs = 1;
  c.num_patterns = 1;
  unplaced.add_core(c);
  EXPECT_THROW(plan_buses(unplaced, 2), std::invalid_argument);
}

TEST(BusPlanner, TrunksSpanTheDie) {
  const Soc soc = builtin_soc1();
  const BusPlan plan = plan_buses(soc, 3);
  ASSERT_EQ(plan.num_buses(), 3u);
  for (const auto& bus : plan.buses) {
    ASSERT_FALSE(bus.trunk.cells.empty());
    EXPECT_EQ(bus.trunk.cells.front().x, 0);
    EXPECT_EQ(bus.trunk.cells.back().x, soc.die_width() - 1);
  }
}

TEST(BusPlanner, TrunksAvoidCores) {
  const Soc soc = builtin_soc1();
  const DieGrid grid(soc);
  const BusPlan plan = plan_buses(soc, 4);
  for (const auto& bus : plan.buses) {
    for (const auto& p : bus.trunk.cells) {
      EXPECT_FALSE(grid.blocked(p)) << "trunk crosses a core at (" << p.x
                                    << "," << p.y << ")";
    }
  }
}

TEST(BusPlanner, EveryCoreReachesEveryTrunk) {
  // soc1's channels are wide enough that all cores reach all buses.
  const Soc soc = builtin_soc1();
  const BusPlan plan = plan_buses(soc, 3);
  for (std::size_t j = 0; j < plan.num_buses(); ++j) {
    for (std::size_t i = 0; i < soc.num_cores(); ++i) {
      EXPECT_GE(plan.distance(i, j), 0) << "core " << i << " bus " << j;
    }
  }
}

TEST(BusPlanner, DistancesVaryAcrossBuses) {
  // A core near the bottom should be closer to the lowest trunk.
  const Soc soc = builtin_soc1();
  const BusPlan plan = plan_buses(soc, 3);
  const auto bottom_core = *soc.find_core("c6288");   // placed at y=2
  const auto top_core = *soc.find_core("s35932");     // placed at y=30
  EXPECT_LT(plan.distance(bottom_core, 0), plan.distance(bottom_core, 2));
  EXPECT_GT(plan.distance(top_core, 0), plan.distance(top_core, 2));
}

TEST(BusPlanner, CongestionSpreadsTrunks) {
  const Soc soc = builtin_soc1();
  const BusPlan plan = plan_buses(soc, 3);
  // No two trunks may be identical.
  std::set<std::vector<int>> signatures;
  for (const auto& bus : plan.buses) {
    std::vector<int> sig;
    for (const auto& p : bus.trunk.cells) {
      sig.push_back(p.x * 1000 + p.y);
    }
    EXPECT_TRUE(signatures.insert(sig).second) << "duplicate trunk";
  }
}

TEST(BusPlanner, TotalTrunkLengthAtLeastDieWidth) {
  const Soc soc = builtin_soc2();
  const BusPlan plan = plan_buses(soc, 2);
  EXPECT_GE(plan.total_trunk_length(),
            2LL * (soc.die_width() - 1));
}

TEST(BusPlanner, WorksOnGeneratedSocs) {
  for (std::uint64_t seed : {7u, 21u, 63u}) {
    Rng rng(seed);
    const Soc soc = generate_soc(SocGeneratorOptions{}, rng);
    const BusPlan plan = plan_buses(soc, 2);
    EXPECT_EQ(plan.num_buses(), 2u);
    for (std::size_t i = 0; i < soc.num_cores(); ++i) {
      // Shelf placement leaves channels; every core must reach some bus.
      EXPECT_TRUE(plan.distance(i, 0) >= 0 || plan.distance(i, 1) >= 0);
    }
  }
}

TEST(BusPlanner, SingleBus) {
  const Soc soc = builtin_soc2();
  const BusPlan plan = plan_buses(soc, 1);
  EXPECT_EQ(plan.num_buses(), 1u);
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    EXPECT_GE(plan.distance(i, 0), 0);
  }
}

}  // namespace
}  // namespace soctest
