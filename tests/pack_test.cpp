// The rectangle-packing formulation (src/pack): problem lowering, the
// feasibility oracle, golden schedules on hand-checkable instances, the
// anytime contract (deadline/cancel/node-budget interruption), and the
// formulation-level portfolio race pinned at 1/2/8 threads.

#include <gtest/gtest.h>

#include <algorithm>

#include "cli/options.hpp"
#include "cli/run.hpp"
#include "pack/exact_pack.hpp"
#include "pack/pack_problem.hpp"
#include "pack/skyline.hpp"
#include "soc/builtin.hpp"
#include "soc/generator.hpp"
#include "tam/architect.hpp"
#include "wrapper/test_time_table.hpp"

namespace soctest {
namespace {

PackProblem two_flexible_cores() {
  // Two interchangeable cores, each either 1x10 or 2x5, strip width 2.
  PackProblem p;
  p.total_width = 2;
  p.menu = {{{1, 10}, {2, 5}}, {{1, 10}, {2, 5}}};
  return p;
}

TEST(PackProblem, LoweringMatchesParetoStaircase) {
  const Soc soc = builtin_soc2();
  const TestTimeTable table(soc, 16);
  const PackProblem problem = make_pack_problem(soc, table, 16, 2000.0);
  ASSERT_EQ(problem.num_cores(), soc.num_cores());
  EXPECT_EQ(problem.validate(), "");
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    const std::vector<int> widths = table.pareto_widths(i);
    ASSERT_EQ(problem.menu[i].size(), widths.size());
    for (std::size_t k = 0; k < widths.size(); ++k) {
      EXPECT_EQ(problem.menu[i][k].width, widths[k]);
      EXPECT_EQ(problem.menu[i][k].time, table.time(i, widths[k]));
    }
  }
  ASSERT_EQ(problem.power_mw.size(), soc.num_cores());
  EXPECT_EQ(problem.p_max_mw, 2000.0);
}

TEST(PackProblem, LowerBoundIsMaxOfTallestAndArea) {
  PackProblem p = two_flexible_cores();
  // Tallest = 5 (full width); area = 2 * min(1*10, 2*5) / 2 = 10.
  EXPECT_EQ(p.lower_bound(), 10);
  // A narrow 1x100 core: the area bound only rises to (10+10+100)/2 = 60,
  // but its own minimum time dominates.
  p.menu.push_back({{1, 100}});
  EXPECT_EQ(p.lower_bound(), 100);
}

TEST(PackProblem, OracleCatchesEveryViolationClass) {
  const PackProblem p = two_flexible_cores();
  const std::vector<PackPlacement> good = {{0, 1, 0, 0, 10}, {1, 1, 1, 0, 10}};
  EXPECT_EQ(check_packing(p, good, 10), "");
  // Overlap.
  const std::vector<PackPlacement> overlap = {{0, 2, 0, 0, 5}, {1, 2, 0, 4, 9}};
  EXPECT_NE(check_packing(p, overlap, 9), "");
  // Outside the strip.
  const std::vector<PackPlacement> wide = {{0, 2, 1, 0, 5}, {1, 2, 0, 5, 10}};
  EXPECT_NE(check_packing(p, wide, 10), "");
  // Shape not in the menu.
  const std::vector<PackPlacement> shape = {{0, 1, 0, 0, 5}, {1, 2, 0, 5, 10}};
  EXPECT_NE(check_packing(p, shape, 10), "");
  // A core missing / doubled.
  const std::vector<PackPlacement> twice = {{0, 2, 0, 0, 5}, {0, 2, 0, 5, 10}};
  EXPECT_NE(check_packing(p, twice, 10), "");
  // Reported makespan disagrees with the geometry.
  EXPECT_NE(check_packing(p, good, 11), "");
  // Time-resolved power: both cores active at t=0 exceeds the budget.
  PackProblem powered = two_flexible_cores();
  powered.p_max_mw = 150.0;
  powered.power_mw = {100.0, 100.0};
  EXPECT_NE(check_packing(powered, good, 10), "");
}

TEST(PackSkyline, GoldenTwoCoreStack) {
  const PackSolveResult r = solve_pack_skyline(two_flexible_cores());
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.makespan, 10);
  EXPECT_TRUE(r.proved_optimal);  // hits the area lower bound
  EXPECT_EQ(r.certificate.status, SolveStatus::kOptimal);
  // Golden: both cores take the full strip, stacked.
  ASSERT_EQ(r.placements.size(), 2u);
  EXPECT_EQ(r.placements[0].width, 2);
  EXPECT_EQ(r.placements[0].start, 0);
  EXPECT_EQ(r.placements[0].end, 5);
  EXPECT_EQ(r.placements[1].width, 2);
  EXPECT_EQ(r.placements[1].start, 5);
  EXPECT_EQ(r.placements[1].end, 10);
  EXPECT_EQ(check_packing(two_flexible_cores(), r.placements, r.makespan), "");
}

TEST(PackSkyline, GoldenRaiseOverNarrowGap) {
  // Two cores that only come 2 wide in a 3-wide strip: after B (2x8, the
  // taller, placed first) a 1-wide gap remains that A (2x4) cannot use, so
  // the packer must raise the gap to B's end and stack A on top.
  PackProblem p;
  p.total_width = 3;
  p.menu = {{{2, 4}}, {{2, 8}}};
  const PackSolveResult r = solve_pack_skyline(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.makespan, 12);
  ASSERT_EQ(r.placements.size(), 2u);
  EXPECT_EQ(r.placements[0].core, 1u);  // B at the bottom
  EXPECT_EQ(r.placements[0].x, 0);
  EXPECT_EQ(r.placements[0].start, 0);
  EXPECT_EQ(r.placements[0].end, 8);
  EXPECT_EQ(r.placements[1].core, 0u);  // A raised above it, back at x=0
  EXPECT_EQ(r.placements[1].x, 0);
  EXPECT_EQ(r.placements[1].start, 8);
  EXPECT_EQ(r.placements[1].end, 12);
  EXPECT_EQ(check_packing(p, r.placements, r.makespan), "");
}

TEST(PackSkyline, TimeResolvedPowerSerializes) {
  // Two 1x10 cores fit side by side geometrically, but 100+100 mW exceeds
  // the 150 mW budget at every shared instant: the schedule must serialize
  // even though no width is shared.
  PackProblem p;
  p.total_width = 2;
  p.menu = {{{1, 10}}, {{1, 10}}};
  p.power_mw = {100.0, 100.0};
  p.p_max_mw = 150.0;
  const PackSolveResult r = solve_pack(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.makespan, 20);
  EXPECT_EQ(check_packing(p, r.placements, r.makespan), "");
  // Without the budget the same instance runs fully parallel.
  PackProblem free = p;
  free.p_max_mw = -1.0;
  free.power_mw.clear();
  EXPECT_EQ(solve_pack(free).makespan, 10);
}

TEST(PackSolve, RepairNeverWorseThanRawSkylineOnBuiltins) {
  for (const Soc& soc : {builtin_soc1(), builtin_soc2(), builtin_soc3(),
                         builtin_soc4()}) {
    for (int width : {16, 32}) {
      const TestTimeTable table(soc, width);
      const PackProblem problem = make_pack_problem(soc, table, width);
      const PackSolveResult raw = solve_pack_skyline(problem);
      const PackSolveResult repaired = solve_pack(problem);
      ASSERT_TRUE(raw.feasible && repaired.feasible);
      EXPECT_LE(repaired.makespan, raw.makespan);
      EXPECT_GE(repaired.makespan, problem.lower_bound());
      EXPECT_EQ(check_packing(problem, repaired.placements,
                              repaired.makespan), "")
          << soc.name() << " width " << width;
    }
  }
}

TEST(PackExact, ProvesOptimalityOnSmallGeneratedInstances) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    SocGeneratorOptions gen;
    gen.num_cores = 5;
    gen.place = false;
    const Soc soc = generate_soc(gen, rng);
    const TestTimeTable table(soc, 8);
    const PackProblem problem = make_pack_problem(soc, table, 8);
    const PackSolveResult heur = solve_pack(problem);
    const PackSolveResult exact = solve_pack_exact(problem);
    ASSERT_TRUE(exact.feasible) << "seed " << seed;
    EXPECT_TRUE(exact.proved_optimal) << "seed " << seed;
    EXPECT_EQ(exact.stop, StopReason::kNone) << "seed " << seed;
    EXPECT_LE(exact.makespan, heur.makespan) << "seed " << seed;
    EXPECT_GE(exact.makespan, problem.lower_bound()) << "seed " << seed;
    EXPECT_EQ(check_packing(problem, exact.placements, exact.makespan), "")
        << "seed " << seed;
  }
}

TEST(PackExact, NodeBudgetReturnsBoundedIncumbent) {
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 32);
  const PackProblem problem = make_pack_problem(soc, table, 32);
  PackExactOptions options;
  options.max_nodes = 50;
  const PackSolveResult r = solve_pack_exact(problem, options);
  ASSERT_TRUE(r.feasible);  // the warm start survives the tiny budget
  EXPECT_FALSE(r.proved_optimal);
  EXPECT_EQ(r.stop, StopReason::kNodeBudget);
  EXPECT_EQ(r.certificate.status, SolveStatus::kFeasibleBounded);
  EXPECT_EQ(r.certificate.upper_bound, r.makespan);
  EXPECT_EQ(check_packing(problem, r.placements, r.makespan), "");
}

TEST(PackSolve, ExpiredDeadlineStillAnytime) {
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 32);
  const PackProblem problem = make_pack_problem(soc, table, 32);
  PackSolverOptions options;
  options.deadline = Deadline::after_ms(0);
  const PackSolveResult r = solve_pack(problem, options);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.stop, StopReason::kDeadline);
  EXPECT_EQ(r.certificate.status, SolveStatus::kFeasibleBounded);
  EXPECT_EQ(r.certificate.lower_bound, problem.lower_bound());
  EXPECT_EQ(check_packing(problem, r.placements, r.makespan), "");

  PackExactOptions exact_options;
  exact_options.deadline = Deadline::after_ms(0);
  const PackSolveResult e = solve_pack_exact(problem, exact_options);
  ASSERT_TRUE(e.feasible);
  EXPECT_EQ(e.stop, StopReason::kDeadline);
  EXPECT_EQ(e.certificate.status, SolveStatus::kFeasibleBounded);
  EXPECT_EQ(check_packing(problem, e.placements, e.makespan), "");
}

TEST(PackSolve, CancellationStopsTheRepairLoop) {
  const Soc soc = builtin_soc3();
  const TestTimeTable table(soc, 32);
  const PackProblem problem = make_pack_problem(soc, table, 32);
  CancellationToken cancel;
  cancel.cancel();
  PackSolverOptions options;
  options.cancel = &cancel;
  const PackSolveResult r = solve_pack(problem, options);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.stop, StopReason::kCancelled);
  EXPECT_EQ(check_packing(problem, r.placements, r.makespan), "");
}

TEST(PackArchitect, RejectsLayoutAndAteConstraints) {
  const Soc soc = builtin_soc1();
  DesignRequest request;
  request.solver = InnerSolver::kPack;
  request.d_max = 4;
  EXPECT_THROW(design_architecture(soc, request), std::invalid_argument);
  request.d_max = -1;
  request.ate_depth_limit = 100000;
  EXPECT_THROW(design_architecture(soc, request), std::invalid_argument);
  request.ate_depth_limit = -1;
  request.solver = InnerSolver::kPackExact;
  request.wire_budget = 100;
  EXPECT_THROW(design_architecture(soc, request), std::invalid_argument);
}

TEST(PackArchitect, ExplicitWidthsMergeIntoOneStrip) {
  const Soc soc = builtin_soc2();
  DesignRequest request;
  request.solver = InnerSolver::kPack;
  request.bus_widths = {8, 8};
  const DesignResult result = design_architecture(soc, request);
  ASSERT_TRUE(result.feasible);
  ASSERT_EQ(result.bus_widths, std::vector<int>{16});
  ASSERT_FALSE(result.pack_placements.empty());
  const TestTimeTable table(soc, 16);
  const PackProblem problem = make_pack_problem(soc, table, 16);
  EXPECT_EQ(check_packing(problem, result.pack_placements,
                          result.assignment.makespan), "");
  EXPECT_TRUE(std::all_of(result.assignment.core_to_bus.begin(),
                          result.assignment.core_to_bus.end(),
                          [](int b) { return b == 0; }));
}

// The formulation race must be bit-identical at any thread count: both
// racers run to completion and the winner is picked deterministically.
class PackPortfolioThreads : public ::testing::TestWithParam<int> {};

TEST_P(PackPortfolioThreads, RaceIsThreadCountInvariant) {
  const Soc soc = builtin_soc2();
  DesignRequest request;
  request.solver = InnerSolver::kPortfolio;
  request.bus_widths.clear();
  request.num_buses = 2;
  request.total_width = 16;
  request.threads = GetParam();
  const DesignResult result = design_architecture(soc, request);
  ASSERT_TRUE(result.feasible);
  // Golden: the packing formulation wins soc2 at W=16 (4507 cycles beats
  // every fixed two-bus split).
  EXPECT_EQ(result.assignment.makespan, 4507);
  ASSERT_FALSE(result.pack_placements.empty());
  ASSERT_EQ(result.bus_widths, std::vector<int>{16});
  const TestTimeTable table(soc, 16);
  const PackProblem problem = make_pack_problem(soc, table, 16);
  EXPECT_EQ(check_packing(problem, result.pack_placements,
                          result.assignment.makespan), "");
  // Pin the exact placements across thread counts against the 1-thread run.
  DesignRequest serial = request;
  serial.threads = 1;
  const DesignResult reference = design_architecture(soc, serial);
  ASSERT_EQ(result.pack_placements.size(), reference.pack_placements.size());
  for (std::size_t i = 0; i < result.pack_placements.size(); ++i) {
    EXPECT_EQ(result.pack_placements[i].core,
              reference.pack_placements[i].core);
    EXPECT_EQ(result.pack_placements[i].x, reference.pack_placements[i].x);
    EXPECT_EQ(result.pack_placements[i].width,
              reference.pack_placements[i].width);
    EXPECT_EQ(result.pack_placements[i].start,
              reference.pack_placements[i].start);
    EXPECT_EQ(result.pack_placements[i].end,
              reference.pack_placements[i].end);
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, PackPortfolioThreads,
                         ::testing::Values(1, 2, 8));

TEST(PackCli, JsonReportCarriesThePackedSchedule) {
  const CliResult r = run_cli(parse_cli(
      {"--soc", "soc2", "--width", "16", "--solver", "pack", "--json"}));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("\"formulation\":\"pack\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"placements\":["), std::string::npos);
  EXPECT_NE(r.output.find("\"schedule\":{"), std::string::npos);
}

TEST(PackCli, IdleInsertionIsRejectedWithPack) {
  EXPECT_THROW(parse_cli({"--soc", "soc2", "--solver", "pack", "--pmax",
                          "2000", "--idle-insertion"}),
               std::invalid_argument);
}

}  // namespace
}  // namespace soctest
