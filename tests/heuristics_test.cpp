#include <gtest/gtest.h>

#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/heuristics.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

TEST(GreedyLpt, PerfectSplitOnEasyInstance) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{40, 40}, {40, 40}, {30, 30}, {30, 30}};
  p.allowed.assign(4, {1, 1});
  const auto r = solve_greedy_lpt(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.assignment.makespan, 70);
}

TEST(GreedyLpt, NeverClaimsOptimality) {
  TamProblem p;
  p.bus_widths = {8};
  p.time = {{10}};
  p.allowed = {{1}};
  EXPECT_FALSE(solve_greedy_lpt(p).proved_optimal);
}

TEST(GreedyLpt, RespectsForbiddenPairs) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{10, 90}, {10, 90}, {10, 90}};
  p.allowed = {{0, 1}, {0, 1}, {1, 1}};
  const auto r = solve_greedy_lpt(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.assignment.core_to_bus[0], 1);
  EXPECT_EQ(r.assignment.core_to_bus[1], 1);
  EXPECT_EQ(p.check_assignment(r.assignment.core_to_bus), "");
}

TEST(GreedyLpt, RespectsCoGroups) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time.assign(4, std::vector<Cycles>(2, 25));
  p.allowed.assign(4, std::vector<char>(2, 1));
  p.co_groups = {{0, 1}, {2, 3}};
  const auto r = solve_greedy_lpt(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.assignment.core_to_bus[0], r.assignment.core_to_bus[1]);
  EXPECT_EQ(r.assignment.core_to_bus[2], r.assignment.core_to_bus[3]);
  EXPECT_EQ(r.assignment.makespan, 50);
}

TEST(GreedyLpt, ReportsInfeasibleWhenBudgetBlown) {
  TamProblem p;
  p.bus_widths = {8};
  p.time = {{10}, {10}};
  p.allowed = {{1}, {1}};
  p.wire_cost = {{5}, {5}};
  p.wire_budget = 7;  // both cores must take the only bus: 10 > 7
  const auto r = solve_greedy_lpt(p);
  EXPECT_FALSE(r.feasible);
}

TEST(GreedyLpt, UnassignableCoreReportedInfeasible) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{10, 10}};
  p.allowed = {{0, 0}};
  EXPECT_FALSE(solve_greedy_lpt(p).feasible);
}

class HeuristicQuality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HeuristicQuality, GreedyNeverBeatsExact) {
  Rng rng(GetParam());
  testutil::RandomProblemOptions options;
  options.num_cores = 8;
  options.num_buses = 3;
  options.forbid_probability = 0.15;
  const TamProblem p = testutil::random_problem(rng, options);
  const auto exact = solve_exact(p);
  const auto greedy = solve_greedy_lpt(p);
  if (greedy.feasible) {
    ASSERT_TRUE(exact.feasible);
    EXPECT_GE(greedy.assignment.makespan, exact.assignment.makespan);
  }
}

TEST_P(HeuristicQuality, SaNeverWorseThanGreedySeed) {
  Rng rng(GetParam() + 50);
  testutil::RandomProblemOptions options;
  options.num_cores = 9;
  options.num_buses = 3;
  const TamProblem p = testutil::random_problem(rng, options);
  const auto greedy = solve_greedy_lpt(p);
  SaSolverOptions sa_options;
  sa_options.iterations = 20000;
  sa_options.seed = GetParam();
  const auto sa = solve_sa(p, sa_options);
  ASSERT_TRUE(greedy.feasible);
  ASSERT_TRUE(sa.feasible);
  EXPECT_LE(sa.assignment.makespan, greedy.assignment.makespan);
}

TEST_P(HeuristicQuality, SaNeverBeatsExact) {
  Rng rng(GetParam() + 150);
  testutil::RandomProblemOptions options;
  options.num_cores = 7;
  options.num_buses = 3;
  options.num_co_pairs = 1;
  const TamProblem p = testutil::random_problem(rng, options);
  const auto exact = solve_exact(p);
  SaSolverOptions sa_options;
  sa_options.seed = GetParam();
  const auto sa = solve_sa(p, sa_options);
  if (sa.feasible) {
    ASSERT_TRUE(exact.feasible);
    EXPECT_GE(sa.assignment.makespan, exact.assignment.makespan);
    EXPECT_EQ(p.check_assignment(sa.assignment.core_to_bus), "");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeuristicQuality,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(SaSolver, DeterministicForSeed) {
  Rng rng(42);
  testutil::RandomProblemOptions options;
  options.num_cores = 8;
  options.num_buses = 3;
  const TamProblem p = testutil::random_problem(rng, options);
  SaSolverOptions sa_options;
  sa_options.seed = 7;
  const auto a = solve_sa(p, sa_options);
  const auto b = solve_sa(p, sa_options);
  EXPECT_EQ(a.assignment.core_to_bus, b.assignment.core_to_bus);
}

TEST(SaSolver, FindsOptimumOnSmallInstances) {
  Rng rng(11);
  testutil::RandomProblemOptions options;
  options.num_cores = 5;
  options.num_buses = 2;
  int optimal_hits = 0;
  for (int trial = 0; trial < 10; ++trial) {
    const TamProblem p = testutil::random_problem(rng, options);
    const Cycles brute = testutil::brute_force_makespan(p);
    SaSolverOptions sa_options;
    sa_options.seed = static_cast<std::uint64_t>(trial);
    const auto sa = solve_sa(p, sa_options);
    ASSERT_TRUE(sa.feasible);
    if (sa.assignment.makespan == brute) ++optimal_hits;
  }
  EXPECT_GE(optimal_hits, 8);  // SA should nearly always nail 5-core instances
}

}  // namespace
}  // namespace soctest
