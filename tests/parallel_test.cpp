// Tests for the parallel solver engine: the thread pool, cancellation
// tokens, the root-splitting exact search's determinism guarantee (identical
// results at any thread count), portfolio racing, and the shared-incumbent
// plumbing of the LP branch & bound.

#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel.hpp"
#include "common/thread_pool.hpp"
#include "ilp/branch_and_bound.hpp"
#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/heuristics.hpp"
#include "tam/ilp_solver.hpp"
#include "tam/portfolio.hpp"
#include "test_util.hpp"
#include "tam/timing.hpp"

namespace soctest {
namespace {

TEST(ThreadPoolTest, RunsAllPostedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    pool.post([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_all();
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, SubmitReturnsResultsThroughFutures) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 20; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  int expected = 0;
  for (int i = 0; i < 20; ++i) expected += i * i;
  EXPECT_EQ(sum, expected);
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  auto future = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.post([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor must run every queued task before joining
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitAllIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.post([&counter] { ++counter; });
  pool.wait_all();
  EXPECT_EQ(counter.load(), 1);
  pool.post([&counter] { ++counter; });
  pool.wait_all();
  EXPECT_EQ(counter.load(), 2);
}

TEST(CancellationTokenTest, CancelAndReset) {
  CancellationToken token;
  EXPECT_FALSE(token.cancelled());
  token.cancel();
  EXPECT_TRUE(token.cancelled());
  token.reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(ParallelConfigTest, ResolveThreadCount) {
  EXPECT_EQ(resolve_thread_count(1), 1);
  EXPECT_EQ(resolve_thread_count(7), 7);
  EXPECT_GE(resolve_thread_count(0), 1);
  EXPECT_GE(default_thread_count(), 1);
}

// --- Determinism of the parallel exact solver ---------------------------

void expect_same_result(const TamSolveResult& a, const TamSolveResult& b,
                        const char* what) {
  EXPECT_EQ(a.feasible, b.feasible) << what;
  EXPECT_EQ(a.proved_optimal, b.proved_optimal) << what;
  if (a.feasible && b.feasible) {
    EXPECT_EQ(a.assignment.makespan, b.assignment.makespan) << what;
    EXPECT_EQ(a.assignment.core_to_bus, b.assignment.core_to_bus) << what;
  }
}

TamSolveResult solve_with_threads(const TamProblem& problem, int threads) {
  ExactSolverOptions options;
  options.threads = threads;
  return solve_exact(problem, options);
}

TEST(ParallelExactTest, IdenticalResultAcrossThreadCountsOnSoc1) {
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 16);
  const TamProblem problem = make_tam_problem(soc, table, {16, 8, 8});
  const TamSolveResult serial = solve_with_threads(problem, 1);
  ASSERT_TRUE(serial.feasible);
  ASSERT_TRUE(serial.proved_optimal);
  for (int threads : {2, 8}) {
    expect_same_result(serial, solve_with_threads(problem, threads),
                       "soc1 16/8/8");
  }
}

TEST(ParallelExactTest, IdenticalResultOnRandomConstrainedInstances) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 101);
    testutil::RandomProblemOptions gen;
    gen.num_cores = 12;
    gen.num_buses = 3;
    gen.forbid_probability = 0.15;
    gen.num_co_pairs = 2;
    gen.with_wire_budget = (seed % 2) == 0;
    gen.with_bus_power = (seed % 3) == 0;
    const TamProblem problem = testutil::random_problem(rng, gen);
    const TamSolveResult serial = solve_with_threads(problem, 1);
    for (int threads : {2, 8}) {
      expect_same_result(serial, solve_with_threads(problem, threads),
                         "random instance");
    }
  }
}

TEST(ParallelExactTest, ParallelMatchesBruteForceOptimum) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed * 977);
    testutil::RandomProblemOptions gen;
    gen.num_cores = 8;
    gen.num_buses = 3;
    gen.forbid_probability = 0.2;
    gen.num_co_pairs = 1;
    const TamProblem problem = testutil::random_problem(rng, gen);
    const Cycles reference = testutil::brute_force_makespan(problem);
    const TamSolveResult parallel = solve_with_threads(problem, 4);
    if (reference < 0) {
      EXPECT_FALSE(parallel.feasible);
    } else {
      ASSERT_TRUE(parallel.feasible);
      EXPECT_TRUE(parallel.proved_optimal);
      EXPECT_EQ(parallel.assignment.makespan, reference);
    }
  }
}

TEST(ParallelExactTest, LexSolveIsThreadCountInvariant) {
  Rng rng(4242);
  testutil::RandomProblemOptions gen;
  gen.num_cores = 10;
  gen.num_buses = 3;
  gen.with_wire_budget = true;
  const TamProblem problem = testutil::random_problem(rng, gen);
  ExactSolverOptions serial_options;
  const TamSolveResult serial = solve_exact_lex(problem, serial_options);
  ExactSolverOptions parallel_options;
  parallel_options.threads = 4;
  const TamSolveResult parallel = solve_exact_lex(problem, parallel_options);
  expect_same_result(serial, parallel, "lex solve");
  if (serial.feasible) {
    long long serial_wire = 0, parallel_wire = 0;
    for (std::size_t i = 0; i < problem.num_cores(); ++i) {
      serial_wire += problem.wire_cost[i][static_cast<std::size_t>(
          serial.assignment.core_to_bus[i])];
      parallel_wire += problem.wire_cost[i][static_cast<std::size_t>(
          parallel.assignment.core_to_bus[i])];
    }
    EXPECT_EQ(serial_wire, parallel_wire);
  }
}

TEST(ParallelExactTest, WarmStartDoesNotChangeTheWitness) {
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 16);
  const TamProblem problem = make_tam_problem(soc, table, {16, 8, 8});
  const TamSolveResult cold = solve_exact(problem);
  ASSERT_TRUE(cold.proved_optimal);

  const TamSolveResult greedy = solve_greedy_lpt(problem);
  ASSERT_TRUE(greedy.feasible);
  ExactSolverOptions warm;
  warm.initial_upper_bound = greedy.assignment.makespan;
  const TamSolveResult warmed = solve_exact(problem, warm);
  expect_same_result(cold, warmed, "warm start");
  EXPECT_LE(warmed.nodes, cold.nodes);
}

TEST(ParallelExactTest, NodeLimitAbortReturnsUnproved) {
  Rng rng(31337);
  testutil::RandomProblemOptions gen;
  gen.num_cores = 16;
  gen.num_buses = 4;
  const TamProblem problem = testutil::random_problem(rng, gen);
  ExactSolverOptions options;
  options.threads = 4;
  options.max_nodes = 64;
  const TamSolveResult result = solve_exact(problem, options);
  EXPECT_FALSE(result.proved_optimal);
}

TEST(ParallelExactTest, CancelledSolveUnwindsQuickly) {
  Rng rng(55);
  testutil::RandomProblemOptions gen;
  gen.num_cores = 14;
  gen.num_buses = 4;
  const TamProblem problem = testutil::random_problem(rng, gen);
  CancellationToken cancel;
  cancel.cancel();  // pre-cancelled: the search must not run to completion
  ExactSolverOptions options;
  options.threads = 4;
  options.cancel = &cancel;
  const TamSolveResult result = solve_exact(problem, options);
  EXPECT_FALSE(result.proved_optimal);
}

TEST(ParallelExactTest, ProvenInfeasibleAtAnyThreadCount) {
  // A one-core problem whose only wire cost exceeds the budget.
  TamProblem problem;
  problem.bus_widths = {8, 8};
  problem.time = {{100, 100}};
  problem.allowed = {{1, 1}};
  problem.wire_cost = {{5, 5}};
  problem.wire_budget = 4;
  const TamSolveResult serial = solve_with_threads(problem, 1);
  EXPECT_FALSE(serial.feasible);
  EXPECT_TRUE(serial.proved_optimal);
  for (int threads : {2, 8}) {
    expect_same_result(serial, solve_with_threads(problem, threads),
                       "infeasible instance");
  }
}

// --- Portfolio racing ----------------------------------------------------

TEST(PortfolioTest, MatchesColdExactAssignmentWhenProved) {
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 16);
  const TamProblem problem = make_tam_problem(soc, table, {16, 8, 8});
  const TamSolveResult cold = solve_exact(problem);
  ASSERT_TRUE(cold.proved_optimal);

  const PortfolioResult portfolio = solve_portfolio(problem);
  EXPECT_EQ(portfolio.winner, "exact");
  ASSERT_TRUE(portfolio.best.feasible);
  EXPECT_TRUE(portfolio.best.proved_optimal);
  EXPECT_EQ(portfolio.best.assignment.makespan, cold.assignment.makespan);
  EXPECT_EQ(portfolio.best.assignment.core_to_bus,
            cold.assignment.core_to_bus);
  // The greedy incumbent must actually have been fed into the warm start.
  EXPECT_GE(portfolio.heuristic_bound, cold.assignment.makespan);
}

TEST(PortfolioTest, CancelsSaOnceOptimalityIsProved) {
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 16);
  const TamProblem problem = make_tam_problem(soc, table, {16, 8, 8});
  PortfolioOptions options;
  // Big enough that SA cannot finish before the (millisecond-scale) exact
  // proof unless cancellation is broken.
  options.sa.iterations = 20'000'000;
  const PortfolioResult portfolio = solve_portfolio(problem, options);
  EXPECT_TRUE(portfolio.best.proved_optimal);
  EXPECT_TRUE(portfolio.sa_cancelled);
  EXPECT_LT(portfolio.sa_moves, options.sa.iterations);
}

TEST(PortfolioTest, FallsBackToHeuristicIncumbentWhenExactAborts) {
  Rng rng(90210);
  testutil::RandomProblemOptions gen;
  gen.num_cores = 14;
  gen.num_buses = 4;
  const TamProblem problem = testutil::random_problem(rng, gen);
  PortfolioOptions options;
  options.max_nodes = 16;  // force an exact abort
  options.sa.iterations = 2000;
  const PortfolioResult portfolio = solve_portfolio(problem, options);
  ASSERT_TRUE(portfolio.best.feasible);
  EXPECT_FALSE(portfolio.best.proved_optimal);
  // Whatever won, it can't be worse than plain greedy.
  const TamSolveResult greedy = solve_greedy_lpt(problem);
  ASSERT_TRUE(greedy.feasible);
  EXPECT_LE(portfolio.best.assignment.makespan, greedy.assignment.makespan);
}

// --- Shared incumbent / cancellation in the LP branch & bound ------------

TEST(MipParallelTest, PublishesIncumbentToSharedAtomic) {
  Rng rng(7);
  testutil::RandomProblemOptions gen;
  gen.num_cores = 6;
  gen.num_buses = 2;
  const TamProblem problem = testutil::random_problem(rng, gen);
  const LinearProgram lp = build_tam_ilp(problem);

  const MipResult cold = solve_mip(lp);
  ASSERT_EQ(cold.status, MipStatus::kOptimal);

  std::atomic<double> shared{std::numeric_limits<double>::infinity()};
  MipOptions options;
  options.shared_incumbent = &shared;
  const MipResult result = solve_mip(lp, options);
  ASSERT_EQ(result.status, MipStatus::kOptimal);
  EXPECT_NEAR(result.objective, cold.objective, 1e-6);
  EXPECT_NEAR(shared.load(), cold.objective, 1e-6);
}

TEST(MipParallelTest, SharedBoundPrunesWithoutClaimingInfeasible) {
  Rng rng(7);
  testutil::RandomProblemOptions gen;
  gen.num_cores = 6;
  gen.num_buses = 2;
  const TamProblem problem = testutil::random_problem(rng, gen);
  const LinearProgram lp = build_tam_ilp(problem);
  const MipResult cold = solve_mip(lp);
  ASSERT_EQ(cold.status, MipStatus::kOptimal);

  // A racing solver already holds the optimum: this solver can't beat it,
  // and must report a limit, not infeasibility.
  std::atomic<double> shared{cold.objective};
  MipOptions options;
  options.shared_incumbent = &shared;
  const MipResult result = solve_mip(lp, options);
  if (result.status != MipStatus::kOptimal) {
    EXPECT_EQ(result.status, MipStatus::kNodeLimit);
  }
  EXPECT_LE(result.nodes_explored, cold.nodes_explored);
}

TEST(MipParallelTest, PreCancelledSolveStopsImmediately) {
  Rng rng(7);
  testutil::RandomProblemOptions gen;
  gen.num_cores = 6;
  gen.num_buses = 2;
  const TamProblem problem = testutil::random_problem(rng, gen);
  const LinearProgram lp = build_tam_ilp(problem);
  CancellationToken cancel;
  cancel.cancel();
  MipOptions options;
  options.cancel = &cancel;
  const MipResult result = solve_mip(lp, options);
  EXPECT_EQ(result.status, MipStatus::kNodeLimit);
  EXPECT_LE(result.nodes_explored, 1);
}

// --- SA cancellation ------------------------------------------------------

TEST(SaCancellationTest, CancelledSaStopsEarly) {
  Rng rng(12);
  testutil::RandomProblemOptions gen;
  gen.num_cores = 10;
  gen.num_buses = 3;
  const TamProblem problem = testutil::random_problem(rng, gen);
  CancellationToken cancel;
  cancel.cancel();
  SaSolverOptions options;
  options.iterations = 5'000'000;
  options.cancel = &cancel;
  const TamSolveResult result = solve_sa(problem, options);
  // Pre-cancelled: returns the greedy starting point after ~0 moves.
  EXPECT_LT(result.nodes, 1000);
  EXPECT_TRUE(result.feasible);
}

// --- Cached test-time tables ---------------------------------------------

TEST(CachedTableTest, ReturnsSameInstanceForSameKey) {
  const Soc soc = builtin_soc1();
  const TestTimeTable& a = cached_test_time_table(soc, 16);
  const TestTimeTable& b = cached_test_time_table(soc, 16);
  EXPECT_EQ(&a, &b);
  const TestTimeTable& c = cached_test_time_table(soc, 24);
  EXPECT_NE(&a, &c);
  // Cached contents must match a freshly built table.
  const TestTimeTable fresh(soc, 16);
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    for (int w = 1; w <= 16; ++w) {
      EXPECT_EQ(a.time(i, w), fresh.time(i, w));
    }
  }
}

TEST(CachedTableTest, ThreadSafeUnderConcurrentLookup) {
  const Soc soc = builtin_soc2();
  std::vector<const TestTimeTable*> seen(16, nullptr);
  {
    ThreadPool pool(8);
    for (std::size_t t = 0; t < seen.size(); ++t) {
      pool.post([&soc, &seen, t] {
        seen[t] = &cached_test_time_table(soc, 12);
      });
    }
    pool.wait_all();
  }
  for (const TestTimeTable* table : seen) {
    ASSERT_NE(table, nullptr);
    EXPECT_EQ(table, seen[0]);
  }
}

}  // namespace
}  // namespace soctest
