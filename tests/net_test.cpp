#include <gtest/gtest.h>

#include <csignal>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/net.hpp"

namespace soctest {
namespace {

// Error paths of the shared networking layer (src/common/net.cpp): every
// fleet component — server transport, front door, chaos proxy, retrying
// client — leans on these primitives to fail cleanly instead of crashing
// or leaking, so the failure behavior is contract, not accident.

// ------------------------------------------------------------ endpoints --

TEST(NetEndpoint, ParsesTcpAndUnixForms) {
  const auto tcp = net::parse_endpoint("127.0.0.1:8347");
  ASSERT_TRUE(tcp.ok()) << tcp.status().to_string();
  EXPECT_TRUE(tcp.value().tcp);
  EXPECT_EQ(tcp.value().host, "127.0.0.1");
  EXPECT_EQ(tcp.value().port, 8347);

  const auto unix_ep = net::parse_endpoint("/tmp/soctest-test.sock");
  ASSERT_TRUE(unix_ep.ok()) << unix_ep.status().to_string();
  EXPECT_FALSE(unix_ep.value().tcp);
  EXPECT_EQ(unix_ep.value().path, "/tmp/soctest-test.sock");
}

TEST(NetEndpoint, EndpointNameReportsTheBoundPort) {
  const auto tcp = net::parse_endpoint("127.0.0.1:0");
  ASSERT_TRUE(tcp.ok());
  // A listener bound to port 0 reports the kernel-assigned port through
  // the override; without it the parsed (placeholder) port is kept.
  EXPECT_EQ(net::endpoint_name(tcp.value(), 41234), "127.0.0.1:41234");
  EXPECT_EQ(net::endpoint_name(tcp.value()), "127.0.0.1:0");
}

// -------------------------------------------------------------- connect --

TEST(NetConnect, RefusedConnectionFailsFastWithAStatus) {
  // Bind an ephemeral port, then close the listener: connecting to that
  // port is now deterministically refused (nothing else can have grabbed
  // it between close and connect in practice, and even then we only
  // require *an* outcome, never a hang).
  const auto ep = net::parse_endpoint("127.0.0.1:0");
  ASSERT_TRUE(ep.ok());
  int port = 0;
  const auto listener = net::listen_endpoint(ep.value(), &port);
  ASSERT_TRUE(listener.ok()) << listener.status().to_string();
  ASSERT_GT(port, 0);
  ::close(listener.value());

  auto target = ep.value();
  target.port = port;
  const auto fd = net::connect_endpoint(target);
  EXPECT_FALSE(fd.ok()) << "connect to a closed port must fail fast";
}

TEST(NetConnect, MissingUnixSocketFailsFast) {
  const auto ep = net::parse_endpoint("/nonexistent/soctest-no-such.sock");
  ASSERT_TRUE(ep.ok());
  const auto fd = net::connect_endpoint(ep.value());
  EXPECT_FALSE(fd.ok());
}

// ------------------------------------------------------------- write_all --

TEST(NetWriteAll, ReportsPeerGoneInsteadOfRaisingSigpipe) {
  ::signal(SIGPIPE, SIG_IGN);
  int sv[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ::close(sv[1]);  // peer gone
  const std::string line(4096, 'x');
  EXPECT_FALSE(net::write_all(sv[0], line.data(), line.size()));
  ::close(sv[0]);
}

TEST(NetWriteAll, CompletesShortWritesOnANonblockingSocket) {
  // A nonblocking socket with a slow reader forces EAGAIN mid-buffer;
  // write_all must poll for POLLOUT and finish the write rather than
  // letting a short write escape (satellite: short-write audit).
  int sv[2] = {-1, -1};
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  ASSERT_TRUE(net::set_nonblocking(sv[0]).ok());

  const std::string payload(4u << 20, 'y');  // beats any socket buffer
  std::string received;
  std::thread reader([&] {
    char chunk[65536];
    ssize_t n;
    while ((n = ::read(sv[1], chunk, sizeof(chunk))) > 0) {
      received.append(chunk, static_cast<std::size_t>(n));
    }
  });
  EXPECT_TRUE(net::write_all(sv[0], payload.data(), payload.size()));
  ::shutdown(sv[0], SHUT_WR);
  reader.join();
  EXPECT_EQ(received.size(), payload.size());
  EXPECT_EQ(received, payload);
  ::close(sv[0]);
  ::close(sv[1]);
}

// ----------------------------------------------------------------- spawn --

TEST(NetSpawn, MissingBinaryExitsWithCommandNotFound) {
  const auto pid = net::spawn_process({"/nonexistent/soctest-no-such-bin"});
  ASSERT_TRUE(pid.ok()) << pid.status().to_string();  // fork itself succeeds
  int status = 0;
  ASSERT_EQ(::waitpid(pid.value(), &status, 0), pid.value());
  ASSERT_TRUE(WIFEXITED(status));
  // 127 is the shell convention for "command not found"; the front door
  // relies on it to fail start() fast instead of respawning forever.
  EXPECT_EQ(WEXITSTATUS(status), 127);
}

TEST(NetSpawn, EmptyArgvIsRejected) {
  const auto pid = net::spawn_process({});
  EXPECT_FALSE(pid.ok());
}

TEST(NetSpawn, ChildInheritsNoFdsPastTheStandardStreams) {
  // A leaked accepted-connection fd in a worker keeps the peer's read()
  // blocked after the parent closes its copy — spawn_process close_range()s
  // everything past stderr. Observable from the child: our pipe fd must
  // not exist in its /proc/self/fd.
  int pipe_fds[2] = {-1, -1};
  ASSERT_EQ(::pipe(pipe_fds), 0);
  const std::string probe =
      "test ! -e /proc/self/fd/" + std::to_string(pipe_fds[0]);
  const auto pid = net::spawn_process({"/bin/sh", "-c", probe});
  ASSERT_TRUE(pid.ok()) << pid.status().to_string();
  int status = 0;
  ASSERT_EQ(::waitpid(pid.value(), &status, 0), pid.value());
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0)
      << "fd " << pipe_fds[0] << " leaked into the spawned child";
  ::close(pipe_fds[0]);
  ::close(pipe_fds[1]);
}

TEST(NetSpawn, TryReapIsNonblockingAndTerminateWaits) {
  const auto pid = net::spawn_process({"/bin/sleep", "30"});
  ASSERT_TRUE(pid.ok()) << pid.status().to_string();
  int status = 0;
  EXPECT_FALSE(net::try_reap(pid.value(), &status))
      << "try_reap must not block on a live child";
  const int raw = net::terminate_and_wait(pid.value());
  EXPECT_TRUE(WIFSIGNALED(raw));
  EXPECT_EQ(WTERMSIG(raw), SIGTERM);
}

}  // namespace
}  // namespace soctest
