#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "common/net.hpp"
#include "report/json.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "service/transport.hpp"

namespace soctest {
namespace {

// Robustness contract of the poll-multiplexed TCP transport
// (docs/robustness.md): transport-level pings, the oversized-line cap with
// stream resync, idle-connection reaping, and whole-line writes that never
// interleave even when the kernel forces short writes.

/// SolveService + serve_tcp on its own thread; stops via the per-server
/// stop flag (never the process-wide shutdown latch, which would poison
/// later tests).
struct RunningTcp {
  explicit RunningTcp(const ServiceConfig& config) : service(config) {
    thread = std::thread(
        [this] { exit_code = serve_tcp(service, "127.0.0.1:0", &port, &stop); });
    for (int i = 0; i < 500 && port.load() == 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    EXPECT_GT(port.load(), 0) << "serve_tcp never published its port";
  }
  ~RunningTcp() {
    stop.store(true);
    if (thread.joinable()) thread.join();
    EXPECT_EQ(exit_code, 0) << "transport did not drain cleanly";
  }
  std::string endpoint() const {
    return "127.0.0.1:" + std::to_string(port.load());
  }

  SolveService service;
  std::atomic<int> port{0};
  std::atomic<bool> stop{false};
  std::thread thread;
  int exit_code = -1;
};

/// Blocking raw connection with line-at-a-time reads — deliberately NOT
/// the retrying client, so these tests observe the server's exact bytes.
struct RawConn {
  explicit RawConn(const std::string& endpoint, int rcvbuf = 0) {
    open(endpoint, rcvbuf);
    EXPECT_GE(fd, 0) << "could not connect to " << endpoint;
  }
  void open(const std::string& endpoint, int rcvbuf) {
    const auto parsed = net::parse_endpoint(endpoint);
    ASSERT_TRUE(parsed.ok());
    if (rcvbuf > 0) {
      // SO_RCVBUF must be set before connect to shrink the advertised
      // TCP window — that is what forces the server into short writes.
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      ASSERT_GE(fd, 0);
      ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf));
      sockaddr_in addr;
      std::memset(&addr, 0, sizeof(addr));
      addr.sin_family = AF_INET;
      addr.sin_port = htons(static_cast<std::uint16_t>(parsed.value().port));
      ASSERT_EQ(::inet_pton(AF_INET, parsed.value().host.c_str(),
                            &addr.sin_addr), 1);
      ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                          sizeof(addr)), 0)
          << std::strerror(errno);
    } else {
      const auto connected = net::connect_endpoint(parsed.value());
      ASSERT_TRUE(connected.ok()) << connected.status().to_string();
      fd = connected.value();
    }
  }
  ~RawConn() {
    if (fd >= 0) ::close(fd);
  }

  bool send_line(const std::string& line) {
    const std::string wire = line + "\n";
    return net::write_all(fd, wire.data(), wire.size());
  }

  /// Next line, or empty on EOF/timeout.
  std::string read_line(int timeout_ms = 10000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (true) {
      const auto nl = inbuf.find('\n');
      if (nl != std::string::npos) {
        std::string line = inbuf.substr(0, nl);
        inbuf.erase(0, nl + 1);
        return line;
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
      if (left <= 0) return std::string();
      pollfd pfd{fd, POLLIN, 0};
      if (::poll(&pfd, 1, static_cast<int>(left)) <= 0) return std::string();
      char chunk[65536];
      const ssize_t n = ::read(fd, chunk, sizeof(chunk));
      if (n <= 0) return std::string();
      inbuf.append(chunk, static_cast<std::size_t>(n));
    }
  }

  int fd = -1;
  std::string inbuf;
};

std::string greedy_req(const std::string& id) {
  return "{\"schema\":\"soctest-req-v1\",\"id\":\"" + id +
         "\",\"soc\":\"soc1\",\"solver\":\"greedy\"}";
}

// ------------------------------------------------------------ ping/pong --

TEST(TransportPing, AnsweredByThePollLoopWithoutQueueing) {
  ServiceConfig config;
  config.serial = true;
  RunningTcp server(config);

  RawConn conn(server.endpoint());
  ASSERT_TRUE(conn.send_line(ping_json("liveness-1")));
  const std::string reply = conn.read_line();
  std::string id;
  ASSERT_TRUE(parse_pong(reply, &id)) << reply;
  EXPECT_EQ(id, "liveness-1");

  // Pings are transport traffic, not requests: the service never sees
  // them, so a ping can answer even when every solver thread is wedged.
  EXPECT_EQ(server.service.stats().received, 0);
}

TEST(TransportPing, InterleavesWithRealRequests) {
  ServiceConfig config;
  config.serial = true;
  RunningTcp server(config);

  RawConn conn(server.endpoint());
  ASSERT_TRUE(conn.send_line(greedy_req("r1")));
  ASSERT_TRUE(conn.send_line(ping_json("hb")));
  ASSERT_TRUE(conn.send_line(greedy_req("r2")));

  std::vector<std::string> lines;
  for (int i = 0; i < 3; ++i) lines.push_back(conn.read_line());
  std::string id;
  int pongs = 0, finals = 0;
  for (const auto& line : lines) {
    if (parse_pong(line, &id)) {
      ++pongs;
      EXPECT_EQ(id, "hb");
    } else if (line.find("\"schema\":\"soctest-resp-v1\"") !=
               std::string::npos) {
      ++finals;
    }
  }
  EXPECT_EQ(pongs, 1);
  EXPECT_EQ(finals, 2);
}

// -------------------------------------------------------- oversized cap --

TEST(TransportCap, OversizedLineGetsOneStructuredErrorAndStreamResyncs) {
  ServiceConfig config;
  config.serial = true;
  RunningTcp server(config);

  // One line just past the cap, then a valid request on the same
  // connection: the reader must answer the oversized line with the
  // canonical structured error, discard to the newline, and then process
  // the valid request as if nothing happened.
  std::string big(kMaxProtocolLineBytes + 1, 'x');
  const auto responses =
      client_roundtrip(server.endpoint(), {big, greedy_req("after-big")});
  ASSERT_TRUE(responses.ok()) << responses.status().to_string();
  ASSERT_EQ(responses.value().size(), 2u);
  EXPECT_EQ(responses.value()[0], oversized_line_response_json());
  EXPECT_NE(responses.value()[1].find("\"id\":\"after-big\""),
            std::string::npos);
  EXPECT_NE(responses.value()[1].find("\"ok\":true"), std::string::npos);
}

// ------------------------------------------------------------ idle reap --

TEST(TransportIdle, SilentConnectionIsReapedAfterTheDeadline) {
  ServiceConfig config;
  config.serial = true;
  config.idle_timeout_ms = 200.0;
  RunningTcp server(config);

  RawConn conn(server.endpoint());
  // Send nothing. The server must close us (read EOF) once we sit silent
  // past the deadline — a half-open peer cannot hold a slot forever.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(conn.read_line(10000), "");
  const double waited_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
  EXPECT_LT(waited_ms, 8000.0) << "idle connection was never reaped";
}

TEST(TransportIdle, ActiveConnectionOutlivesTheDeadline) {
  ServiceConfig config;
  config.serial = true;
  config.idle_timeout_ms = 400.0;
  RunningTcp server(config);

  RawConn conn(server.endpoint());
  // Keep trickling pings slower than the deadline would allow if activity
  // did not reset it; every ping must still be answered.
  for (int i = 0; i < 5; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ASSERT_TRUE(conn.send_line(ping_json("keep-" + std::to_string(i))));
    std::string id;
    ASSERT_TRUE(parse_pong(conn.read_line(), &id)) << "reaped while active";
  }
}

// -------------------------------------------------- short-write handling --

TEST(TransportShortWrites, LinesNeverInterleaveThroughATinyWindow) {
  ServiceConfig config;
  config.serial = true;
  RunningTcp server(config);

  // A tiny receive window plus a deliberately unread flood of large pong
  // responses forces the server's nonblocking flush into short writes and
  // EAGAIN; partially-written lines must buffer and resume — a reader
  // must never observe a line torn or spliced into another.
  constexpr int kPings = 300;
  const std::string filler(8192, 'k');
  RawConn conn(server.endpoint(), /*rcvbuf=*/4096);
  for (int i = 0; i < kPings; ++i) {
    ASSERT_TRUE(conn.send_line(ping_json("big-" + std::to_string(i) + "-" +
                                         filler)));
  }
  // Only now start reading: everything queued behind the stalled window.
  for (int i = 0; i < kPings; ++i) {
    const std::string line = conn.read_line(20000);
    std::string id;
    ASSERT_TRUE(parse_pong(line, &id))
        << "response " << i << " corrupt (torn write?): "
        << line.substr(0, 120);
    EXPECT_EQ(id, "big-" + std::to_string(i) + "-" + filler)
        << "response " << i << " out of order or truncated";
  }
}

// ------------------------------------------------------------- draining --

TEST(TransportDrain, StopAnswersEverythingSubmittedThenCloses) {
  ServiceConfig config;
  config.serial = true;
  RunningTcp server(config);
  {
    RawConn conn(server.endpoint());
    ASSERT_TRUE(conn.send_line(greedy_req("drain-1")));
    const std::string line = conn.read_line();
    EXPECT_NE(line.find("\"id\":\"drain-1\""), std::string::npos) << line;
  }
  // Destructor flips the stop flag and asserts exit code 0: the drain
  // completed with no connections left behind.
}

}  // namespace
}  // namespace soctest
