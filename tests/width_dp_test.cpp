// Tests for the DP width allocator and the alternating co-optimization
// heuristic.

#include <gtest/gtest.h>

#include "soc/builtin.hpp"
#include "tam/width_dp.hpp"
#include "tam/width_partition.hpp"

namespace soctest {
namespace {

/// Brute-force reference: enumerate all width partitions (ordered, since
/// the assignment fixes which bus is which) and take the best makespan.
WidthAllocation brute_force_widths(const TestTimeTable& table,
                                   const std::vector<int>& core_to_bus,
                                   int num_buses, int total_width,
                                   Cycles depth = -1) {
  WidthAllocation best;
  std::vector<int> widths(static_cast<std::size_t>(num_buses), 1);
  auto evaluate = [&](const std::vector<int>& w) {
    Cycles makespan = 0;
    std::vector<Cycles> load(static_cast<std::size_t>(num_buses), 0);
    for (std::size_t i = 0; i < core_to_bus.size(); ++i) {
      const auto j = static_cast<std::size_t>(core_to_bus[i]);
      load[j] += table.time(i, w[j]);
    }
    for (Cycles l : load) {
      if (depth >= 0 && l > depth) return static_cast<Cycles>(-1);
      makespan = std::max(makespan, l);
    }
    return makespan;
  };
  // Odometer over widths summing to total_width.
  std::function<void(std::size_t, int)> recurse = [&](std::size_t j, int left) {
    if (j + 1 == widths.size()) {
      if (left < 1 || left > table.max_width()) return;
      widths[j] = left;
      const Cycles m = evaluate(widths);
      if (m >= 0 && (!best.feasible || m < best.makespan)) {
        best.feasible = true;
        best.makespan = m;
        best.bus_widths = widths;
      }
      return;
    }
    for (int w = 1; w <= std::min(left - static_cast<int>(widths.size() - j - 1),
                                  table.max_width());
         ++w) {
      widths[j] = w;
      recurse(j + 1, left - w);
    }
  };
  recurse(0, total_width);
  return best;
}

TEST(WidthDp, RejectsBadArguments) {
  const Soc soc = builtin_soc2();
  const TestTimeTable table(soc, 8);
  EXPECT_THROW(allocate_widths_dp(table, {0}, 0, 4), std::invalid_argument);
  EXPECT_THROW(allocate_widths_dp(table, {0}, 2, 1), std::invalid_argument);
  EXPECT_THROW(allocate_widths_dp(table, {5}, 2, 8), std::invalid_argument);
  EXPECT_THROW(allocate_widths_dp(table, {0}, 1, 40), std::invalid_argument);
}

TEST(WidthDp, SingleBusGetsEverything) {
  const Soc soc = builtin_soc2();
  const TestTimeTable table(soc, 16);
  std::vector<int> assignment(soc.num_cores(), 0);
  const auto r = allocate_widths_dp(table, assignment, 1, 16);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.bus_widths, (std::vector<int>{16}));
  EXPECT_EQ(r.makespan, table.total_time(16));
}

TEST(WidthDp, MatchesBruteForce) {
  const Soc soc = builtin_soc2();
  const TestTimeTable table(soc, 14);
  // Several assignments, several totals.
  const std::vector<std::vector<int>> assignments{
      {0, 1, 0, 1, 0, 1}, {0, 0, 0, 1, 1, 1}, {1, 0, 1, 0, 0, 0}};
  for (const auto& assignment : assignments) {
    for (int total : {6, 10, 14}) {
      const auto dp = allocate_widths_dp(table, assignment, 2, total);
      const auto brute = brute_force_widths(table, assignment, 2, total);
      ASSERT_EQ(dp.feasible, brute.feasible);
      EXPECT_EQ(dp.makespan, brute.makespan)
          << "total " << total;
      int sum = 0;
      for (int w : dp.bus_widths) {
        EXPECT_GE(w, 1);
        sum += w;
      }
      EXPECT_EQ(sum, total);
    }
  }
}

TEST(WidthDp, MatchesBruteForceThreeBuses) {
  const Soc soc = builtin_soc2();
  const TestTimeTable table(soc, 10);
  const std::vector<int> assignment{0, 1, 2, 0, 1, 2};
  for (int total : {6, 9, 12}) {
    const auto dp = allocate_widths_dp(table, assignment, 3, total);
    const auto brute = brute_force_widths(table, assignment, 3, total);
    ASSERT_EQ(dp.feasible, brute.feasible) << total;
    if (brute.feasible) EXPECT_EQ(dp.makespan, brute.makespan) << total;
  }
}

TEST(WidthDp, DepthLimitRendersInfeasible) {
  const Soc soc = builtin_soc2();
  const TestTimeTable table(soc, 8);
  const std::vector<int> assignment(soc.num_cores(), 0);  // all on bus 0
  const auto free_alloc = allocate_widths_dp(table, assignment, 1, 8);
  ASSERT_TRUE(free_alloc.feasible);
  const auto capped = allocate_widths_dp(table, assignment, 1, 8,
                                         free_alloc.makespan - 1);
  EXPECT_FALSE(capped.feasible);
  const auto slack = allocate_widths_dp(table, assignment, 1, 8,
                                        free_alloc.makespan);
  EXPECT_TRUE(slack.feasible);
}

TEST(Alternating, NeverBeatsExhaustiveSearch) {
  const Soc soc = builtin_soc2();
  for (int total : {12, 16, 24}) {
    const TestTimeTable table(soc, total - 1);
    const auto exhaustive = optimize_widths(soc, table, 2, total);
    const auto alternating = optimize_alternating(soc, table, 2, total);
    ASSERT_TRUE(exhaustive.feasible && alternating.feasible) << total;
    EXPECT_GE(alternating.assignment.makespan, exhaustive.assignment.makespan);
    // ...and should land close (within 10%) on these instances.
    EXPECT_LE(static_cast<double>(alternating.assignment.makespan),
              1.10 * static_cast<double>(exhaustive.assignment.makespan))
        << total;
  }
}

TEST(Alternating, ImprovesOnEqualSplitSeed) {
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 47);
  const auto alternating = optimize_alternating(soc, table, 2, 48);
  ASSERT_TRUE(alternating.feasible);
  // Compare to solving the assignment at the fixed equal split.
  const TamProblem equal = make_tam_problem(soc, table, {24, 24});
  const auto equal_solved = solve_exact(equal);
  ASSERT_TRUE(equal_solved.feasible);
  EXPECT_LE(alternating.assignment.makespan, equal_solved.assignment.makespan);
}

TEST(Alternating, GreedyInnerModeWorks) {
  const Soc soc = builtin_soc3();
  const TestTimeTable table(soc, 61);
  AlternatingOptions options;
  options.exact_assignment = false;
  const auto r = optimize_alternating(soc, table, 4, 64, options);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.bus_widths.size(), 4u);
  int sum = 0;
  for (int w : r.bus_widths) sum += w;
  EXPECT_EQ(sum, 64);
  EXPECT_FALSE(r.proved_optimal);
}

}  // namespace
}  // namespace soctest
