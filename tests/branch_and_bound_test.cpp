#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "ilp/branch_and_bound.hpp"

namespace soctest {
namespace {

TEST(BranchAndBound, PureLpPassesThrough) {
  LinearProgram lp;
  const int x = lp.add_variable("x", 0, 4, VarKind::kContinuous, -1.0);
  lp.add_row("r", {{x, 2.0}}, RowSense::kLe, 5.0);
  const auto r = solve_mip(lp);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -2.5, 1e-7);
}

TEST(BranchAndBound, SimpleIntegerRounding) {
  // min -x, x integer, 2x <= 5 -> x = 2 (LP gives 2.5).
  LinearProgram lp;
  const int x = lp.add_variable("x", 0, 10, VarKind::kInteger, -1.0);
  lp.add_row("r", {{x, 2.0}}, RowSense::kLe, 5.0);
  const auto r = solve_mip(lp);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -2.0, 1e-7);
  EXPECT_NEAR(r.x[0], 2.0, 1e-6);
}

TEST(BranchAndBound, KnapsackHandComputed) {
  // max 10a + 13b + 7c, 3a + 4b + 2c <= 6, binary. Optimum: b + c = 20.
  LinearProgram lp;
  const int a = lp.add_binary("a", -10.0);
  const int b = lp.add_binary("b", -13.0);
  const int c = lp.add_binary("c", -7.0);
  lp.add_row("cap", {{a, 3.0}, {b, 4.0}, {c, 2.0}}, RowSense::kLe, 6.0);
  const auto r = solve_mip(lp);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -20.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(b)], 1.0, 1e-6);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(c)], 1.0, 1e-6);
}

TEST(BranchAndBound, InfeasibleIntegerProgram) {
  // 2x = 3 has no integer solution even though the LP is feasible.
  LinearProgram lp;
  const int x = lp.add_variable("x", 0, 10, VarKind::kInteger, 1.0);
  lp.add_row("r", {{x, 2.0}}, RowSense::kEq, 3.0);
  EXPECT_EQ(solve_mip(lp).status, MipStatus::kInfeasible);
}

TEST(BranchAndBound, InfeasibleLpReported) {
  LinearProgram lp;
  const int x = lp.add_binary("x", 1.0);
  lp.add_row("r", {{x, 1.0}}, RowSense::kGe, 2.0);
  EXPECT_EQ(solve_mip(lp).status, MipStatus::kInfeasible);
}

TEST(BranchAndBound, EqualityPartitionProblem) {
  // Pick exactly 2 of 4 items minimizing cost.
  LinearProgram lp;
  const double costs[4] = {5, 2, 8, 3};
  std::vector<std::pair<int, double>> sum;
  for (int i = 0; i < 4; ++i) {
    sum.emplace_back(lp.add_binary("x" + std::to_string(i), costs[i]), 1.0);
  }
  lp.add_row("pick2", std::move(sum), RowSense::kEq, 2.0);
  const auto r = solve_mip(lp);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-6);  // items 1 and 3
}

TEST(BranchAndBound, RespectsFixedVariables) {
  LinearProgram lp;
  const int a = lp.add_binary("a", -5.0);
  const int b = lp.add_binary("b", -3.0);
  lp.set_bounds(a, 0.0, 0.0);  // forbid a
  lp.add_row("one", {{a, 1.0}, {b, 1.0}}, RowSense::kLe, 1.0);
  const auto r = solve_mip(lp);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(a)], 0.0, 1e-9);
  EXPECT_NEAR(r.objective, -3.0, 1e-6);
}

TEST(BranchAndBound, MixedIntegerContinuous) {
  // min y s.t. y >= 1.5 x, x binary forced to 1 -> y = 1.5.
  LinearProgram lp;
  const int x = lp.add_binary("x");
  const int y = lp.add_variable("y", 0, kInf, VarKind::kContinuous, 1.0);
  lp.add_row("force", {{x, 1.0}}, RowSense::kEq, 1.0);
  lp.add_row("link", {{y, 1.0}, {x, -1.5}}, RowSense::kGe, 0.0);
  const auto r = solve_mip(lp);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, 1.5, 1e-6);
}

TEST(BranchAndBound, RootRoundingDoesNotChangeTheOptimum) {
  Rng rng(55);
  for (int trial = 0; trial < 10; ++trial) {
    LinearProgram lp;
    const int n = 6;
    for (int i = 0; i < n; ++i) {
      lp.add_binary("x" + std::to_string(i),
                    std::round(rng.uniform(-9.0, 9.0)));
    }
    std::vector<std::pair<int, double>> coeffs;
    for (int i = 0; i < n; ++i) coeffs.emplace_back(i, std::round(rng.uniform(1.0, 5.0)));
    lp.add_row("cap", std::move(coeffs), RowSense::kLe, 9.0);
    MipOptions with;
    MipOptions without;
    without.root_rounding = false;
    const auto a = solve_mip(lp, with);
    const auto b = solve_mip(lp, without);
    ASSERT_EQ(a.status, b.status);
    if (a.status == MipStatus::kOptimal) {
      EXPECT_NEAR(a.objective, b.objective, 1e-6) << "trial " << trial;
    }
  }
}

TEST(BranchAndBound, RootRoundingGivesImmediateIncumbentWhenLpIntegral) {
  // Totally unimodular-ish instance whose LP optimum is already integral:
  // rounding completes in one extra node and the search ends at once.
  LinearProgram lp;
  const int a = lp.add_binary("a", -3.0);
  const int b = lp.add_binary("b", -2.0);
  lp.add_row("one", {{a, 1.0}}, RowSense::kLe, 1.0);
  lp.add_row("two", {{b, 1.0}}, RowSense::kLe, 1.0);
  MipOptions options;
  options.root_rounding = true;
  const auto r = solve_mip(lp, options);
  ASSERT_EQ(r.status, MipStatus::kOptimal);
  EXPECT_NEAR(r.objective, -5.0, 1e-9);
  EXPECT_LE(r.nodes_explored, 3);
}

/// Exhaustive cross-check on random binary programs with up to 2^10 points.
class BnbRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BnbRandom, MatchesExhaustiveEnumeration) {
  Rng rng(GetParam());
  const int n = 8;
  LinearProgram lp;
  std::vector<double> obj;
  for (int i = 0; i < n; ++i) {
    obj.push_back(std::round(rng.uniform(-10.0, 10.0)));
    lp.add_binary("x" + std::to_string(i), obj.back());
  }
  const int rows = 3;
  std::vector<std::vector<double>> a(rows, std::vector<double>(n));
  std::vector<double> rhs(rows);
  for (int r = 0; r < rows; ++r) {
    std::vector<std::pair<int, double>> coeffs;
    for (int i = 0; i < n; ++i) {
      a[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)] =
          std::round(rng.uniform(-3.0, 5.0));
      coeffs.emplace_back(i, a[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)]);
    }
    rhs[static_cast<std::size_t>(r)] = std::round(rng.uniform(2.0, 12.0));
    lp.add_row("r" + std::to_string(r), std::move(coeffs), RowSense::kLe,
               rhs[static_cast<std::size_t>(r)]);
  }
  // Exhaustive reference.
  double best = 1e18;
  bool feasible = false;
  for (int mask = 0; mask < (1 << n); ++mask) {
    bool ok = true;
    for (int r = 0; r < rows && ok; ++r) {
      double lhs = 0;
      for (int i = 0; i < n; ++i) {
        if (mask & (1 << i)) lhs += a[static_cast<std::size_t>(r)][static_cast<std::size_t>(i)];
      }
      ok = lhs <= rhs[static_cast<std::size_t>(r)] + 1e-9;
    }
    if (!ok) continue;
    feasible = true;
    double value = 0;
    for (int i = 0; i < n; ++i) {
      if (mask & (1 << i)) value += obj[static_cast<std::size_t>(i)];
    }
    best = std::min(best, value);
  }
  const auto result = solve_mip(lp);
  if (!feasible) {
    EXPECT_EQ(result.status, MipStatus::kInfeasible);
  } else {
    ASSERT_EQ(result.status, MipStatus::kOptimal) << lp.to_string();
    EXPECT_NEAR(result.objective, best, 1e-5);
    EXPECT_TRUE(lp.is_feasible(result.x, 1e-6));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbRandom, ::testing::Range<std::uint64_t>(0, 30));

}  // namespace
}  // namespace soctest
