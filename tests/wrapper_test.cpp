#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.hpp"

#include "soc/builtin.hpp"
#include "wrapper/wrapper.hpp"

namespace soctest {
namespace {

Core combinational_core(int inputs, int outputs, int patterns) {
  Core c;
  c.name = "comb";
  c.num_inputs = inputs;
  c.num_outputs = outputs;
  c.num_patterns = patterns;
  c.test_power_mw = 1;
  return c;
}

TEST(Wrapper, RejectsZeroWidth) {
  EXPECT_THROW(design_wrapper(combinational_core(4, 4, 1), 0),
               std::invalid_argument);
}

TEST(Wrapper, ChainCountEqualsWidth) {
  const auto design = design_wrapper(combinational_core(10, 10, 1), 4);
  EXPECT_EQ(design.tam_width, 4);
  EXPECT_EQ(design.chains.size(), 4u);
}

TEST(Wrapper, CellConservation) {
  Core c = combinational_core(13, 9, 1);
  c.num_bidirs = 2;
  c.scan_chain_lengths = {6, 7, 8};
  const auto design = design_wrapper(c, 5);
  int in_cells = 0, out_cells = 0, flops = 0;
  std::vector<int> chain_seen(c.scan_chain_lengths.size(), 0);
  for (const auto& chain : design.chains) {
    in_cells += chain.input_cells;
    out_cells += chain.output_cells;
    flops += chain.internal_flops;
    for (int idx : chain.internal_chains) ++chain_seen[static_cast<std::size_t>(idx)];
  }
  EXPECT_EQ(in_cells, 13 + 2);
  EXPECT_EQ(out_cells, 9 + 2);
  EXPECT_EQ(flops, 21);
  for (int seen : chain_seen) EXPECT_EQ(seen, 1);  // each internal chain used once
}

TEST(Wrapper, WidthOneSerializesEverything) {
  Core c = combinational_core(5, 3, 10);
  c.scan_chain_lengths = {4};
  const auto design = design_wrapper(c, 1);
  EXPECT_EQ(design.max_scan_in(), 4 + 5);
  EXPECT_EQ(design.max_scan_out(), 4 + 3);
  // t = p*(1+max(si,so)) + min(si,so) = 10*(1+9)+7
  EXPECT_EQ(wrapper_test_time(c, design), 10 * 10 + 7);
}

TEST(Wrapper, CombinationalHandComputed) {
  // 6 inputs, 4 outputs, w=2 -> si = 3, so = 2; p = 5.
  const Core c = combinational_core(6, 4, 5);
  const auto design = design_wrapper(c, 2);
  EXPECT_EQ(design.max_scan_in(), 3);
  EXPECT_EQ(design.max_scan_out(), 2);
  EXPECT_EQ(wrapper_test_time(c, design), 5 * (1 + 3) + 2);
}

TEST(Wrapper, BalancedPartitionOfEqualChains) {
  Core c = combinational_core(0, 0, 1);
  c.num_inputs = 1;  // keep the core valid
  c.scan_chain_lengths = {10, 10, 10, 10};
  const auto design = design_wrapper(c, 2);
  EXPECT_EQ(design.max_scan_in(), 21);  // 20 flops + the single input cell
  for (const auto& chain : design.chains) EXPECT_EQ(chain.internal_flops, 20);
}

TEST(Wrapper, LowerBoundOnScanIn) {
  // max scan-in can never be below ceil(total elements / w).
  Core c = combinational_core(17, 3, 1);
  c.scan_chain_lengths = {9, 4, 4, 11};
  for (int w = 1; w <= 8; ++w) {
    const auto design = design_wrapper(c, w);
    const int total_in = c.scan_in_elements();
    EXPECT_GE(design.max_scan_in(), (total_in + w - 1) / w);
  }
}

TEST(Wrapper, UnbreakableChainDominatesNarrowPartitions) {
  Core c = combinational_core(1, 1, 1);
  c.scan_chain_lengths = {100, 2, 2};
  for (int w = 2; w <= 6; ++w) {
    EXPECT_GE(design_wrapper(c, w).max_scan_in(), 100);
  }
}

TEST(Wrapper, WidthBeyondElementsSaturates) {
  const Core c = combinational_core(3, 2, 7);
  const auto narrow = design_wrapper(c, 3);
  const auto wide = design_wrapper(c, 50);
  EXPECT_EQ(wrapper_test_time(c, narrow), wrapper_test_time(c, wide));
  EXPECT_EQ(wide.max_scan_in(), 1);
}

TEST(Wrapper, RoundRobinNeverBeatsBfdOnSkewedChains) {
  Core c = combinational_core(1, 1, 1);
  c.scan_chain_lengths = {50, 40, 30, 8, 6, 4, 2, 1};
  for (int w = 2; w <= 5; ++w) {
    const auto bfd = design_wrapper(c, w, PartitionHeuristic::kBestFitDecreasing);
    const auto rr = design_wrapper(c, w, PartitionHeuristic::kRoundRobin);
    EXPECT_LE(bfd.max_scan_in(), rr.max_scan_in()) << "w=" << w;
  }
}

TEST(WrapperExact, NeverWorseThanBfd) {
  Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    Core c;
    c.name = "t";
    c.num_inputs = static_cast<int>(rng.uniform_int(1, 40));
    c.num_outputs = static_cast<int>(rng.uniform_int(1, 40));
    c.num_patterns = 10;
    const int chains = static_cast<int>(rng.uniform_int(2, 9));
    for (int k = 0; k < chains; ++k) {
      c.scan_chain_lengths.push_back(static_cast<int>(rng.uniform_int(1, 120)));
    }
    for (int w : {2, 3, 4}) {
      const auto bfd = design_wrapper(c, w);
      const auto exact = design_wrapper_exact(c, w);
      // Exact minimizes the max internal chain.
      int bfd_max = 0, exact_max = 0;
      for (const auto& chain : bfd.chains) bfd_max = std::max(bfd_max, chain.internal_flops);
      for (const auto& chain : exact.chains) exact_max = std::max(exact_max, chain.internal_flops);
      EXPECT_LE(exact_max, bfd_max) << "trial " << trial << " w " << w;
      // Conservation still holds.
      int flops = 0;
      for (const auto& chain : exact.chains) flops += chain.internal_flops;
      EXPECT_EQ(flops, c.total_scan_flops());
    }
  }
}

TEST(WrapperExact, MatchesKnownPartition) {
  // Chains {8,7,6,5,4} into 2 bins: optimal max = 15 (8+7 | 6+5+4).
  Core c;
  c.name = "t";
  c.num_inputs = 1;
  c.num_outputs = 1;
  c.num_patterns = 1;
  c.scan_chain_lengths = {8, 7, 6, 5, 4};
  const auto exact = design_wrapper_exact(c, 2);
  int exact_max = 0;
  for (const auto& chain : exact.chains) exact_max = std::max(exact_max, chain.internal_flops);
  EXPECT_EQ(exact_max, 15);
}

TEST(WrapperExact, BeatsBfdOnAdversarialCase) {
  // Classic BFD failure: {5,5,4,3,3} into 2 bins — BFD gives 5|5 ->
  // 5+3? Walk: sorted 5,5,4,3,3; bins (5)(5); 4 -> (9)(5); 3 -> (9)(8);
  // 3 -> (9)(11) => max 11. Optimal: 5+5=10 | 4+3+3=10.
  Core c;
  c.name = "t";
  c.num_inputs = 1;
  c.num_outputs = 1;
  c.num_patterns = 1;
  c.scan_chain_lengths = {5, 5, 4, 3, 3};
  const auto bfd = design_wrapper(c, 2);
  const auto exact = design_wrapper_exact(c, 2);
  int bfd_max = 0, exact_max = 0;
  for (const auto& chain : bfd.chains) bfd_max = std::max(bfd_max, chain.internal_flops);
  for (const auto& chain : exact.chains) exact_max = std::max(exact_max, chain.internal_flops);
  EXPECT_EQ(exact_max, 10);
  EXPECT_GT(bfd_max, exact_max);
}

TEST(WrapperExact, NodeCapFallsBackToBfd) {
  Core c;
  c.name = "t";
  c.num_inputs = 1;
  c.num_outputs = 1;
  c.num_patterns = 1;
  for (int k = 0; k < 18; ++k) c.scan_chain_lengths.push_back(10 + k);
  const auto capped = design_wrapper_exact(c, 4, /*max_nodes=*/2);
  const auto bfd = design_wrapper(c, 4);
  EXPECT_EQ(wrapper_test_time(c, capped), wrapper_test_time(c, bfd));
}

TEST(Wrapper, SoftCoreBalancedExactly) {
  // Soft cores: flops are free unit items, so max scan-in hits the floor
  // ceil((F + inputs)/w) exactly.
  Core c;
  c.name = "soft";
  c.num_inputs = 11;
  c.num_outputs = 7;
  c.num_patterns = 10;
  c.soft_scan_flops = 100;
  for (int w : {1, 2, 3, 4, 7, 16}) {
    const auto design = design_wrapper(c, w);
    EXPECT_EQ(design.max_scan_in(), (100 + 11 + w - 1) / w) << "w=" << w;
  }
}

TEST(Wrapper, SoftCoreNeverWorseThanSameFlopsHardCore) {
  Core soft;
  soft.name = "soft";
  soft.num_inputs = 10;
  soft.num_outputs = 10;
  soft.num_patterns = 20;
  soft.soft_scan_flops = 200;
  Core hard = soft;
  hard.soft_scan_flops = 0;
  hard.scan_chain_lengths = {120, 50, 30};  // same 200 flops, fixed stitching
  for (int w : {2, 3, 4, 8}) {
    EXPECT_LE(core_test_time(soft, w), core_test_time(hard, w)) << "w=" << w;
  }
}

TEST(Wrapper, SoftCoreFlopConservation) {
  Core c;
  c.name = "soft";
  c.num_inputs = 5;
  c.num_outputs = 5;
  c.num_patterns = 3;
  c.soft_scan_flops = 57;
  const auto design = design_wrapper(c, 4);
  int flops = 0;
  for (const auto& chain : design.chains) flops += chain.internal_flops;
  EXPECT_EQ(flops, 57);
}

TEST(Wrapper, SoftAndFixedChainsRejectedTogether) {
  Core c;
  c.name = "bad";
  c.num_inputs = 1;
  c.num_outputs = 1;
  c.num_patterns = 1;
  c.soft_scan_flops = 10;
  c.scan_chain_lengths = {5};
  EXPECT_NE(c.validate(), "");
}

class WrapperSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, int>> {};

TEST_P(WrapperSweep, InvariantsOnBuiltinCores) {
  const Soc soc = builtin_soc1();
  const auto [core_idx, w] = GetParam();
  const Core& c = soc.core(core_idx);
  const auto design = design_wrapper(c, w);
  // Conservation.
  int in_cells = 0, out_cells = 0, flops = 0;
  for (const auto& chain : design.chains) {
    in_cells += chain.input_cells;
    out_cells += chain.output_cells;
    flops += chain.internal_flops;
  }
  EXPECT_EQ(in_cells, c.num_inputs + c.num_bidirs);
  EXPECT_EQ(out_cells, c.num_outputs + c.num_bidirs);
  EXPECT_EQ(flops, c.total_scan_flops());
  // Bounds.
  EXPECT_GE(design.max_scan_in(), (c.scan_in_elements() + w - 1) / w);
  EXPECT_GT(wrapper_test_time(c, design), 0);
}

INSTANTIATE_TEST_SUITE_P(
    CoreWidthGrid, WrapperSweep,
    ::testing::Combine(::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u),
                       ::testing::Values(1, 2, 3, 5, 8, 16, 32, 64)));

}  // namespace
}  // namespace soctest
