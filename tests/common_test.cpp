#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/text.hpp"

namespace soctest {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 9);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 9);
  }
}

TEST(Rng, UniformIntHitsAllValues) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(4, 4), 4);
}

TEST(Rng, Uniform01Bounds) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, Uniform01RoughlyCentered) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.03);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto shuffled = v;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, IndexWithinBounds) {
  Rng rng(19);
  for (int i = 0; i < 500; ++i) EXPECT_LT(rng.index(13), 13u);
}

TEST(Table, AsciiAlignsColumns) {
  Table t({"name", "value"});
  t.row().add("a").add(1);
  t.row().add("long_name").add(22);
  const std::string out = t.to_ascii();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("long_name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CsvRoundTripValues) {
  Table t({"a", "b", "c"});
  t.row().add(std::int64_t{7}).add(3.14159, 2).add("x");
  EXPECT_EQ(t.to_csv(), "a,b,c\n7,3.14,x\n");
}

TEST(Table, DoubleFormatting) {
  Table t({"v"});
  t.row().add(1.0 / 3.0, 4);
  EXPECT_NE(t.to_csv().find("0.3333"), std::string::npos);
}

TEST(Table, NumRows) {
  Table t({"a"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.row().add(1);
  t.row().add(2);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(Text, SplitWs) {
  EXPECT_EQ(split_ws("  a  bb\tccc "), (std::vector<std::string>{"a", "bb", "ccc"}));
  EXPECT_TRUE(split_ws("").empty());
  EXPECT_TRUE(split_ws("   \t  ").empty());
}

TEST(Text, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("   "), "");
}

TEST(Text, StartsWith) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_FALSE(starts_with("he", "hello"));
  EXPECT_TRUE(starts_with("x", ""));
}

TEST(Text, Join) {
  EXPECT_EQ(join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(join({}, ","), "");
}

TEST(Text, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 5), 1);
}

}  // namespace
}  // namespace soctest
