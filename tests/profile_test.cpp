// Tests for span-profile aggregation (src/obs/profile): self-time
// attribution over nested and cross-thread spans, nearest-rank percentile
// edge cases, the collapsed-stack export, and the byte-identical --profile
// guarantee under the deterministic fake clock.

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cli/options.hpp"
#include "cli/run.hpp"
#include "obs/obs.hpp"
#include "obs/profile.hpp"
#include "report/json.hpp"
#include "report/run_report.hpp"

namespace soctest {
namespace {

obs::TraceEvent span_event(std::uint64_t id, std::uint64_t parent,
                           std::string name, double start_us, double dur_us,
                           int thread = 0) {
  obs::TraceEvent event;
  event.id = id;
  event.parent = parent;
  event.kind = obs::TraceEvent::Kind::kSpan;
  event.name = std::move(name);
  event.thread = thread;
  event.start_us = start_us;
  event.dur_us = dur_us;
  return event;
}

/// root(100us) -> child(30us) -> leaf(5us), plus a second child(20us) call
/// and an instant that must not fold into the profile.
std::vector<obs::TraceEvent> nested_events() {
  std::vector<obs::TraceEvent> events;
  events.push_back(span_event(4, 2, "leaf", 12.0, 5.0));
  events.push_back(span_event(2, 1, "child", 10.0, 30.0));
  events.push_back(span_event(3, 1, "child", 50.0, 20.0));
  obs::TraceEvent instant;
  instant.id = 5;
  instant.parent = 1;
  instant.kind = obs::TraceEvent::Kind::kInstant;
  instant.name = "tick";
  instant.start_us = 60.0;
  events.push_back(instant);
  events.push_back(span_event(1, 0, "root", 0.0, 100.0));
  return events;
}

const obs::SpanProfile* find_span(const obs::Profile& profile,
                                  const std::string& name) {
  for (const auto& span : profile.spans) {
    if (span.name == name) return &span;
  }
  return nullptr;
}

TEST(Profile, SelfTimeIsTotalMinusChildrenAndOrderIsSelfDescending) {
  const obs::Profile profile = obs::build_profile(nested_events());
  EXPECT_EQ(profile.num_spans, 4);
  EXPECT_DOUBLE_EQ(profile.wall_us, 100.0);  // instants and children excluded

  const obs::SpanProfile* root = find_span(profile, "root");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->count, 1);
  EXPECT_DOUBLE_EQ(root->total_us, 100.0);
  EXPECT_DOUBLE_EQ(root->self_us, 50.0);  // 100 - (30 + 20)
  ASSERT_EQ(root->children.size(), 1u);
  EXPECT_EQ(root->children[0].first, "child");
  EXPECT_DOUBLE_EQ(root->children[0].second, 50.0);

  const obs::SpanProfile* child = find_span(profile, "child");
  ASSERT_NE(child, nullptr);
  EXPECT_EQ(child->count, 2);
  EXPECT_DOUBLE_EQ(child->total_us, 50.0);
  EXPECT_DOUBLE_EQ(child->self_us, 45.0);  // 50 - leaf's 5

  const obs::SpanProfile* leaf = find_span(profile, "leaf");
  ASSERT_NE(leaf, nullptr);
  EXPECT_DOUBLE_EQ(leaf->total_us, 5.0);
  EXPECT_DOUBLE_EQ(leaf->self_us, 5.0);

  // Deterministic ordering: self-time descending (root 50, child 45, leaf 5).
  ASSERT_EQ(profile.spans.size(), 3u);
  EXPECT_EQ(profile.spans[0].name, "root");
  EXPECT_EQ(profile.spans[1].name, "child");
  EXPECT_EQ(profile.spans[2].name, "leaf");
}

TEST(Profile, CrossThreadSpansAreRootsAndAddToWall) {
  std::vector<obs::TraceEvent> events;
  events.push_back(span_event(1, 0, "main", 0.0, 40.0, /*thread=*/0));
  // A worker span is a root (the nesting stack is thread-local), so its
  // time lands in wall_us and is NOT a child of "main".
  events.push_back(span_event(2, 0, "worker", 5.0, 30.0, /*thread=*/1));
  const obs::Profile profile = obs::build_profile(events);
  EXPECT_DOUBLE_EQ(profile.wall_us, 70.0);
  const obs::SpanProfile* main_span = find_span(profile, "main");
  ASSERT_NE(main_span, nullptr);
  EXPECT_DOUBLE_EQ(main_span->self_us, 40.0);
  EXPECT_TRUE(main_span->children.empty());
}

TEST(Profile, PercentilesSingleSampleAndTies) {
  std::vector<obs::TraceEvent> events;
  events.push_back(span_event(1, 0, "once", 0.0, 7.0));
  for (std::uint64_t i = 0; i < 3; ++i) {
    events.push_back(span_event(2 + i, 0, "tied", 10.0 * double(i), 4.0));
  }
  events.push_back(span_event(10, 0, "pair", 0.0, 20.0));
  events.push_back(span_event(11, 0, "pair", 30.0, 30.0));
  const obs::Profile profile = obs::build_profile(events);

  const obs::SpanProfile* once = find_span(profile, "once");
  ASSERT_NE(once, nullptr);  // one sample: all four stats collapse to it
  EXPECT_DOUBLE_EQ(once->min_us, 7.0);
  EXPECT_DOUBLE_EQ(once->p50_us, 7.0);
  EXPECT_DOUBLE_EQ(once->p95_us, 7.0);
  EXPECT_DOUBLE_EQ(once->max_us, 7.0);

  const obs::SpanProfile* tied = find_span(profile, "tied");
  ASSERT_NE(tied, nullptr);
  EXPECT_DOUBLE_EQ(tied->p50_us, 4.0);
  EXPECT_DOUBLE_EQ(tied->p95_us, 4.0);

  // Nearest-rank on two samples: p50 is the lower one, p95 the upper.
  const obs::SpanProfile* pair = find_span(profile, "pair");
  ASSERT_NE(pair, nullptr);
  EXPECT_DOUBLE_EQ(pair->p50_us, 20.0);
  EXPECT_DOUBLE_EQ(pair->p95_us, 30.0);
}

TEST(Profile, FoldedStacksRoundTripToSelfTimes) {
  const std::string folded = obs::folded_stacks(nested_events());
  // One line per unique stack, sorted, integer self-us values.
  EXPECT_EQ(folded,
            "root 50\n"
            "root;child 45\n"
            "root;child;leaf 5\n");
  // Round-trip: parsed self times add back up to the traced wall clock.
  std::istringstream in(folded);
  std::string line;
  long long total = 0;
  while (std::getline(in, line)) {
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    total += std::stoll(line.substr(space + 1));
  }
  EXPECT_EQ(total, 100);
}

TEST(Profile, TextAndJsonSerializers) {
  const obs::Profile profile = obs::build_profile(nested_events());
  const std::string text = profile_text(profile, 2);
  EXPECT_NE(text.find("span profile"), std::string::npos);
  EXPECT_NE(text.find("root"), std::string::npos);
  // top_n=2 hides the leaf row but says so.
  EXPECT_NE(text.find("1 more span names below the top 2"), std::string::npos)
      << text;

  const std::string json = profile_json(profile);
  EXPECT_EQ(json_check(json), "") << json;
  const auto doc = parse_json(json);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_or("schema", ""), "soctest-profile-v1");
  EXPECT_DOUBLE_EQ(doc->number_or("wall_us", 0.0), 100.0);
  const JsonValue* spans = doc->find("spans");
  ASSERT_NE(spans, nullptr);
  ASSERT_TRUE(spans->is_array());
  EXPECT_EQ(spans->items.size(), 3u);
  EXPECT_EQ(spans->items[0].string_or("name", ""), "root");
  EXPECT_DOUBLE_EQ(spans->items[0].number_or("self_us", 0.0), 50.0);
}

TEST(ProfileCli, FakeClockMakesProfileOutputByteIdentical) {
  ::setenv("SOCTEST_OBS_FAKE_CLOCK", "1", 1);
  const CliOptions options = parse_cli(
      {"--soc", "soc1", "--widths", "16,16", "--solver", "exact", "--profile"});
  const CliResult first = run_cli(options);
  const CliResult second = run_cli(options);
  ::unsetenv("SOCTEST_OBS_FAKE_CLOCK");
  EXPECT_EQ(first.exit_code, 0) << first.output;
  EXPECT_NE(first.output.find("span profile"), std::string::npos);
  EXPECT_NE(first.output.find("cli.run"), std::string::npos);
  // Fixed seed + serial solve + tick clock: the whole report, profile table
  // included, must not drift by a byte between runs.
  EXPECT_EQ(first.output, second.output);
}

}  // namespace
}  // namespace soctest
