// Tests for the ATE vector-memory depth constraint (per-bus load cap).

#include <gtest/gtest.h>

#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/heuristics.hpp"
#include "tam/ilp_solver.hpp"
#include "tam/width_partition.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

TEST(DepthConstraint, CheckAssignmentEnforcesCap) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{40, 40}, {30, 30}, {20, 20}};
  p.allowed.assign(3, {1, 1});
  p.bus_depth_limit = 50;
  EXPECT_EQ(p.check_assignment({0, 1, 1}), "");   // loads 40, 50
  EXPECT_NE(p.check_assignment({0, 0, 1}), "");   // load 70 on bus 0
}

TEST(DepthConstraint, ExactRespectsCap) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{40, 40}, {30, 30}, {20, 20}};
  p.allowed.assign(3, {1, 1});
  p.bus_depth_limit = 50;
  const auto r = solve_exact(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.assignment.makespan, 50);
  EXPECT_EQ(p.check_assignment(r.assignment.core_to_bus), "");
  // Depth below the balanced optimum (45) -> infeasible.
  p.bus_depth_limit = 44;
  EXPECT_FALSE(solve_exact(p).feasible);
}

TEST(DepthConstraint, MakeProblemRejectsUnfittableCore) {
  const Soc soc = builtin_soc2();
  const TestTimeTable table(soc, 8);
  // Some core needs more than 10 cycles even at full width.
  EXPECT_THROW(
      make_tam_problem(soc, table, {8, 8}, nullptr, -1, -1.0,
                       PowerConstraintMode::kPairwiseSerialization, 10),
      std::runtime_error);
}

TEST(DepthConstraint, IlpCapsT) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{40, 40}, {30, 30}, {20, 20}};
  p.allowed.assign(3, {1, 1});
  p.bus_depth_limit = 50;
  const auto ilp = solve_ilp(p);
  const auto exact = solve_exact(p);
  ASSERT_TRUE(ilp.feasible && exact.feasible);
  EXPECT_EQ(ilp.assignment.makespan, exact.assignment.makespan);
  p.bus_depth_limit = 44;
  EXPECT_FALSE(solve_ilp(p).feasible);
}

TEST(DepthConstraint, GreedyAndSaRespectCap) {
  Rng rng(3);
  testutil::RandomProblemOptions options;
  options.num_cores = 8;
  options.num_buses = 3;
  TamProblem p = testutil::random_problem(rng, options);
  // Cap slightly above the exact optimum so feasible room exists.
  const auto exact_free = solve_exact(p);
  p.bus_depth_limit = exact_free.assignment.makespan + 50;
  const auto greedy = solve_greedy_lpt(p);
  const auto sa = solve_sa(p);
  if (greedy.feasible) {
    EXPECT_EQ(p.check_assignment(greedy.assignment.core_to_bus), "");
  }
  if (sa.feasible) {
    EXPECT_EQ(p.check_assignment(sa.assignment.core_to_bus), "");
  }
  // Exact must find the same optimum (cap above it is slack).
  const auto exact = solve_exact(p);
  ASSERT_TRUE(exact.feasible);
  EXPECT_EQ(exact.assignment.makespan, exact_free.assignment.makespan);
}

class DepthVsBrute : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DepthVsBrute, ExactMatchesExhaustive) {
  Rng rng(GetParam());
  testutil::RandomProblemOptions options;
  options.num_cores = 6;
  options.num_buses = 2;
  TamProblem p = testutil::random_problem(rng, options);
  // A cap between the balanced optimum and the serial time bites often.
  const auto free_opt = solve_exact(p);
  p.bus_depth_limit = free_opt.assignment.makespan +
                      static_cast<Cycles>(rng.uniform_int(0, 200));
  const Cycles brute = testutil::brute_force_makespan(p);
  const auto r = solve_exact(p);
  ASSERT_EQ(r.feasible, brute >= 0) << "seed " << GetParam();
  if (brute >= 0) EXPECT_EQ(r.assignment.makespan, brute);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DepthVsBrute,
                         ::testing::Range<std::uint64_t>(0, 15));

TEST(DepthConstraint, WidthSearchSkipsUnfittablePartitions) {
  const Soc soc = builtin_soc2();
  const TestTimeTable table(soc, 15);
  WidthPartitionOptions options;
  // Depth chosen so extreme partitions (1, 15) cannot host the big cores
  // but balanced ones can.
  options.bus_depth_limit = 9000;
  const auto r = optimize_widths(soc, table, 2, 16, nullptr, -1, -1.0, options);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.assignment.makespan, 9000);
}

TEST(DepthConstraint, DepthSweepTracesFrontier) {
  const Soc soc = builtin_soc2();
  const TestTimeTable table(soc, 8);
  const TamProblem base = make_tam_problem(soc, table, {8, 8});
  const Cycles optimum = solve_exact(base).assignment.makespan;
  // Above the optimum: same answer. At the optimum: still feasible.
  for (Cycles depth : {optimum * 2, optimum + 1, optimum}) {
    const TamProblem p = make_tam_problem(
        soc, table, {8, 8}, nullptr, -1, -1.0,
        PowerConstraintMode::kPairwiseSerialization, depth);
    const auto r = solve_exact(p);
    ASSERT_TRUE(r.feasible) << depth;
    EXPECT_EQ(r.assignment.makespan, optimum);
  }
  // Below the optimum: infeasible.
  const TamProblem tight = make_tam_problem(
      soc, table, {8, 8}, nullptr, -1, -1.0,
      PowerConstraintMode::kPairwiseSerialization, optimum - 1);
  EXPECT_FALSE(solve_exact(tight).feasible);
}

}  // namespace
}  // namespace soctest
