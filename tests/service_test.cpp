#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/sharded_cache.hpp"
#include "obs/obs.hpp"
#include "report/json.hpp"
#include "service/cache.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "soc/builtin.hpp"
#include "tam/timing.hpp"

namespace soctest {
namespace {

// The solve service (docs/service.md): request parsing, result cache,
// admission control, deterministic serial mode, and graceful drain.

std::string req(const std::string& body) {
  return "{\"schema\":\"soctest-req-v1\"," + body + "}";
}

/// Runs one line through a service synchronously and returns the response.
std::string roundtrip(SolveService& service, const std::string& line) {
  std::string response;
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  service.submit(line, [&](std::string r) {
    std::lock_guard<std::mutex> lock(mu);
    response = std::move(r);
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  return response;
}

ServiceConfig serial_config() {
  ServiceConfig config;
  config.serial = true;
  return config;
}

// ------------------------------------------------------------- protocol --

TEST(ServiceProtocol, RequestRoundTripsThroughItsJson) {
  ServiceRequest request;
  request.id = "rt-1";
  request.soc = "soc2";
  request.widths = {16, 8, 8};
  request.d_max = 12;
  request.wire_budget = 400;
  request.p_max = 1800.0;
  request.power_mode = PowerConstraintMode::kBusMaxSum;
  request.ate_depth = 100000;
  request.solver = InnerSolver::kGreedy;
  request.seed = 42;
  request.threads = 2;
  request.time_limit_ms = 250.0;
  request.no_cache = true;

  StatusOr<ServiceRequest> parsed = parse_request(request_json(request));
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const ServiceRequest& back = parsed.value();
  EXPECT_EQ(back.id, request.id);
  EXPECT_EQ(back.soc, request.soc);
  EXPECT_EQ(back.widths, request.widths);
  EXPECT_EQ(back.d_max, request.d_max);
  EXPECT_EQ(back.wire_budget, request.wire_budget);
  EXPECT_EQ(back.p_max, request.p_max);
  EXPECT_EQ(back.power_mode, request.power_mode);
  EXPECT_EQ(back.ate_depth, request.ate_depth);
  EXPECT_EQ(back.solver, request.solver);
  EXPECT_EQ(back.seed, request.seed);
  EXPECT_EQ(back.threads, request.threads);
  EXPECT_EQ(back.time_limit_ms, request.time_limit_ms);
  EXPECT_EQ(back.no_cache, request.no_cache);
}

TEST(ServiceProtocol, TraceContextRoundTripsAndStampsSpanLinks) {
  ServiceRequest request;
  request.id = "tr-1";
  request.soc = "soc1";
  request.trace_id = "cafef00dcafef00d";
  request.trace_parent = trace_span_guid(request.trace_id, "client.request");

  const std::string line = request_json(request);
  StatusOr<ServiceRequest> parsed = parse_request(line);
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed.value().trace_id, request.trace_id);
  EXPECT_EQ(parsed.value().trace_parent, request.trace_parent);

  // Untraced requests omit the object entirely — the wire stays identical
  // to the pre-trace protocol.
  ServiceRequest untraced;
  untraced.id = "tr-2";
  EXPECT_EQ(request_json(untraced).find("trace"), std::string::npos);

  // The guid is a pure function of (trace_id, label): 16 lowercase hex
  // chars, stable across processes, distinct per label.
  const std::string guid = trace_span_guid("cafef00dcafef00d", "service.request");
  EXPECT_EQ(guid.size(), 16u);
  EXPECT_EQ(guid.find_first_not_of("0123456789abcdef"), std::string::npos);
  EXPECT_EQ(guid, trace_span_guid("cafef00dcafef00d", "service.request"));
  EXPECT_NE(guid, trace_span_guid("cafef00dcafef00d", "frontdoor.relay"));

  // stamp_trace attaches the cross-process link args to a live span.
  obs::TraceSink sink;
  {
    obs::TraceSession session(&sink);
    obs::Span span("service.request");
    stamp_trace(span, request, "service.request");
  }
  const auto events = sink.events();
  ASSERT_EQ(events.size(), 1u);
  const auto& args = events[0].args;
  ASSERT_EQ(args.size(), 3u);
  EXPECT_EQ(args[0].key, "trace_id");
  EXPECT_EQ(args[0].text, request.trace_id);
  EXPECT_EQ(args[1].key, "span_guid");
  EXPECT_EQ(args[1].text, trace_span_guid(request.trace_id, "service.request"));
  EXPECT_EQ(args[2].key, "parent_guid");
  EXPECT_EQ(args[2].text, request.trace_parent);
}

TEST(ServiceProtocol, StatsProbeParsesAndReplyIsNameSorted) {
  const std::string probe = stats_probe_json("top-1");
  std::string id;
  EXPECT_TRUE(parse_stats_probe(probe, &id));
  EXPECT_EQ(id, "top-1");
  // Requests and replies are not probes.
  EXPECT_FALSE(parse_stats_probe(req("\"id\":\"x\""), &id));

  ServeStatsSnapshot snapshot;
  snapshot.id = "top-1";
  snapshot.role = "serve";
  snapshot.received = 10;
  snapshot.completed = 8;
  snapshot.cache_hits = 3;
  snapshot.cache_misses = 5;
  const std::string reply = serve_stats_json(snapshot);
  // A reply has a role member, so it must not parse as a probe (the serve
  // loop would otherwise answer its own replies).
  EXPECT_FALSE(parse_stats_probe(reply, &id));

  const auto doc = parse_json(reply);
  ASSERT_TRUE(doc.has_value()) << reply;
  EXPECT_EQ(doc->string_or("schema", ""), std::string(kStatsSchema));
  EXPECT_DOUBLE_EQ(doc->number_or("cache_hit_rate", -1.0), 3.0 / 8.0);
  // Every emitted key is in the documented soctest-stats-v1 catalog, and
  // the keys after schema/id/role are name-sorted like every other stats
  // surface.
  std::vector<std::string> keys;
  for (const auto& [name, value] : doc->members) {
    EXPECT_NE(std::find(std::begin(kStatsFields), std::end(kStatsFields),
                        name),
              std::end(kStatsFields))
        << name << " missing from kStatsFields";
    if (name != "schema" && name != "id" && name != "role") {
      keys.push_back(name);
    }
  }
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end())) << reply;
}

TEST(ServiceProtocol, RejectsMalformedAndInvalidLines) {
  // Not JSON at all.
  EXPECT_FALSE(parse_request("{nope").ok());
  EXPECT_EQ(parse_request("{nope").status().code(), StatusCode::kParseError);
  // Valid JSON, wrong shape.
  EXPECT_FALSE(parse_request("[1,2]").ok());
  // Missing schema.
  EXPECT_FALSE(parse_request("{\"id\":\"x\"}").ok());
  // Wrong schema version.
  EXPECT_FALSE(parse_request("{\"schema\":\"soctest-req-v0\"}").ok());
  // Unknown member (likely a typo of a real knob).
  EXPECT_FALSE(parse_request(req("\"widht\":[8]")).ok());
  // Bad field values.
  EXPECT_FALSE(parse_request(req("\"widths\":[0]")).ok());
  EXPECT_FALSE(parse_request(req("\"widths\":[8.5]")).ok());
  EXPECT_FALSE(parse_request(req("\"solver\":\"magic\"")).ok());
  EXPECT_FALSE(parse_request(req("\"solver\":3")).ok());
  EXPECT_FALSE(parse_request(req("\"buses\":4,\"width\":2")).ok());
}

TEST(ServiceProtocol, MalformedLineGetsStructuredErrorResponse) {
  SolveService service(serial_config());
  const std::string response = roundtrip(service, "{\"schema\":");
  const auto doc = parse_json(response);
  ASSERT_TRUE(doc.has_value()) << response;
  EXPECT_EQ(doc->string_or("schema", ""), "soctest-resp-v1");
  const JsonValue* ok = doc->find("ok");
  ASSERT_NE(ok, nullptr);
  EXPECT_FALSE(ok->boolean);
  const JsonValue* error = doc->find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->string_or("code", ""), "parse_error");
  EXPECT_FALSE(error->string_or("message", "").empty());
}

TEST(ServiceProtocol, ErrorResponseRecoversRequestId) {
  SolveService service(serial_config());
  // The line parses as JSON but fails request validation; its id must
  // still come back so the client can match the failure.
  const std::string response =
      roundtrip(service, req("\"id\":\"bad-7\",\"widths\":[]"));
  const auto doc = parse_json(response);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_or("id", ""), "bad-7");
  EXPECT_EQ(doc->find("error")->string_or("code", ""), "invalid_argument");
}

// ---------------------------------------------------------------- cache --

TEST(ServiceCache, KeyIsContentAddressedNotNameAddressed) {
  ServiceRequest request;
  request.widths = {16, 8};
  const Soc soc1 = builtin_soc1();
  const Soc soc2 = builtin_soc2();
  EXPECT_EQ(solve_cache_key(request, soc1), solve_cache_key(request, soc1));
  EXPECT_NE(solve_cache_key(request, soc1), solve_cache_key(request, soc2));

  ServiceRequest other = request;
  other.seed = 1;
  EXPECT_NE(solve_cache_key(request, soc1), solve_cache_key(other, soc1));
  other = request;
  other.solver = InnerSolver::kGreedy;
  EXPECT_NE(solve_cache_key(request, soc1), solve_cache_key(other, soc1));
  other = request;
  other.p_max = 1500.0;
  EXPECT_NE(solve_cache_key(request, soc1), solve_cache_key(other, soc1));

  // The id and thread count are delivery details, not solve inputs.
  other = request;
  other.id = "different";
  other.threads = 8;
  EXPECT_EQ(solve_cache_key(request, soc1), solve_cache_key(other, soc1));
}

TEST(ServiceCache, DeadlineLimitedRequestsBypassTheCache) {
  ServiceRequest request;
  EXPECT_TRUE(cacheable_request(request));
  request.time_limit_ms = 100.0;
  EXPECT_FALSE(cacheable_request(request));
  request.time_limit_ms = -1.0;
  request.no_cache = true;
  EXPECT_FALSE(cacheable_request(request));

  SolveOutcome outcome;
  outcome.ok = true;
  outcome.stop = "none";
  EXPECT_TRUE(cacheable_outcome(outcome));
  outcome.stop = "deadline";
  EXPECT_FALSE(cacheable_outcome(outcome));
  outcome.stop = "none";
  outcome.ok = false;
  EXPECT_FALSE(cacheable_outcome(outcome));
}

TEST(ServiceCache, HitReturnsIdenticalCertificateToColdSolve) {
  SolveService service(serial_config());
  const std::string line = req("\"id\":\"c1\",\"widths\":[16,8,8]");
  const std::string cold = roundtrip(service, line);
  const std::string warm = roundtrip(service, line);
  EXPECT_EQ(service.cache_stats().hits, 1);
  EXPECT_EQ(service.cache_stats().misses, 1);

  const auto cold_doc = parse_json(cold);
  const auto warm_doc = parse_json(warm);
  ASSERT_TRUE(cold_doc && warm_doc);
  EXPECT_FALSE(cold_doc->find("cached")->boolean);
  EXPECT_TRUE(warm_doc->find("cached")->boolean);
  // Everything but the cached flag is identical: same certificate, same
  // widths, same makespan (serial mode omits timing, so compare text).
  for (const char* key : {"status", "stop"}) {
    EXPECT_EQ(cold_doc->string_or(key, "?"), warm_doc->string_or(key, "!"));
  }
  for (const char* key : {"t_cycles", "lower_bound", "gap"}) {
    EXPECT_EQ(cold_doc->number_or(key, -2), warm_doc->number_or(key, -3));
  }
}

TEST(ServiceCache, ShardedLruEvictsLeastRecentlyUsed) {
  ShardedLruCache<int> cache(/*capacity=*/2, /*num_shards=*/1);
  cache.put("a", std::make_shared<const int>(1));
  cache.put("b", std::make_shared<const int>(2));
  ASSERT_NE(cache.get("a"), nullptr);  // refresh "a"
  cache.put("c", std::make_shared<const int>(3));
  EXPECT_EQ(cache.get("b"), nullptr);  // "b" was the LRU entry
  EXPECT_NE(cache.get("a"), nullptr);
  EXPECT_NE(cache.get("c"), nullptr);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.size, 2);
}

TEST(ServiceCache, EvictionNeverInvalidatesHeldPointers) {
  ShardedLruCache<std::string> cache(/*capacity=*/1, /*num_shards=*/1);
  auto held = cache.get_or_create("x", [] { return std::string("payload"); });
  cache.put("y", std::make_shared<const std::string>("evicts x"));
  EXPECT_EQ(cache.get("x"), nullptr);
  EXPECT_EQ(*held, "payload");  // still alive via shared ownership
}

// ------------------------------------------------------- timing memo -----

TEST(ServiceCache, TimingMemoSharesOneTablePerKey) {
  const Soc soc = builtin_soc1();
  const TestTimeTable& a = cached_test_time_table(soc, 16);
  const TestTimeTable& b = cached_test_time_table(soc, 16);
  EXPECT_EQ(&a, &b);  // unbounded memo pins entries for process lifetime
  const TestTimeTable& c = cached_test_time_table(soc, 24);
  EXPECT_NE(&a, &c);
}

// ------------------------------------------------------------- service ---

TEST(ServiceServer, SerialModeIsByteDeterministic) {
  const std::vector<std::string> batch = {
      req("\"id\":\"d1\",\"widths\":[16,8,8]"),
      req("\"id\":\"d2\",\"soc\":\"soc3\",\"widths\":[8,8]"),
      req("\"id\":\"d3\",\"widths\":[16,8,8]"),  // cache hit
      "not json",
  };
  auto run = [&batch] {
    SolveService service(serial_config());
    std::vector<std::string> responses;
    for (const std::string& line : batch) {
      responses.push_back(roundtrip(service, line));
    }
    return responses;
  };
  const std::vector<std::string> first = run();
  const std::vector<std::string> second = run();
  EXPECT_EQ(first, second);
  // Serial responses must not leak timing (the wall clock is the one
  // nondeterministic input left).
  for (const std::string& response : first) {
    EXPECT_EQ(response.find("wall_ms"), std::string::npos) << response;
    EXPECT_EQ(response.find("queue_ms"), std::string::npos) << response;
  }
}

TEST(ServiceServer, DeadlineExpiredRequestReturnsAnytimeCertificate) {
  SolveService service(serial_config());
  const std::string response = roundtrip(
      service, req("\"id\":\"dl\",\"widths\":[16,8,8],\"time_limit_ms\":0"));
  const auto doc = parse_json(response);
  ASSERT_TRUE(doc.has_value()) << response;
  EXPECT_TRUE(doc->find("ok")->boolean) << response;
  EXPECT_EQ(doc->string_or("stop", ""), "deadline");
  // Anytime contract: whatever incumbent existed is reported with an
  // honest (non-optimal) certificate rather than an error.
  EXPECT_NE(doc->string_or("status", ""), "optimal");
  EXPECT_EQ(service.cache_stats().misses, 0);  // bypassed the cache
  EXPECT_EQ(service.cache_stats().size, 0);    // and did not fill it
}

TEST(ServiceServer, OperatorTimeLimitCapsEveryRequest) {
  ServiceConfig config = serial_config();
  config.max_time_limit_ms = 0.0;  // everything expires immediately
  SolveService service(config);
  const std::string response =
      roundtrip(service, req("\"id\":\"cap\",\"widths\":[16,8,8]"));
  const auto doc = parse_json(response);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->string_or("stop", ""), "deadline");
}

TEST(ServiceServer, QueueFullRejectsWithRetryAfter) {
  ServiceConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  config.retry_after_ms = 75.0;
  SolveService service(config);

  // Occupy the single slot with a request, then race more in; at least one
  // must be rejected with backpressure advice (capacity 1, submissions 3).
  std::atomic<int> rejected{0};
  std::atomic<int> done_count{0};
  std::mutex mu;
  std::condition_variable cv;
  auto done = [&](std::string response) {
    const auto doc = parse_json(response);
    ASSERT_TRUE(doc.has_value());
    if (doc->find("retry_after_ms") != nullptr) {
      EXPECT_EQ(doc->find("error")->string_or("code", ""),
                "resource_exhausted");
      EXPECT_EQ(doc->number_or("retry_after_ms", 0.0), 75.0);
      rejected.fetch_add(1);
    }
    std::lock_guard<std::mutex> lock(mu);
    done_count.fetch_add(1);
    cv.notify_one();
  };
  for (int i = 0; i < 3; ++i) {
    service.submit(req("\"id\":\"q" + std::to_string(i) +
                       "\",\"soc\":\"soc3\",\"widths\":[8,8]"),
                   done);
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done_count.load() == 3; });
  }
  service.drain();
  EXPECT_GE(rejected.load(), 1);
  EXPECT_EQ(service.stats().rejected, rejected.load());
  EXPECT_EQ(service.stats().accepted + service.stats().rejected, 3);
}

TEST(ServiceServer, DrainUnderLoadLeavesNoLostJobs) {
  ServiceConfig config;
  config.workers = 4;
  config.queue_capacity = 256;
  SolveService service(config);

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 8;
  std::atomic<int> responses{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&service, &responses, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        service.submit(
            req("\"id\":\"p" + std::to_string(p) + "-" + std::to_string(i) +
                "\",\"widths\":[16,8,8],\"seed\":" + std::to_string(i % 3)),
            [&responses](std::string) { responses.fetch_add(1); });
      }
    });
  }
  for (std::thread& t : producers) t.join();
  service.drain();

  // Every submission got exactly one response: accepted jobs completed,
  // the rest were answered inline (rejection/error) at submit time.
  EXPECT_EQ(responses.load(), kProducers * kPerProducer);
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.received, kProducers * kPerProducer);
  EXPECT_EQ(stats.completed, stats.accepted);
  EXPECT_GE(stats.cache_hits, 1);  // duplicate-heavy batch must hit

  // Post-drain submissions are refused, not lost.
  const std::string late = roundtrip(service, req("\"id\":\"late\""));
  EXPECT_NE(late.find("server draining"), std::string::npos) << late;
}

}  // namespace
}  // namespace soctest
