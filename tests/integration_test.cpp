// End-to-end flows: SOC -> placement -> bus routing -> constrained
// architecture optimization -> schedule -> power/layout verification.

#include <gtest/gtest.h>

#include "layout/sa_placer.hpp"
#include "sched/power_profile.hpp"
#include "sched/schedule.hpp"
#include "soc/builtin.hpp"
#include "soc/generator.hpp"
#include "tam/architect.hpp"
#include "tam/exact_solver.hpp"
#include "tam/heuristics.hpp"

namespace soctest {
namespace {

class FullFlow : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FullFlow, RandomSocAllConstraints) {
  Rng rng(GetParam());
  SocGeneratorOptions gen;
  gen.num_cores = 8;
  Soc soc = generate_soc(gen, rng);
  // Loosen the die and refine placement.
  soc.set_die(soc.die_width() + 10, soc.die_height() + 10);
  SaPlacerOptions placer;
  placer.iterations = 3000;
  sa_place(soc, placer, rng);
  ASSERT_EQ(soc.validate(), "");

  DesignRequest request;
  request.bus_widths = {12, 8};
  request.use_layout = true;
  request.d_max = soc.die_width() + soc.die_height();  // generous
  request.p_max_mw = soc.total_test_power();           // generous
  const auto result = design_architecture(soc, request);
  ASSERT_TRUE(result.feasible) << "seed " << GetParam();
  ASSERT_TRUE(result.bus_plan.has_value());

  // Rebuild the problem to validate the schedule against it.
  const TestTimeTable table(soc, 12);
  const LayoutConstraints layout(*result.bus_plan, soc.num_cores(), request.d_max);
  const TamProblem problem = make_tam_problem(
      soc, table, request.bus_widths, &layout, -1, request.p_max_mw);
  EXPECT_EQ(problem.check_assignment(result.assignment.core_to_bus), "");

  const TestSchedule schedule =
      build_schedule(problem, result.assignment.core_to_bus);
  EXPECT_EQ(schedule.validate(problem, result.assignment.core_to_bus), "");
  EXPECT_EQ(schedule.makespan, result.assignment.makespan);
  // A generous budget must be met by construction.
  EXPECT_EQ(check_power(soc, schedule, soc.total_test_power()), "");
}

TEST_P(FullFlow, ConstraintsOnlyEverIncreaseTestTime) {
  Rng rng(GetParam() + 1000);
  SocGeneratorOptions gen;
  gen.num_cores = 7;
  Soc soc = generate_soc(gen, rng);

  DesignRequest free_request;
  free_request.bus_widths = {10, 10};
  const auto free_result = design_architecture(soc, free_request);
  ASSERT_TRUE(free_result.feasible);

  // Power-constrained at 150% of the largest core power.
  double max_power = 0;
  for (const auto& c : soc.cores()) max_power = std::max(max_power, c.test_power_mw);
  DesignRequest power_request = free_request;
  power_request.p_max_mw = max_power * 1.5;
  const auto power_result = design_architecture(soc, power_request);
  if (power_result.feasible) {
    EXPECT_GE(power_result.assignment.makespan, free_result.assignment.makespan);
  }

  // Layout-constrained with a mid-range d_max.
  DesignRequest layout_request = free_request;
  layout_request.d_max = (soc.die_width() + soc.die_height()) / 4;
  try {
    const auto layout_result = design_architecture(soc, layout_request);
    if (layout_result.feasible) {
      EXPECT_GE(layout_result.assignment.makespan,
                free_result.assignment.makespan);
    }
  } catch (const std::runtime_error&) {
    // d_max too tight for some core: a legitimate infeasibility report.
  }
}

TEST_P(FullFlow, PowerBudgetSweepIsMonotone) {
  Rng rng(GetParam() + 2000);
  SocGeneratorOptions gen;
  gen.num_cores = 7;
  const Soc soc = generate_soc(gen, rng);
  double max_power = 0;
  for (const auto& c : soc.cores()) max_power = std::max(max_power, c.test_power_mw);

  Cycles prev = -1;
  for (double factor : {1.1, 1.5, 2.0, 3.0}) {
    DesignRequest request;
    request.bus_widths = {10, 10};
    request.p_max_mw = max_power * factor;
    const auto result = design_architecture(soc, request);
    ASSERT_TRUE(result.feasible);
    if (prev >= 0) {
      // Looser budgets can only help.
      EXPECT_LE(result.assignment.makespan, prev) << "factor " << factor;
    }
    prev = result.assignment.makespan;
  }
}

TEST_P(FullFlow, ScheduleOfPowerConstrainedDesignMeetsBudgetAfterReorder) {
  Rng rng(GetParam() + 3000);
  SocGeneratorOptions gen;
  gen.num_cores = 6;
  const Soc soc = generate_soc(gen, rng);
  double max_pair = 0;
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    for (std::size_t k = i + 1; k < soc.num_cores(); ++k) {
      max_pair = std::max(max_pair, soc.core(i).test_power_mw +
                                        soc.core(k).test_power_mw);
    }
  }
  // Any budget at or above the max pair sum disables conflicts entirely, so
  // pick one slightly below to force at least one co-assignment.
  const double budget = max_pair - 1.0;
  const TestTimeTable table(soc, 8);
  TamProblem problem;
  try {
    problem = make_tam_problem(soc, table, {8, 8}, nullptr, -1, budget);
  } catch (const std::runtime_error&) {
    return;  // a single core above budget: legitimately untestable
  }
  const auto result = solve_exact(problem);
  ASSERT_TRUE(result.feasible);
  const TestSchedule schedule =
      build_schedule(problem, result.assignment.core_to_bus);
  // The conservative pairwise constraint guarantees that the two heaviest
  // cores are serialized; the realized peak must respect the budget for the
  // *pair* constraint to be meaningful. With only 2 buses, any instant runs
  // at most 2 cores, so the pairwise guarantee is exact here.
  EXPECT_EQ(check_power(soc, schedule, budget), "");
}

INSTANTIATE_TEST_SUITE_P(Seeds, FullFlow, ::testing::Range<std::uint64_t>(0, 10));

TEST(Integration, Soc1HeadlineFlow) {
  const Soc soc = builtin_soc1();
  DesignRequest request;
  request.bus_widths = {16, 16, 16};
  request.d_max = 30;
  request.p_max_mw = 1800;
  const auto result = design_architecture(soc, request);
  ASSERT_TRUE(result.feasible);
  EXPECT_TRUE(result.proved_optimal);
  const std::string report = describe_design(soc, request, result);
  EXPECT_NE(report.find("optimal"), std::string::npos);
}

TEST(Integration, GreedyMatchesExactOftenOnSoc2) {
  const Soc soc = builtin_soc2();
  const TestTimeTable table(soc, 16);
  int gaps = 0;
  for (int w1 = 4; w1 <= 12; w1 += 2) {
    const TamProblem p = make_tam_problem(soc, table, {w1, 16 - w1});
    const auto exact = solve_exact(p);
    const auto greedy = solve_greedy_lpt(p);
    ASSERT_TRUE(exact.feasible && greedy.feasible);
    EXPECT_GE(greedy.assignment.makespan, exact.assignment.makespan);
    if (greedy.assignment.makespan > exact.assignment.makespan) ++gaps;
  }
  // LPT is good but the exact solver must win at least sometimes across
  // sweeps on real SOCs... or tie everywhere; either way no crash. Just
  // record that the comparison ran.
  SUCCEED() << gaps << " width splits had a greedy/exact gap";
}

}  // namespace
}  // namespace soctest
