// Golden regression values: the whole model is deterministic, so key
// numbers for the built-in SOCs are pinned here. Any change to the wrapper
// formula, the packing heuristics, or the solvers that shifts these values
// must be deliberate (and update this file + EXPERIMENTS.md together).

#include <gtest/gtest.h>

#include "sched/power_profile.hpp"
#include "sched/schedule.hpp"
#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/width_partition.hpp"
#include "wrapper/wrapper.hpp"

namespace soctest {
namespace {

TEST(Golden, Soc1CoreTestTimes) {
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 64);
  struct Expect {
    const char* core;
    int width;
    Cycles time;
  };
  // Values from EXPERIMENTS.md Table 1.
  const Expect expectations[] = {
      {"c7552", 1, 15292}, {"c7552", 8, 1985},  {"c7552", 64, 367},
      {"s838", 1, 5058},   {"s838", 8, 2507},   {"s838", 64, 2507},
      {"s38584", 1, 191874}, {"s38584", 8, 24163}, {"s38584", 64, 5105},
      {"s38417", 1, 120188}, {"s38417", 32, 3860}, {"s38417", 64, 3656},
      {"s13207", 16, 12448}, {"s35932", 2, 13182}, {"c6288", 4, 116},
  };
  for (const auto& e : expectations) {
    const auto idx = *soc.find_core(e.core);
    EXPECT_EQ(table.time(idx, e.width), e.time)
        << e.core << " @ w=" << e.width;
  }
}

TEST(Golden, Soc1SerialLoads) {
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 64);
  EXPECT_EQ(table.total_time(1), 668787);
  EXPECT_EQ(table.total_time(64), 36491);
}

TEST(Golden, Soc1UnconstrainedOptima) {
  const Soc soc = builtin_soc1();
  {
    const TestTimeTable table(soc, 16);
    const TamProblem p = make_tam_problem(soc, table, {16, 16});
    EXPECT_EQ(solve_exact(p).assignment.makespan, 26179);
  }
  {
    const TestTimeTable table(soc, 16);
    const TamProblem p = make_tam_problem(soc, table, {16, 16, 16});
    EXPECT_EQ(solve_exact(p).assignment.makespan, 17897);
  }
}

TEST(Golden, Soc1WidthSearchOptima) {
  const Soc soc = builtin_soc1();
  struct Expect {
    int buses;
    int total;
    Cycles time;
  };
  const Expect expectations[] = {
      {2, 32, 25182}, {2, 64, 18570}, {3, 48, 16984}, {4, 64, 11119}};
  for (const auto& e : expectations) {
    const TestTimeTable table(soc, e.total - (e.buses - 1));
    const auto r = optimize_widths(soc, table, e.buses, e.total);
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.assignment.makespan, e.time)
        << "B=" << e.buses << " W=" << e.total;
  }
}

TEST(Golden, Soc1PowerConstrainedOptima) {
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 16);
  struct Expect {
    double p_max;
    Cycles time;
  };
  const Expect expectations[] = {{1800, 26828}, {1700, 29516}, {1600, 33735},
                                 {1400, 52330}};
  for (const auto& e : expectations) {
    const TamProblem p =
        make_tam_problem(soc, table, {16, 16}, nullptr, -1, e.p_max);
    EXPECT_EQ(solve_exact(p).assignment.makespan, e.time) << e.p_max;
  }
}

TEST(Golden, Soc2Optimum) {
  const Soc soc = builtin_soc2();
  const TestTimeTable table(soc, 23);
  const auto r = optimize_widths(soc, table, 2, 24);
  EXPECT_EQ(r.assignment.makespan, 6672);
}

TEST(Golden, Soc1SchedulePeak) {
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 16);
  const TamProblem p = make_tam_problem(soc, table, {16, 16});
  const auto r = solve_exact(p);
  const TestSchedule s = build_schedule(p, r.assignment.core_to_bus);
  EXPECT_DOUBLE_EQ(compute_power_profile(soc, s).peak(), 1897.0);
}

TEST(Golden, TestDataVolumes) {
  const Soc soc = builtin_soc1();
  // s38417: p=68, si=1636+28, so=1636+106 -> 68*(1664+1742) = 231608.
  const auto idx = *soc.find_core("s38417");
  EXPECT_EQ(core_test_data_volume(soc.core(idx)), 68 * (1664 + 1742));
  long long total = 0;
  for (const auto& c : soc.cores()) total += core_test_data_volume(c);
  EXPECT_GT(total, 0);
  // Width independence: volume derives from patterns and scan counts only.
  EXPECT_EQ(core_test_data_volume(soc.core(idx)),
            68 * (soc.core(idx).scan_in_elements() +
                  soc.core(idx).scan_out_elements()));
}

}  // namespace
}  // namespace soctest
