// Cross-model properties tying the architecture/scheduling models together
// on random SOCs: sessions vs TAM vs preemption all bound each other in
// provable ways; multisite throughput is consistent with the width curve.

#include <gtest/gtest.h>

#include <algorithm>

#include "pack/exact_pack.hpp"
#include "pack/skyline.hpp"
#include "sched/power_sched.hpp"
#include "sched/preemptive.hpp"
#include "sched/sessions.hpp"
#include "soc/builtin.hpp"
#include "soc/generator.hpp"
#include "tam/daisychain.hpp"
#include "tam/exact_solver.hpp"
#include "tam/heuristics.hpp"
#include "tam/multisite.hpp"

namespace soctest {
namespace {

class CrossModel : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  void SetUp() override {
    Rng rng(GetParam());
    SocGeneratorOptions gen;
    gen.num_cores = 7;
    gen.place = false;
    gen.soft_core_fraction = 0.3;
    soc_ = generate_soc(gen, rng);
    table_.emplace(soc_, 16);
  }
  Soc soc_;
  std::optional<TestTimeTable> table_;
};

TEST_P(CrossModel, SessionsLowerBoundedByLongestCore) {
  const auto times = session_times(soc_, *table_, 16);
  const auto powers = session_powers(soc_);
  const Cycles longest = *std::max_element(times.begin(), times.end());
  for (double budget : {-1.0, soc_.total_test_power(), soc_.total_test_power() / 2}) {
    const auto r = schedule_sessions_exact(times, powers, budget);
    if (!r.feasible) continue;
    EXPECT_GE(r.schedule.total_time, longest);
    EXPECT_EQ(check_sessions(times, powers, budget, r.schedule), "");
  }
}

TEST_P(CrossModel, UnlimitedPowerSessionsBeatAnyTam) {
  // With no power limit one session tests everything concurrently (each
  // core on its own width-16 interface): time = longest core. No TAM
  // sharing 2x16 wires can beat that.
  const auto times = session_times(soc_, *table_, 16);
  const auto powers = session_powers(soc_);
  const auto sessions = schedule_sessions_exact(times, powers, -1);
  ASSERT_TRUE(sessions.feasible);
  const TamProblem bus = make_tam_problem(soc_, *table_, {16, 16});
  const auto tam = solve_exact(bus);
  ASSERT_TRUE(tam.feasible);
  EXPECT_LE(sessions.schedule.total_time, tam.assignment.makespan);
}

TEST_P(CrossModel, DaisychainNeverBeatsBus) {
  const std::vector<int> widths{16, 8};
  const TamProblem bus = make_tam_problem(soc_, *table_, widths);
  const DaisychainProblem rail = make_daisychain_problem(soc_, *table_, widths);
  const auto bus_result = solve_exact(bus);
  const auto rail_result = solve_daisychain_exact(rail);
  ASSERT_TRUE(bus_result.feasible && rail_result.feasible);
  EXPECT_GE(rail_result.assignment.makespan, bus_result.assignment.makespan);
}

TEST_P(CrossModel, PreemptiveBoundedByLoadAndByNonpreemptive) {
  const TamProblem problem = make_tam_problem(soc_, *table_, {12, 12});
  const auto solved = solve_exact(problem);
  ASSERT_TRUE(solved.feasible);
  double max_power = 0;
  for (const auto& c : soc_.cores()) max_power = std::max(max_power, c.test_power_mw);
  const double budget = max_power * 1.5;
  const auto pre = build_preemptive_schedule(
      problem, soc_, solved.assignment.core_to_bus, budget);
  ASSERT_TRUE(pre.feasible);
  EXPECT_GE(pre.schedule.makespan, solved.assignment.makespan);
  EXPECT_EQ(check_preemptive_schedule(problem, soc_,
                                      solved.assignment.core_to_bus,
                                      pre.schedule, budget),
            "");
  // Without a budget, preemption collapses to the plain bus loads.
  const auto free_pre = build_preemptive_schedule(
      problem, soc_, solved.assignment.core_to_bus, -1);
  ASSERT_TRUE(free_pre.feasible);
  EXPECT_EQ(free_pre.schedule.makespan, solved.assignment.makespan);
  EXPECT_EQ(free_pre.preemptions, 0);
}

TEST_P(CrossModel, MultisiteThroughputConsistentWithWidthCurve) {
  Soc placed = soc_;  // multisite only needs test parameters
  MultisiteOptions options;
  options.num_buses = 2;
  options.max_sites = 6;
  const auto curve = multisite_sweep(placed, 48, options);
  for (const auto& point : curve) {
    if (!point.feasible) continue;
    // Throughput is sites / T; verify against an independent width solve.
    const TestTimeTable site_table(placed, point.width_per_site - 1);
    const auto arch =
        optimize_widths(placed, site_table, 2, point.width_per_site);
    ASSERT_TRUE(arch.feasible);
    EXPECT_EQ(point.test_time, arch.assignment.makespan)
        << "sites " << point.sites;
  }
}

TEST_P(CrossModel, PackSolversAlwaysPassTheFeasibilityOracle) {
  const PackProblem problem = make_pack_problem(soc_, *table_, 16);
  const PackSolveResult sky = solve_pack_skyline(problem);
  const PackSolveResult repaired = solve_pack(problem);
  PackExactOptions budgeted;
  budgeted.max_nodes = 100000;  // bounded incumbent is enough for the oracle
  const PackSolveResult exact = solve_pack_exact(problem, budgeted);
  for (const PackSolveResult* r : {&sky, &repaired, &exact}) {
    ASSERT_TRUE(r->feasible);
    EXPECT_EQ(check_packing(problem, r->placements, r->makespan), "");
    EXPECT_GE(r->makespan, problem.lower_bound());
  }
  EXPECT_LE(repaired.makespan, sky.makespan);
  // The exact search warm-starts from the raw skyline pass, so even a
  // budget-truncated run can never be worse than it.
  EXPECT_LE(exact.makespan, sky.makespan);
}

TEST_P(CrossModel, PackWithPowerBudgetSatisfiesTimeResolvedOracle) {
  double tallest = 0;
  for (const auto& c : soc_.cores()) {
    tallest = std::max(tallest, c.test_power_mw);
  }
  // Tight enough to force serialization decisions, loose enough to stay
  // feasible (every core fits alone).
  const double budget = tallest * 1.5;
  const PackProblem problem = make_pack_problem(soc_, *table_, 16, budget);
  const PackSolveResult r = solve_pack(problem);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(check_packing(problem, r.placements, r.makespan), "");
}

// Any fixed-bus architecture over buses summing to W is one particular
// packing of the W-wide strip (full-height slabs), so the packing
// formulation should not lose to the fixed-bus greedy on shipped SOCs.
TEST(PackVsFixedBus, PackNeverWorseThanGreedyOnShippedSocs) {
  for (const Soc& soc : {builtin_soc1(), builtin_soc2(), builtin_soc3(),
                         builtin_soc4()}) {
    for (int width : {16, 24, 32}) {
      const TestTimeTable table(soc, width);
      const TamProblem bus =
          make_tam_problem(soc, table, {width / 2, width - width / 2});
      const TamSolveResult greedy = solve_greedy_lpt(bus);
      const PackProblem problem = make_pack_problem(soc, table, width);
      const PackSolveResult pack = solve_pack(problem);
      ASSERT_TRUE(greedy.feasible && pack.feasible);
      EXPECT_LE(pack.makespan, greedy.assignment.makespan)
          << soc.name() << " width " << width;
      EXPECT_EQ(check_packing(problem, pack.placements, pack.makespan), "")
          << soc.name() << " width " << width;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossModel, ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace soctest
