#include <gtest/gtest.h>

#include "soc/builtin.hpp"
#include "tam/multisite.hpp"

namespace soctest {
namespace {

TEST(Multisite, RejectsTooNarrowTester) {
  const Soc soc = builtin_soc2();
  MultisiteOptions options;
  options.num_buses = 4;
  EXPECT_THROW(multisite_sweep(soc, 3, options), std::invalid_argument);
}

TEST(Multisite, CurveShape) {
  const Soc soc = builtin_soc2();
  MultisiteOptions options;
  options.num_buses = 2;
  options.max_sites = 10;
  const auto curve = multisite_sweep(soc, 32, options);
  ASSERT_EQ(curve.size(), 10u);
  for (const auto& point : curve) {
    if (point.width_per_site >= options.num_buses) {
      EXPECT_TRUE(point.feasible) << "sites " << point.sites;
      EXPECT_GT(point.test_time, 0);
      EXPECT_NEAR(point.throughput_kchips,
                  1e6 * point.sites / static_cast<double>(point.test_time),
                  1e-9);
    } else {
      EXPECT_FALSE(point.feasible);
    }
  }
  // Per-chip test time grows (weakly) as sites narrow the per-site width.
  for (std::size_t k = 1; k < curve.size(); ++k) {
    if (curve[k].feasible && curve[k - 1].feasible &&
        curve[k].width_per_site < curve[k - 1].width_per_site) {
      EXPECT_GE(curve[k].test_time, curve[k - 1].test_time)
          << "sites " << curve[k].sites;
    }
  }
}

TEST(Multisite, BestDominatesCurve) {
  const Soc soc = builtin_soc2();
  MultisiteOptions options;
  options.num_buses = 2;
  options.max_sites = 8;
  const auto best = best_multisite(soc, 32, options);
  ASSERT_TRUE(best.feasible);
  for (const auto& point : multisite_sweep(soc, 32, options)) {
    if (point.feasible) {
      EXPECT_GE(best.throughput_kchips, point.throughput_kchips);
    }
  }
}

TEST(Multisite, MoreSitesWinOnSaturatedSocs) {
  // soc2 saturates at modest width, so splitting a 64-channel tester into
  // many sites must beat a single site.
  const Soc soc = builtin_soc2();
  MultisiteOptions options;
  options.num_buses = 2;
  options.max_sites = 8;
  const auto curve = multisite_sweep(soc, 64, options);
  ASSERT_TRUE(curve.front().feasible);
  const auto best = best_multisite(soc, 64, options);
  EXPECT_GT(best.sites, 1);
  EXPECT_GT(best.throughput_kchips, curve.front().throughput_kchips);
}

}  // namespace
}  // namespace soctest
