// Tests for the bus-max-sum power constraint mode (sound for any bus
// count), covering problem construction, all solvers, and the peak-power
// guarantee the pairwise form cannot give for B >= 3.

#include <gtest/gtest.h>

#include "sched/power_profile.hpp"
#include "sched/schedule.hpp"
#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/heuristics.hpp"
#include "tam/ilp_solver.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

TEST(BusMaxProblem, MakeFillsFieldsWithoutGroups) {
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 16);
  const TamProblem p =
      make_tam_problem(soc, table, {16, 16, 16}, nullptr, -1, 2000,
                       PowerConstraintMode::kBusMaxSum);
  EXPECT_TRUE(p.co_groups.empty());
  EXPECT_EQ(p.core_power_mw.size(), soc.num_cores());
  EXPECT_DOUBLE_EQ(p.bus_power_budget, 2000.0);
  // Pairwise mode leaves the new fields empty.
  const TamProblem q = make_tam_problem(soc, table, {16, 16, 16}, nullptr, -1,
                                        2000);
  EXPECT_TRUE(q.core_power_mw.empty());
  EXPECT_LT(q.bus_power_budget, 0);
}

TEST(BusMaxProblem, CheckAssignmentEnforcesSum) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{10, 10}, {10, 10}, {10, 10}};
  p.allowed.assign(3, {1, 1});
  p.core_power_mw = {400, 300, 200};
  p.bus_power_budget = 650;
  // maxes: bus0 = 400, bus1 = 300 -> 700 > 650.
  EXPECT_NE(p.check_assignment({0, 1, 0}), "");
  // All on one bus: 400 <= 650.
  EXPECT_EQ(p.check_assignment({0, 0, 0}), "");
  // 400 | 200 -> 600 <= 650.
  EXPECT_EQ(p.check_assignment({0, 0, 1}), "");
}

TEST(BusMaxProblem, ValidateCatchesSizeMismatch) {
  TamProblem p;
  p.bus_widths = {8};
  p.time = {{10}};
  p.allowed = {{1}};
  p.core_power_mw = {100, 200};  // wrong size
  EXPECT_NE(p.validate(), "");
  p.core_power_mw.clear();
  p.bus_power_budget = 100;  // budget without powers
  EXPECT_NE(p.validate(), "");
}

TEST(BusMaxExact, HandComputed) {
  // Two heavy cores and one light; budget admits heavy+light in parallel
  // but not heavy+heavy.
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{60, 60}, {60, 60}, {10, 10}};
  p.allowed.assign(3, {1, 1});
  p.core_power_mw = {500, 500, 100};
  p.bus_power_budget = 650;
  const auto r = solve_exact(p);
  ASSERT_TRUE(r.feasible);
  // The heavies must share a bus: makespan 120 (with the light one opposite).
  EXPECT_EQ(r.assignment.makespan, 120);
  EXPECT_EQ(r.assignment.core_to_bus[0], r.assignment.core_to_bus[1]);
  EXPECT_EQ(p.check_assignment(r.assignment.core_to_bus), "");
}

TEST(BusMaxExact, AlwaysFeasibleViaSingleBus) {
  // Budget == the largest single power: everything must serialize.
  TamProblem p;
  p.bus_widths = {8, 8, 8};
  p.time.assign(4, std::vector<Cycles>(3, 25));
  p.allowed.assign(4, std::vector<char>(3, 1));
  p.core_power_mw = {400, 300, 200, 100};
  p.bus_power_budget = 400;
  const auto r = solve_exact(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.assignment.makespan, 100);  // all four on one bus
}

class BusMaxVsBrute : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BusMaxVsBrute, ExactMatchesExhaustive) {
  Rng rng(GetParam());
  testutil::RandomProblemOptions options;
  options.num_cores = 6;
  options.num_buses = 3;
  options.with_bus_power = true;
  const TamProblem p = testutil::random_problem(rng, options);
  const Cycles brute = testutil::brute_force_makespan(p);
  const auto r = solve_exact(p);
  ASSERT_EQ(r.feasible, brute >= 0) << "seed " << GetParam();
  if (brute >= 0) {
    EXPECT_EQ(r.assignment.makespan, brute);
    EXPECT_EQ(p.check_assignment(r.assignment.core_to_bus), "");
  }
}

TEST_P(BusMaxVsBrute, IlpMatchesExact) {
  Rng rng(GetParam() + 333);
  testutil::RandomProblemOptions options;
  options.num_cores = 5;
  options.num_buses = 2;
  options.with_bus_power = true;
  const TamProblem p = testutil::random_problem(rng, options);
  const auto ilp = solve_ilp(p);
  const auto exact = solve_exact(p);
  ASSERT_EQ(ilp.feasible, exact.feasible) << "seed " << GetParam();
  if (exact.feasible) {
    EXPECT_EQ(ilp.assignment.makespan, exact.assignment.makespan);
    EXPECT_EQ(p.check_assignment(ilp.assignment.core_to_bus), "");
  }
}

TEST_P(BusMaxVsBrute, HeuristicsRespectTheConstraint) {
  Rng rng(GetParam() + 666);
  testutil::RandomProblemOptions options;
  options.num_cores = 8;
  options.num_buses = 3;
  options.with_bus_power = true;
  const TamProblem p = testutil::random_problem(rng, options);
  const auto exact = solve_exact(p);
  const auto greedy = solve_greedy_lpt(p);
  SaSolverOptions sa_options;
  sa_options.seed = GetParam();
  const auto sa = solve_sa(p, sa_options);
  if (greedy.feasible) {
    EXPECT_EQ(p.check_assignment(greedy.assignment.core_to_bus), "");
    ASSERT_TRUE(exact.feasible);
    EXPECT_GE(greedy.assignment.makespan, exact.assignment.makespan);
  }
  if (sa.feasible) {
    EXPECT_EQ(p.check_assignment(sa.assignment.core_to_bus), "");
    ASSERT_TRUE(exact.feasible);
    EXPECT_GE(sa.assignment.makespan, exact.assignment.makespan);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BusMaxVsBrute,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(BusMax, GuaranteesSchedulePeakForThreeBuses) {
  // The whole point of the mode: with B=3 the pairwise form can exceed the
  // budget at runtime, the bus-max-sum form cannot.
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 16);
  const double p_max = 2000.0;
  const TamProblem busmax =
      make_tam_problem(soc, table, {16, 16, 16}, nullptr, -1, p_max,
                       PowerConstraintMode::kBusMaxSum);
  const auto r = solve_exact(busmax);
  ASSERT_TRUE(r.feasible);
  const TestSchedule schedule = build_schedule(busmax, r.assignment.core_to_bus);
  EXPECT_EQ(check_power(soc, schedule, p_max), "");

  // Pairwise at the same budget produces no conflicts (max pair 1967) yet
  // its realized 3-bus schedule exceeds the budget — the documented gap.
  const TamProblem pairwise =
      make_tam_problem(soc, table, {16, 16, 16}, nullptr, -1, p_max);
  const auto rp = solve_exact(pairwise);
  ASSERT_TRUE(rp.feasible);
  const TestSchedule sp = build_schedule(pairwise, rp.assignment.core_to_bus);
  EXPECT_NE(check_power(soc, sp, p_max), "");
  // Soundness costs test time.
  EXPECT_GE(r.assignment.makespan, rp.assignment.makespan);
}

TEST(BusMax, AtLeastAsConservativeAsPairwiseForTwoBuses) {
  // For B=2 pairwise is exactly necessary; bus-max-sum implies it, so the
  // bus-max optimum can never beat the pairwise optimum.
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 16);
  for (double p_max : {2200.0, 1900.0, 1700.0, 1500.0}) {
    const TamProblem pw = make_tam_problem(soc, table, {16, 16}, nullptr, -1,
                                           p_max);
    const TamProblem bm =
        make_tam_problem(soc, table, {16, 16}, nullptr, -1, p_max,
                         PowerConstraintMode::kBusMaxSum);
    const auto rpw = solve_exact(pw);
    const auto rbm = solve_exact(bm);
    ASSERT_TRUE(rpw.feasible && rbm.feasible) << p_max;
    EXPECT_GE(rbm.assignment.makespan, rpw.assignment.makespan) << p_max;
    // And the bus-max schedule always meets the budget.
    const TestSchedule s = build_schedule(bm, rbm.assignment.core_to_bus);
    EXPECT_EQ(check_power(soc, s, p_max), "");
  }
}

TEST(BusMaxLex, WireMinimizationUnderPowerMode) {
  Rng rng(9);
  testutil::RandomProblemOptions options;
  options.num_cores = 6;
  options.num_buses = 2;
  options.with_bus_power = true;
  options.with_wire_budget = true;
  TamProblem p = testutil::random_problem(rng, options);
  p.wire_budget = -1;
  const Cycles brute = testutil::brute_force_makespan(p);
  ASSERT_GE(brute, 0);
  const auto lex = solve_exact_lex(p);
  ASSERT_TRUE(lex.feasible);
  EXPECT_EQ(lex.assignment.makespan, brute);
  EXPECT_EQ(p.check_assignment(lex.assignment.core_to_bus), "");
}

}  // namespace
}  // namespace soctest
