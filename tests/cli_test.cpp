#include <gtest/gtest.h>
#include <fstream>
#include <sstream>

#include "cli/options.hpp"
#include "cli/run.hpp"
#include "report/json.hpp"

namespace soctest {
namespace {

std::string trim_copy(const std::string& s) {
  const auto b = s.find_first_not_of(" \n\t");
  const auto e = s.find_last_not_of(" \n\t");
  return b == std::string::npos ? std::string{} : s.substr(b, e - b + 1);
}

TEST(CliParse, Defaults) {
  const CliOptions o = parse_cli({});
  EXPECT_EQ(o.soc, "soc1");
  EXPECT_EQ(o.buses, 2);
  EXPECT_EQ(o.total_width, 32);
  EXPECT_TRUE(o.widths.empty());
  EXPECT_EQ(o.d_max, -1);
  EXPECT_EQ(o.p_max, -1.0);
  EXPECT_EQ(o.solver, InnerSolver::kExact);
  EXPECT_FALSE(o.help);
  EXPECT_FALSE(o.gantt);
  EXPECT_FALSE(o.idle_insertion);
}

TEST(CliParse, AllFlags) {
  const CliOptions o = parse_cli({"--soc", "soc3", "--widths", "16,8,8",
                                  "--dmax", "20", "--wire-budget", "100",
                                  "--pmax", "1500", "--solver", "sa",
                                  "--gantt", "--idle-insertion"});
  EXPECT_EQ(o.soc, "soc3");
  EXPECT_EQ(o.widths, (std::vector<int>{16, 8, 8}));
  EXPECT_EQ(o.d_max, 20);
  EXPECT_EQ(o.wire_budget, 100);
  EXPECT_DOUBLE_EQ(o.p_max, 1500.0);
  EXPECT_EQ(o.solver, InnerSolver::kSa);
  EXPECT_TRUE(o.gantt);
  EXPECT_TRUE(o.idle_insertion);
}

TEST(CliParse, SolverNames) {
  EXPECT_EQ(parse_cli({"--solver", "exact"}).solver, InnerSolver::kExact);
  EXPECT_EQ(parse_cli({"--solver", "ilp"}).solver, InnerSolver::kIlp);
  EXPECT_EQ(parse_cli({"--solver", "greedy"}).solver, InnerSolver::kGreedy);
  EXPECT_THROW(parse_cli({"--solver", "magic"}), std::invalid_argument);
}

TEST(CliParse, Rejections) {
  EXPECT_THROW(parse_cli({"--frobnicate"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--buses"}), std::invalid_argument);        // missing value
  EXPECT_THROW(parse_cli({"--buses", "0"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--buses", "two"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--widths", ""}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--widths", "4,,8"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--widths", "4,0"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--width", "2", "--buses", "3"}),
               std::invalid_argument);
  EXPECT_THROW(parse_cli({"--pmax", "12x"}), std::invalid_argument);
}

TEST(CliParse, PowerMode) {
  EXPECT_EQ(parse_cli({"--power-mode", "pairwise"}).power_mode,
            PowerConstraintMode::kPairwiseSerialization);
  EXPECT_EQ(parse_cli({"--power-mode", "busmax"}).power_mode,
            PowerConstraintMode::kBusMaxSum);
  EXPECT_THROW(parse_cli({"--power-mode", "triple"}), std::invalid_argument);
}

TEST(CliRun, BusMaxModeMeetsBudgetOnThreeBuses) {
  const CliResult r = run_cli(parse_cli({"--soc", "soc1", "--widths",
                                         "16,16,16", "--pmax", "2000",
                                         "--power-mode", "busmax"}));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("OK"), std::string::npos);
  EXPECT_EQ(r.output.find("VIOLATION"), std::string::npos);
}

TEST(CliParse, HelpFlag) {
  EXPECT_TRUE(parse_cli({"--help"}).help);
  EXPECT_TRUE(parse_cli({"-h"}).help);
}

TEST(CliRun, HelpPrintsUsage) {
  CliOptions o;
  o.help = true;
  const CliResult r = run_cli(o);
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("usage: soctest"), std::string::npos);
}

TEST(CliRun, BuiltinSocFixedWidths) {
  const CliResult r = run_cli(parse_cli({"--soc", "soc2", "--widths", "8,8"}));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("system test time"), std::string::npos);
  EXPECT_NE(r.output.find("optimal"), std::string::npos);
}

TEST(CliRun, WidthSearchWithGantt) {
  const CliResult r = run_cli(
      parse_cli({"--soc", "soc2", "--buses", "2", "--width", "12", "--gantt"}));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("bus 0 ["), std::string::npos);
}

TEST(CliRun, PowerConstrainedReportsPeak) {
  const CliResult r = run_cli(
      parse_cli({"--soc", "soc2", "--widths", "8,8", "--pmax", "1400"}));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("schedule peak power"), std::string::npos);
  EXPECT_NE(r.output.find("OK"), std::string::npos);
}

TEST(CliRun, IdleInsertionPath) {
  const CliResult r = run_cli(parse_cli({"--soc", "soc1", "--widths", "16,16",
                                         "--pmax", "1700",
                                         "--idle-insertion"}));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("idle-insertion schedule"), std::string::npos);
  EXPECT_NE(r.output.find("OK"), std::string::npos);
}

TEST(CliRun, LayoutConstrained) {
  const CliResult r = run_cli(
      parse_cli({"--soc", "soc1", "--widths", "16,16,16", "--dmax", "30"}));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("stub wirelength"), std::string::npos);
}

TEST(CliRun, LoadsSocFromFile) {
  const std::string path = ::testing::TempDir() + "/cli_test_chip.soc";
  {
    std::ofstream out(path);
    out << "soc filechip 20 20\n"
           "core a inputs 8 outputs 8 patterns 20 power 100 size 4 4\n"
           "core b inputs 6 outputs 6 patterns 30 power 150 size 4 4\n"
           "scan a 12 12\n"
           "softscan b 40\n"
           "place a 2 2\n"
           "place b 10 2\n"
           "end\n";
  }
  const CliResult r = run_cli(parse_cli({"--soc", path, "--widths", "4,4"}));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("filechip"), std::string::npos);
  EXPECT_NE(r.output.find("system test time"), std::string::npos);
}

TEST(CliRun, LoadsShippedSampleSoc) {
  // The repo ships data/camchip.soc; resolve it relative to this source
  // file's directory recorded at configure time.
#ifdef SOCTEST_REPO_ROOT
  const std::string path = std::string(SOCTEST_REPO_ROOT) + "/data/camchip.soc";
  const CliResult r = run_cli(parse_cli(
      {"--soc", path, "--widths", "12,8", "--dmax", "24", "--pmax", "1650"}));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("camchip"), std::string::npos);
#else
  GTEST_SKIP() << "SOCTEST_REPO_ROOT not defined";
#endif
}

TEST(CliRun, MissingSocFileReportsError) {
  const CliResult r = run_cli(parse_cli({"--soc", "/no/such/file.soc"}));
  EXPECT_EQ(r.exit_code, 3);  // input error (docs/robustness.md exit codes)
  EXPECT_NE(r.output.find("error:"), std::string::npos);
  EXPECT_NE(r.output.find("not_found"), std::string::npos);
}

TEST(CliRun, InfeasiblePowerBudgetExitsNonzero) {
  const CliResult r = run_cli(
      parse_cli({"--soc", "soc2", "--widths", "8,8", "--pmax", "100"}));
  EXPECT_NE(r.exit_code, 0);
}

TEST(CliRun, JsonOutputIsValid) {
  const CliResult r = run_cli(parse_cli(
      {"--soc", "soc2", "--widths", "8,8", "--pmax", "1400", "--json"}));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_EQ(json_check(trim_copy(r.output)), "") << r.output;
  EXPECT_NE(r.output.find("\"test_time_cycles\""), std::string::npos);
  // The text report must not be mixed in.
  EXPECT_EQ(r.output.find("system test time"), std::string::npos);
}

TEST(CliRun, SvgOutputWritesWellFormedFile) {
  const std::string path = ::testing::TempDir() + "/soctest_cli_test.svg";
  const CliResult r = run_cli(parse_cli({"--soc", "soc1", "--widths",
                                         "16,16", "--dmax", "40", "--svg",
                                         path}));
  EXPECT_EQ(r.exit_code, 0);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("<svg"), std::string::npos);
  EXPECT_NE(buffer.str().find("polyline"), std::string::npos);  // trunks+stubs
}

TEST(CliRun, SvgToUnwritablePathFails) {
  const CliResult r = run_cli(parse_cli(
      {"--soc", "soc1", "--widths", "16,16", "--svg", "/no/such/dir/x.svg"}));
  EXPECT_EQ(r.exit_code, 4);  // output I/O error
  EXPECT_NE(r.output.find("io_error"), std::string::npos);
}

TEST(CliParse, RobustnessFlags) {
  const CliOptions o = parse_cli(
      {"--time-limit-ms", "250", "--failpoints", "tam.exact.node=error"});
  EXPECT_DOUBLE_EQ(o.time_limit_ms, 250.0);
  EXPECT_EQ(o.failpoints, "tam.exact.node=error");
  EXPECT_THROW(parse_cli({"--time-limit-ms", "-1"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--time-limit-ms"}), std::invalid_argument);
  EXPECT_THROW(parse_cli({"--failpoints", ""}), std::invalid_argument);
}

TEST(CliRun, TimeLimitReportsCertificate) {
  // A zero budget expires before the first search node; the degradation
  // chain (portfolio greedy floor) must still deliver an architecture with
  // an honest gap report and a success exit.
#ifdef SOCTEST_REPO_ROOT
  const std::string path = std::string(SOCTEST_REPO_ROOT) + "/data/camchip.soc";
  const CliResult r = run_cli(
      parse_cli({"--soc", path, "--buses", "2", "--width", "24",
                 "--time-limit-ms", "0"}));
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_NE(r.output.find("system test time"), std::string::npos) << r.output;
  EXPECT_NE(r.output.find("status=feasible_bounded"), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("gap="), std::string::npos) << r.output;
#else
  GTEST_SKIP() << "SOCTEST_REPO_ROOT not defined";
#endif
}

TEST(CliRun, NoTimeLimitMatchesGoldenOutput) {
  // Without --time-limit-ms the anytime machinery must stay fully inert:
  // two runs (and the pre-deadline code path) give byte-identical reports.
  const std::vector<std::string> args{"--soc", "soc2", "--widths", "16,16"};
  const CliResult a = run_cli(parse_cli(args));
  const CliResult b = run_cli(parse_cli(args));
  EXPECT_EQ(a.exit_code, 0);
  EXPECT_EQ(a.output, b.output);
  EXPECT_NE(a.output.find("status=optimal"), std::string::npos) << a.output;
}

TEST(CliRun, JsonReportCarriesCertificate) {
  const CliResult r = run_cli(parse_cli(
      {"--soc", "soc2", "--widths", "16,16", "--json"}));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("\"status\":\"optimal\""), std::string::npos)
      << r.output;
  EXPECT_NE(r.output.find("\"stop_reason\":\"none\""), std::string::npos)
      << r.output;
}

TEST(CliRun, Soc3Solves) {
  const CliResult r = run_cli(
      parse_cli({"--soc", "soc3", "--widths", "24,16,16", "--solver", "greedy"}));
  EXPECT_EQ(r.exit_code, 0);
  EXPECT_NE(r.output.find("system test time"), std::string::npos);
}

}  // namespace
}  // namespace soctest
