#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "ilp/simplex.hpp"

namespace soctest {
namespace {

TEST(Simplex, TrivialBoundsOnly) {
  LinearProgram lp;
  lp.add_variable("x", 2.0, 10.0, VarKind::kContinuous, 1.0);
  const auto r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.0, 1e-9);
  EXPECT_NEAR(r.x[0], 2.0, 1e-9);
}

TEST(Simplex, ClassicTwoVarMaximization) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18  (min of negative).
  LinearProgram lp;
  const int x = lp.add_variable("x", 0, kInf, VarKind::kContinuous, -3.0);
  const int y = lp.add_variable("y", 0, kInf, VarKind::kContinuous, -5.0);
  lp.add_row("r1", {{x, 1.0}}, RowSense::kLe, 4.0);
  lp.add_row("r2", {{y, 2.0}}, RowSense::kLe, 12.0);
  lp.add_row("r3", {{x, 3.0}, {y, 2.0}}, RowSense::kLe, 18.0);
  const auto r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -36.0, 1e-7);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(x)], 2.0, 1e-7);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(y)], 6.0, 1e-7);
}

TEST(Simplex, EqualityConstraint) {
  // min x + y s.t. x + y = 5, x - y >= 1.
  LinearProgram lp;
  const int x = lp.add_variable("x", 0, kInf, VarKind::kContinuous, 1.0);
  const int y = lp.add_variable("y", 0, kInf, VarKind::kContinuous, 1.0);
  lp.add_row("sum", {{x, 1.0}, {y, 1.0}}, RowSense::kEq, 5.0);
  lp.add_row("gap", {{x, 1.0}, {y, -1.0}}, RowSense::kGe, 1.0);
  const auto r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-7);
}

TEST(Simplex, GreaterEqualBinding) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1 -> optimum at x=4-? actually x=4,y=0
  // has cost 8; x=1,y=3 has cost 11; best is y=0, x=4 -> 8.
  LinearProgram lp;
  const int x = lp.add_variable("x", 1.0, kInf, VarKind::kContinuous, 2.0);
  const int y = lp.add_variable("y", 0.0, kInf, VarKind::kContinuous, 3.0);
  lp.add_row("cover", {{x, 1.0}, {y, 1.0}}, RowSense::kGe, 4.0);
  const auto r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 8.0, 1e-7);
}

TEST(Simplex, DetectsInfeasible) {
  LinearProgram lp;
  const int x = lp.add_variable("x", 0.0, 1.0, VarKind::kContinuous, 1.0);
  lp.add_row("impossible", {{x, 1.0}}, RowSense::kGe, 2.0);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsContradictoryEqualities) {
  LinearProgram lp;
  const int x = lp.add_variable("x", 0.0, kInf, VarKind::kContinuous, 0.0);
  const int y = lp.add_variable("y", 0.0, kInf, VarKind::kContinuous, 0.0);
  lp.add_row("a", {{x, 1.0}, {y, 1.0}}, RowSense::kEq, 3.0);
  lp.add_row("b", {{x, 1.0}, {y, 1.0}}, RowSense::kEq, 4.0);
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LinearProgram lp;
  lp.add_variable("x", 0.0, kInf, VarKind::kContinuous, -1.0);  // min -x
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, RedundantRowsHandled) {
  LinearProgram lp;
  const int x = lp.add_variable("x", 0.0, kInf, VarKind::kContinuous, 1.0);
  lp.add_row("a", {{x, 1.0}}, RowSense::kEq, 2.0);
  lp.add_row("b", {{x, 2.0}}, RowSense::kEq, 4.0);  // same hyperplane
  const auto r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.x[static_cast<std::size_t>(x)], 2.0, 1e-7);
}

TEST(Simplex, DegenerateVertexTerminates) {
  // Multiple constraints meeting at the same vertex: Bland's rule must not
  // cycle.
  LinearProgram lp;
  const int x = lp.add_variable("x", 0.0, kInf, VarKind::kContinuous, -1.0);
  const int y = lp.add_variable("y", 0.0, kInf, VarKind::kContinuous, -1.0);
  lp.add_row("a", {{x, 1.0}, {y, 1.0}}, RowSense::kLe, 1.0);
  lp.add_row("b", {{x, 1.0}}, RowSense::kLe, 1.0);
  lp.add_row("c", {{y, 1.0}}, RowSense::kLe, 1.0);
  lp.add_row("d", {{x, 2.0}, {y, 1.0}}, RowSense::kLe, 2.0);
  const auto r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -1.0, 1e-7);
}

TEST(Simplex, BealeCyclingExampleTerminates) {
  // Beale's classic example makes naive Dantzig-rule simplex cycle forever;
  // Bland's rule must terminate at the optimum -1/20.
  LinearProgram lp;
  const int x1 = lp.add_variable("x1", 0, kInf, VarKind::kContinuous, -0.75);
  const int x2 = lp.add_variable("x2", 0, kInf, VarKind::kContinuous, 150.0);
  const int x3 = lp.add_variable("x3", 0, kInf, VarKind::kContinuous, -0.02);
  const int x4 = lp.add_variable("x4", 0, kInf, VarKind::kContinuous, 6.0);
  lp.add_row("r1", {{x1, 0.25}, {x2, -60.0}, {x3, -0.04}, {x4, 9.0}},
             RowSense::kLe, 0.0);
  lp.add_row("r2", {{x1, 0.5}, {x2, -90.0}, {x3, -0.02}, {x4, 3.0}},
             RowSense::kLe, 0.0);
  lp.add_row("r3", {{x3, 1.0}}, RowSense::kLe, 1.0);
  const auto r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -0.05, 1e-9);
}

TEST(Simplex, NegativeLowerBounds) {
  LinearProgram lp;
  const int x = lp.add_variable("x", -5.0, 5.0, VarKind::kContinuous, 1.0);
  const int y = lp.add_variable("y", -5.0, 5.0, VarKind::kContinuous, 1.0);
  lp.add_row("a", {{x, 1.0}, {y, 1.0}}, RowSense::kGe, -4.0);
  const auto r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -4.0, 1e-7);
}

TEST(Simplex, InfiniteLowerBoundRejected) {
  LinearProgram lp;
  lp.add_variable("x", -kInf, 0.0, VarKind::kContinuous, 1.0);
  EXPECT_THROW(solve_lp(lp), std::invalid_argument);
}

TEST(Simplex, SolutionSatisfiesModel) {
  LinearProgram lp;
  const int a = lp.add_variable("a", 0, 10, VarKind::kContinuous, 2.0);
  const int b = lp.add_variable("b", 0, 10, VarKind::kContinuous, -1.0);
  const int c = lp.add_variable("c", 1, 4, VarKind::kContinuous, 0.5);
  lp.add_row("r1", {{a, 1.0}, {b, 2.0}, {c, -1.0}}, RowSense::kLe, 7.0);
  lp.add_row("r2", {{a, 3.0}, {b, -1.0}}, RowSense::kGe, -2.0);
  lp.add_row("r3", {{b, 1.0}, {c, 1.0}}, RowSense::kLe, 9.0);
  const auto r = solve_lp(lp);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_TRUE(lp.is_feasible(r.x, 1e-6));
}

/// Property test: on random bounded LPs, the simplex optimum must be
/// feasible and no random feasible sample may beat it.
class SimplexRandom : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexRandom, OptimumDominatesRandomFeasiblePoints) {
  Rng rng(GetParam());
  LinearProgram lp;
  const int n = 3;
  for (int i = 0; i < n; ++i) {
    lp.add_variable("v" + std::to_string(i), 0.0, 10.0, VarKind::kContinuous,
                    rng.uniform(-2.0, 2.0));
  }
  const int rows = 4;
  for (int r = 0; r < rows; ++r) {
    std::vector<std::pair<int, double>> coeffs;
    for (int i = 0; i < n; ++i) coeffs.emplace_back(i, rng.uniform(-1.0, 2.0));
    // RHS chosen so the origin-ish region stays feasible often.
    lp.add_row("r" + std::to_string(r), std::move(coeffs), RowSense::kLe,
               rng.uniform(5.0, 25.0));
  }
  const auto result = solve_lp(lp);
  if (result.status != LpStatus::kOptimal) {
    // Random rows can make the box infeasible only if some row forbids the
    // whole box; accept but verify the claim with sampling.
    ASSERT_EQ(result.status, LpStatus::kInfeasible);
  }
  int feasible_samples = 0;
  for (int s = 0; s < 3000; ++s) {
    std::vector<double> x;
    for (int i = 0; i < n; ++i) x.push_back(rng.uniform(0.0, 10.0));
    if (!lp.is_feasible(x, 1e-9)) continue;
    ++feasible_samples;
    ASSERT_EQ(result.status, LpStatus::kOptimal)
        << "sampled a feasible point for an 'infeasible' LP";
    EXPECT_GE(lp.objective_value(x), result.objective - 1e-6);
  }
  if (result.status == LpStatus::kOptimal) {
    EXPECT_TRUE(lp.is_feasible(result.x, 1e-6));
    (void)feasible_samples;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexRandom,
                         ::testing::Range<std::uint64_t>(0, 25));

}  // namespace
}  // namespace soctest
