#include <gtest/gtest.h>

#include "sched/power_profile.hpp"
#include "sched/schedule.hpp"
#include "tam/exact_solver.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

Soc two_core_soc(double p0, double p1) {
  Soc soc("p", 20, 20);
  for (int i = 0; i < 2; ++i) {
    Core c;
    c.name = "c" + std::to_string(i);
    c.num_inputs = 1;
    c.num_outputs = 1;
    c.num_patterns = 1;
    c.test_power_mw = i == 0 ? p0 : p1;
    soc.add_core(c);
  }
  return soc;
}

TEST(PowerProfile, OverlapAddsPower) {
  const Soc soc = two_core_soc(100, 250);
  TestSchedule s;
  s.tests = {{0, 0, 0, 50}, {1, 1, 0, 30}};
  s.makespan = 50;
  const PowerProfile profile = compute_power_profile(soc, s);
  EXPECT_DOUBLE_EQ(profile.peak(), 350.0);
  EXPECT_DOUBLE_EQ(profile.at(0), 350.0);
  EXPECT_DOUBLE_EQ(profile.at(29), 350.0);
  EXPECT_DOUBLE_EQ(profile.at(30), 100.0);  // core 1 done at cycle 30
  EXPECT_DOUBLE_EQ(profile.at(49), 100.0);
  EXPECT_DOUBLE_EQ(profile.at(50), 0.0);
  EXPECT_DOUBLE_EQ(profile.at(-1), 0.0);
}

TEST(PowerProfile, SequentialNoOverlap) {
  const Soc soc = two_core_soc(100, 250);
  TestSchedule s;
  s.tests = {{0, 0, 0, 50}, {1, 0, 50, 80}};
  s.makespan = 80;
  const PowerProfile profile = compute_power_profile(soc, s);
  EXPECT_DOUBLE_EQ(profile.peak(), 250.0);
  EXPECT_DOUBLE_EQ(profile.at(49), 100.0);
  EXPECT_DOUBLE_EQ(profile.at(50), 250.0);
}

TEST(PowerProfile, EnergyIsPowerTimesTime) {
  const Soc soc = two_core_soc(100, 200);
  TestSchedule s;
  s.tests = {{0, 0, 0, 10}, {1, 1, 0, 5}};
  s.makespan = 10;
  const PowerProfile profile = compute_power_profile(soc, s);
  EXPECT_DOUBLE_EQ(profile.energy(), 100 * 10 + 200 * 5);
}

TEST(PowerProfile, PeakNeverExceedsTotalPower) {
  Rng rng(4);
  testutil::RandomProblemOptions options;
  options.num_cores = 8;
  options.num_buses = 3;
  const TamProblem p = testutil::random_problem(rng, options);
  Soc soc("x", 30, 30);
  for (std::size_t i = 0; i < 8; ++i) {
    Core c;
    c.name = "c" + std::to_string(i);
    c.num_inputs = 1;
    c.num_outputs = 1;
    c.num_patterns = 1;
    c.test_power_mw = rng.uniform(50, 400);
    soc.add_core(c);
  }
  const auto r = solve_exact(p);
  ASSERT_TRUE(r.feasible);
  const TestSchedule s = build_schedule(p, r.assignment.core_to_bus);
  const PowerProfile profile = compute_power_profile(soc, s);
  EXPECT_LE(profile.peak(), soc.total_test_power() + 1e-9);
  EXPECT_GT(profile.peak(), 0.0);
}

TEST(CheckPower, PassesAndFails) {
  const Soc soc = two_core_soc(100, 250);
  TestSchedule s;
  s.tests = {{0, 0, 0, 50}, {1, 1, 0, 30}};
  s.makespan = 50;
  EXPECT_EQ(check_power(soc, s, 400), "");
  EXPECT_NE(check_power(soc, s, 300), "");
  EXPECT_EQ(check_power(soc, s, -1), "");  // disabled budget always passes
}

TEST(CheckPower, SerializedScheduleMeetsTightBudget) {
  const Soc soc = two_core_soc(300, 300);
  TestSchedule s;
  s.tests = {{0, 0, 0, 50}, {1, 0, 50, 100}};
  s.makespan = 100;
  EXPECT_EQ(check_power(soc, s, 300), "");
}

TEST(MinimizePeakOrder, NeverIncreasesPeak) {
  Rng rng(9);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    testutil::RandomProblemOptions options;
    options.num_cores = 8;
    options.num_buses = 2;
    Rng prng(seed);
    const TamProblem p = testutil::random_problem(prng, options);
    Soc soc("x", 30, 30);
    for (std::size_t i = 0; i < 8; ++i) {
      Core c;
      c.name = "c" + std::to_string(i);
      c.num_inputs = 1;
      c.num_outputs = 1;
      c.num_patterns = 1;
      c.test_power_mw = prng.uniform(50, 500);
      soc.add_core(c);
    }
    const auto r = solve_exact(p);
    ASSERT_TRUE(r.feasible);
    const TestSchedule base = build_schedule(p, r.assignment.core_to_bus);
    const double base_peak = compute_power_profile(soc, base).peak();
    const TestSchedule improved =
        minimize_peak_order(p, soc, r.assignment.core_to_bus, rng, 500);
    const double improved_peak = compute_power_profile(soc, improved).peak();
    EXPECT_LE(improved_peak, base_peak + 1e-9) << "seed " << seed;
    // The reordered schedule must stay valid and keep the same makespan.
    EXPECT_EQ(improved.validate(p, r.assignment.core_to_bus), "");
    EXPECT_EQ(improved.makespan, base.makespan);
  }
}

}  // namespace
}  // namespace soctest
