#include <gtest/gtest.h>

#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

TEST(ExactSolver, TrivialSingleCore) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{50, 70}};
  p.allowed = {{1, 1}};
  const auto r = solve_exact(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proved_optimal);
  EXPECT_EQ(r.assignment.makespan, 50);
  EXPECT_EQ(r.assignment.core_to_bus[0], 0);
}

TEST(ExactSolver, BalancesTwoBuses) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{40, 40}, {40, 40}, {30, 30}, {30, 30}};
  p.allowed.assign(4, {1, 1});
  const auto r = solve_exact(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.assignment.makespan, 70);  // 40+30 on each bus
}

TEST(ExactSolver, RespectsForbiddenPairs) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{10, 100}, {10, 100}};
  p.allowed = {{0, 1}, {0, 1}};  // both forced onto the slow bus
  const auto r = solve_exact(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.assignment.makespan, 200);
  EXPECT_EQ(r.assignment.core_to_bus, (std::vector<int>{1, 1}));
}

TEST(ExactSolver, RespectsCoGroups) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{60, 60}, {60, 60}, {1, 1}};
  p.allowed.assign(3, {1, 1});
  p.co_groups = {{0, 1}};  // the two big cores must share a bus
  const auto r = solve_exact(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.assignment.core_to_bus[0], r.assignment.core_to_bus[1]);
  EXPECT_EQ(r.assignment.makespan, 120);
}

TEST(ExactSolver, RespectsWireBudget) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{10, 50}, {10, 50}};
  p.allowed.assign(2, {1, 1});
  p.wire_cost = {{9, 0}, {9, 0}};
  p.wire_budget = 9;  // only one core may take the fast-but-expensive bus
  const auto r = solve_exact(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.assignment.makespan, 50);
  EXPECT_EQ(p.check_assignment(r.assignment.core_to_bus), "");
}

TEST(ExactSolver, InfeasibleWireBudget) {
  TamProblem p;
  p.bus_widths = {8};
  p.time = {{10}};
  p.allowed = {{1}};
  p.wire_cost = {{5}};
  p.wire_budget = 4;
  const auto r = solve_exact(p);
  EXPECT_FALSE(r.feasible);
  EXPECT_TRUE(r.proved_optimal);  // proven infeasible, not aborted
}

TEST(ExactSolver, InfeasibleCoGroupVsLayout) {
  // Group members are allowed only on disjoint buses.
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{10, 10}, {10, 10}};
  p.allowed = {{1, 0}, {0, 1}};
  p.co_groups = {{0, 1}};
  EXPECT_FALSE(solve_exact(p).feasible);
}

TEST(ExactSolver, NodeLimitAborts) {
  Rng rng(5);
  testutil::RandomProblemOptions options;
  options.num_cores = 12;
  options.num_buses = 4;
  const TamProblem p = testutil::random_problem(rng, options);
  ExactSolverOptions limited;
  limited.max_nodes = 3;
  const auto r = solve_exact(p, limited);
  EXPECT_FALSE(r.proved_optimal);
}

TEST(ExactSolver, WarmStartFindsEqualOptimum) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{40, 40}, {30, 30}};
  p.allowed.assign(2, {1, 1});
  ExactSolverOptions options;
  options.initial_upper_bound = 40;  // the true optimum
  const auto r = solve_exact(p, options);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.assignment.makespan, 40);
}

TEST(ExactSolver, SymmetricBusesDoNotExplode) {
  // 16 identical cores on 4 identical buses: symmetry pruning keeps the node
  // count manageable.
  TamProblem p;
  p.bus_widths.assign(4, 8);
  p.time.assign(16, std::vector<Cycles>(4, 100));
  p.allowed.assign(16, std::vector<char>(4, 1));
  const auto r = solve_exact(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.assignment.makespan, 400);
  EXPECT_LT(r.nodes, 2'000'000);
}

class ExactVsBrute : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactVsBrute, Unconstrained) {
  Rng rng(GetParam());
  testutil::RandomProblemOptions options;
  options.num_cores = 6;
  options.num_buses = 3;
  const TamProblem p = testutil::random_problem(rng, options);
  const auto r = solve_exact(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.assignment.makespan, testutil::brute_force_makespan(p));
  EXPECT_EQ(p.check_assignment(r.assignment.core_to_bus), "");
}

TEST_P(ExactVsBrute, WithForbiddenPairs) {
  Rng rng(GetParam() + 100);
  testutil::RandomProblemOptions options;
  options.num_cores = 6;
  options.num_buses = 3;
  options.forbid_probability = 0.35;
  const TamProblem p = testutil::random_problem(rng, options);
  const Cycles brute = testutil::brute_force_makespan(p);
  const auto r = solve_exact(p);
  if (brute < 0) {
    EXPECT_FALSE(r.feasible);
  } else {
    ASSERT_TRUE(r.feasible);
    EXPECT_EQ(r.assignment.makespan, brute);
  }
}

TEST_P(ExactVsBrute, WithCoGroups) {
  Rng rng(GetParam() + 200);
  testutil::RandomProblemOptions options;
  options.num_cores = 6;
  options.num_buses = 3;
  options.num_co_pairs = 2;
  const TamProblem p = testutil::random_problem(rng, options);
  const Cycles brute = testutil::brute_force_makespan(p);
  const auto r = solve_exact(p);
  ASSERT_EQ(r.feasible, brute >= 0);
  if (brute >= 0) {
    EXPECT_EQ(r.assignment.makespan, brute);
  }
}

TEST_P(ExactVsBrute, WithWireBudget) {
  Rng rng(GetParam() + 300);
  testutil::RandomProblemOptions options;
  options.num_cores = 5;
  options.num_buses = 3;
  options.with_wire_budget = true;
  const TamProblem p = testutil::random_problem(rng, options);
  const Cycles brute = testutil::brute_force_makespan(p);
  const auto r = solve_exact(p);
  ASSERT_EQ(r.feasible, brute >= 0);
  if (brute >= 0) {
    EXPECT_EQ(r.assignment.makespan, brute);
    EXPECT_EQ(p.check_assignment(r.assignment.core_to_bus), "");
  }
}

TEST_P(ExactVsBrute, EverythingAtOnce) {
  Rng rng(GetParam() + 400);
  testutil::RandomProblemOptions options;
  options.num_cores = 6;
  options.num_buses = 2;
  options.forbid_probability = 0.2;
  options.num_co_pairs = 1;
  options.with_wire_budget = true;
  const TamProblem p = testutil::random_problem(rng, options);
  const Cycles brute = testutil::brute_force_makespan(p);
  const auto r = solve_exact(p);
  ASSERT_EQ(r.feasible, brute >= 0) << "seed " << GetParam();
  if (brute >= 0) {
    EXPECT_EQ(r.assignment.makespan, brute);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactVsBrute,
                         ::testing::Range<std::uint64_t>(0, 25));

TEST(ExactSolver, Soc1UnconstrainedIsReasonable) {
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 16);
  const TamProblem p = make_tam_problem(soc, table, {16, 16});
  const auto r = solve_exact(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proved_optimal);
  // Makespan at least half the total minimum load, at most the serial time.
  EXPECT_GE(r.assignment.makespan, p.lower_bound());
  EXPECT_LE(r.assignment.makespan, table.total_time(16));
}

}  // namespace
}  // namespace soctest
