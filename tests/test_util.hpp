#pragma once

// Shared helpers for the TAM solver test suites: a brute-force reference
// solver and a random constrained-problem generator.

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "tam/tam_problem.hpp"

namespace soctest::testutil {

/// Exhaustive reference: tries every core->bus assignment (B^N); returns the
/// optimal makespan, or -1 when no feasible assignment exists. Keep N and B
/// tiny.
inline Cycles brute_force_makespan(const TamProblem& problem) {
  const std::size_t n = problem.num_cores();
  const std::size_t b = problem.num_buses();
  std::vector<int> assignment(n, 0);
  Cycles best = -1;
  while (true) {
    if (problem.check_assignment(assignment).empty()) {
      const Cycles m = problem.makespan(assignment);
      if (best < 0 || m < best) best = m;
    }
    // Odometer increment.
    std::size_t pos = 0;
    while (pos < n) {
      if (static_cast<std::size_t>(++assignment[pos]) < b) break;
      assignment[pos] = 0;
      ++pos;
    }
    if (pos == n) break;
  }
  return best;
}

struct RandomProblemOptions {
  std::size_t num_cores = 6;
  std::size_t num_buses = 3;
  Cycles min_time = 10, max_time = 500;
  /// Probability that a (core, bus) pair is forbidden.
  double forbid_probability = 0.0;
  /// Number of co-assignment groups of size 2 to inject (disjoint).
  int num_co_pairs = 0;
  /// When true, attach random wire costs and a budget at ~60% of the max.
  bool with_wire_budget = false;
  /// When true, every bus column is identical (tests bus-symmetry pruning).
  bool identical_buses = false;
  /// When true, attach random core powers and a bus-max-sum budget that is
  /// tight enough to bite but never below the largest single power.
  bool with_bus_power = false;
};

inline TamProblem random_problem(Rng& rng, const RandomProblemOptions& options) {
  TamProblem problem;
  const std::size_t n = options.num_cores;
  const std::size_t b = options.num_buses;
  problem.bus_widths.assign(b, 8);
  problem.time.assign(n, std::vector<Cycles>(b, 0));
  problem.allowed.assign(n, std::vector<char>(b, 1));
  for (std::size_t i = 0; i < n; ++i) {
    const Cycles base = rng.uniform_int(options.min_time, options.max_time);
    for (std::size_t j = 0; j < b; ++j) {
      problem.time[i][j] = options.identical_buses
                               ? base
                               : rng.uniform_int(options.min_time, options.max_time);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < b; ++j) {
      if (rng.bernoulli(options.forbid_probability)) problem.allowed[i][j] = 0;
    }
    // Keep at least one allowed bus per core so instances stay feasible
    // unless wire budgets say otherwise.
    bool any = false;
    for (std::size_t j = 0; j < b; ++j) any = any || problem.allowed[i][j];
    if (!any) problem.allowed[i][rng.index(b)] = 1;
  }
  std::vector<std::size_t> cores(n);
  for (std::size_t i = 0; i < n; ++i) cores[i] = i;
  rng.shuffle(cores);
  for (int g = 0; g < options.num_co_pairs && 2 * (g + 1) <= static_cast<int>(n); ++g) {
    std::vector<std::size_t> group{cores[static_cast<std::size_t>(2 * g)],
                                   cores[static_cast<std::size_t>(2 * g + 1)]};
    std::sort(group.begin(), group.end());
    problem.co_groups.push_back(std::move(group));
  }
  if (options.with_bus_power) {
    double max_power = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      problem.core_power_mw.push_back(rng.uniform(100.0, 500.0));
      max_power = std::max(max_power, problem.core_power_mw.back());
    }
    // Between "one bus worth" and "every bus maxed": guaranteed feasible
    // (all cores on one bus) yet usually binding.
    problem.bus_power_budget =
        max_power * (1.0 + rng.uniform(0.2, 0.8) * static_cast<double>(b - 1));
  }
  if (options.with_wire_budget) {
    problem.wire_cost.assign(n, std::vector<long long>(b, 0));
    long long max_total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      long long worst = 0;
      for (std::size_t j = 0; j < b; ++j) {
        problem.wire_cost[i][j] =
            options.identical_buses ? 3 : rng.uniform_int(0, 20);
        worst = std::max(worst, problem.wire_cost[i][j]);
      }
      max_total += worst;
    }
    problem.wire_budget = (max_total * 3) / 5;
  }
  return problem;
}

}  // namespace soctest::testutil
