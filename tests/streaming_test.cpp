#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "report/json.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"

namespace soctest {
namespace {

// Streamed anytime results (docs/service.md): soctest-partial-v1 records
// carry every improving incumbent before the final response; gap is
// monotonically non-increasing; non-streaming requests never see one.

std::string req(const std::string& body) {
  return "{\"schema\":\"soctest-req-v1\"," + body + "}";
}

struct StreamedRun {
  std::vector<std::string> partials;
  std::string final_line;
};

/// Runs one line through a service synchronously, capturing partials.
StreamedRun streamed_roundtrip(SolveService& service,
                               const std::string& line) {
  StreamedRun run;
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  service.submit(
      line,
      [&](std::string response) {
        std::lock_guard<std::mutex> lock(mu);
        run.final_line = std::move(response);
        done = true;
        cv.notify_one();
      },
      [&](std::string partial) {
        std::lock_guard<std::mutex> lock(mu);
        run.partials.push_back(std::move(partial));
      });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  return run;
}

ServiceConfig serial_config() {
  ServiceConfig config;
  config.serial = true;
  return config;
}

TEST(Streaming, PartialJsonCarriesTheSchemaAndNoTimingFields) {
  PartialRecord record;
  record.id = "p-1";
  record.seq = 3;
  record.widths = {6, 26};
  record.t_cycles = 7056;
  record.lower_bound = 6317;
  record.gap = 0.117;
  const std::string line = partial_json(record);

  const auto doc = parse_json(line);
  ASSERT_TRUE(doc && doc->is_object()) << line;
  EXPECT_EQ(doc->string_or("schema", ""), kPartialSchema);
  EXPECT_EQ(doc->string_or("id", ""), "p-1");
  EXPECT_EQ(doc->number_or("seq", -1), 3);
  EXPECT_EQ(doc->number_or("t_cycles", -1), 7056);
  // No per-delivery timing: partial streams from a serial server must be
  // byte-identical across runs.
  EXPECT_EQ(doc->find("wall_ms"), nullptr);
  EXPECT_EQ(doc->find("queue_ms"), nullptr);
}

TEST(Streaming, WidthSearchStreamsMonotonePartialsBeforeTheFinal) {
  SolveService service(serial_config());
  const StreamedRun run = streamed_roundtrip(
      service, req("\"id\":\"s\",\"soc\":\"soc2\",\"stream\":true,"
                   "\"time_limit_ms\":5000"));

  ASSERT_FALSE(run.final_line.empty());
  ASSERT_GE(run.partials.size(), 1u)
      << "anytime width search found no incumbent to stream";

  long long prev_seq = 0;
  long long prev_t = -1;
  double prev_gap = -1.0;
  for (const std::string& line : run.partials) {
    const auto doc = parse_json(line);
    ASSERT_TRUE(doc && doc->is_object()) << line;
    EXPECT_EQ(doc->string_or("schema", ""), kPartialSchema);
    EXPECT_EQ(doc->string_or("id", ""), "s");
    const auto seq = static_cast<long long>(doc->number_or("seq", -1));
    const auto t = static_cast<long long>(doc->number_or("t_cycles", -1));
    const double gap = doc->number_or("gap", -2.0);
    EXPECT_EQ(seq, prev_seq + 1) << "seq must increment per partial";
    if (prev_t >= 0) {
      EXPECT_LT(t, prev_t) << "each partial must improve the incumbent";
    }
    if (prev_gap >= 0 && gap >= 0) {
      EXPECT_LE(gap, prev_gap) << "gap must be monotonically non-increasing";
    }
    prev_seq = seq;
    prev_t = t;
    prev_gap = gap;
  }

  // The final response reports a result at least as good as the last
  // streamed incumbent.
  const auto final_doc = parse_json(run.final_line);
  ASSERT_TRUE(final_doc && final_doc->is_object());
  EXPECT_EQ(final_doc->string_or("schema", ""), kResponseSchema);
  const auto final_t =
      static_cast<long long>(final_doc->number_or("t_cycles", -1));
  EXPECT_LE(final_t, prev_t);
}

TEST(Streaming, ExplicitWidthsStreamAtLeastTheGreedyFloor) {
  SolveService service(serial_config());
  const StreamedRun run = streamed_roundtrip(
      service, req("\"id\":\"w\",\"soc\":\"soc2\",\"widths\":[6,26],"
                   "\"stream\":true,\"time_limit_ms\":5000"));
  ASSERT_FALSE(run.final_line.empty());
  EXPECT_GE(run.partials.size(), 1u)
      << "explicit-widths requests stream the greedy floor first";
  const auto doc = parse_json(run.partials.front());
  ASSERT_TRUE(doc && doc->is_object());
  EXPECT_EQ(static_cast<long long>(doc->number_or("seq", -1)), 1);
}

TEST(Streaming, NonStreamingRequestNeverInvokesThePartialCallback) {
  SolveService service(serial_config());
  const StreamedRun run = streamed_roundtrip(
      service, req("\"id\":\"q\",\"soc\":\"soc2\",\"time_limit_ms\":5000"));
  ASSERT_FALSE(run.final_line.empty());
  EXPECT_TRUE(run.partials.empty())
      << "a request without \"stream\":true saw a partial";
}

TEST(Streaming, CacheHitAnswersWithoutPartials) {
  SolveService service(serial_config());
  // Cold solve (no deadline, so the outcome is cacheable) ...
  const StreamedRun cold = streamed_roundtrip(
      service, req("\"id\":\"c1\",\"soc\":\"soc2\",\"stream\":true"));
  ASSERT_FALSE(cold.final_line.empty());
  // ... and the warm repeat answers from the cache with no stream.
  const StreamedRun warm = streamed_roundtrip(
      service, req("\"id\":\"c2\",\"soc\":\"soc2\",\"stream\":true"));
  ASSERT_NE(warm.final_line.find("\"cached\":true"), std::string::npos)
      << warm.final_line;
  EXPECT_TRUE(warm.partials.empty()) << "cache hits must not stream";
}

TEST(Streaming, StreamFlagIsDeliveryOnlyAndNotPartOfTheCacheKey) {
  SolveService service(serial_config());
  const StreamedRun plain = streamed_roundtrip(
      service, req("\"id\":\"k1\",\"soc\":\"soc3\",\"solver\":\"greedy\""));
  const StreamedRun streamed = streamed_roundtrip(
      service, req("\"id\":\"k2\",\"soc\":\"soc3\",\"solver\":\"greedy\","
                   "\"stream\":true"));
  ASSERT_NE(streamed.final_line.find("\"cached\":true"), std::string::npos)
      << "identical request with stream:true must hit the cache entry "
      << "filled by the non-streaming run, got: " << streamed.final_line;
  (void)plain;
}

TEST(Streaming, SerialStreamedBatchIsByteIdenticalAcrossRuns) {
  const auto run_batch = [] {
    SolveService service(serial_config());
    std::vector<std::string> lines;
    for (const char* body :
         {"\"id\":\"b1\",\"soc\":\"soc2\",\"stream\":true,"
          "\"time_limit_ms\":5000",
          "\"id\":\"b2\",\"soc\":\"soc3\",\"solver\":\"greedy\","
          "\"stream\":true"}) {
      const StreamedRun run = streamed_roundtrip(service, req(body));
      for (const auto& p : run.partials) lines.push_back(p);
      lines.push_back(run.final_line);
    }
    return lines;
  };
  // Partials carry no timing fields and serial mode omits them from the
  // final, so the full streamed transcript is reproducible byte for byte.
  EXPECT_EQ(run_batch(), run_batch());
}

// -------------------------------------------------- client batch summary --

TEST(ClientSummary, CountsFinalsAndPartialsAndFindsMissingIds) {
  const std::vector<std::string> requests = {
      req("\"id\":\"a\",\"soc\":\"soc1\""),
      req("\"id\":\"b\",\"soc\":\"soc2\",\"stream\":true"),
      req("\"id\":\"c\",\"soc\":\"soc3\""),
  };
  const std::vector<std::string> responses = {
      // Partials interleave and arrive before b's final; a and b answer
      // out of request order. c never answers.
      "{\"schema\":\"soctest-partial-v1\",\"id\":\"b\",\"seq\":1,"
      "\"widths\":[1,31],\"t_cycles\":10,\"lower_bound\":5,\"gap\":1.0}",
      "{\"schema\":\"soctest-resp-v1\",\"id\":\"b\",\"ok\":true}",
      "{\"schema\":\"soctest-resp-v1\",\"id\":\"a\",\"ok\":true}",
  };
  const ClientBatchSummary summary =
      summarize_client_batch(requests, responses);
  EXPECT_EQ(summary.requests, 3u);
  EXPECT_EQ(summary.finals, 2u);
  EXPECT_EQ(summary.partials, 1u);
  ASSERT_EQ(summary.missing_ids.size(), 1u);
  EXPECT_EQ(summary.missing_ids[0], "c");
}

TEST(ClientSummary, DuplicateIdsAreMatchedAsAMultiset) {
  const std::vector<std::string> requests = {
      req("\"id\":\"dup\",\"soc\":\"soc1\""),
      req("\"id\":\"dup\",\"soc\":\"soc1\""),
  };
  const std::vector<std::string> one_answer = {
      "{\"schema\":\"soctest-resp-v1\",\"id\":\"dup\",\"ok\":true}",
  };
  ClientBatchSummary summary = summarize_client_batch(requests, one_answer);
  EXPECT_EQ(summary.finals, 1u);
  ASSERT_EQ(summary.missing_ids.size(), 1u);
  EXPECT_EQ(summary.missing_ids[0], "dup");

  const std::vector<std::string> both = {
      "{\"schema\":\"soctest-resp-v1\",\"id\":\"dup\",\"ok\":true}",
      "{\"schema\":\"soctest-resp-v1\",\"id\":\"dup\",\"ok\":true}",
  };
  summary = summarize_client_batch(requests, both);
  EXPECT_EQ(summary.finals, 2u);
  EXPECT_TRUE(summary.missing_ids.empty());
}

}  // namespace
}  // namespace soctest
