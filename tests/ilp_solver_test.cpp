#include <gtest/gtest.h>

#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/ilp_solver.hpp"
#include "test_util.hpp"

namespace soctest {
namespace {

TEST(TamIlpModel, VariableAndRowCounts) {
  TamProblem p;
  p.bus_widths = {8, 8, 8};
  p.time.assign(4, std::vector<Cycles>(3, 10));
  p.allowed.assign(4, std::vector<char>(3, 1));
  const LinearProgram lp = build_tam_ilp(p);
  EXPECT_EQ(lp.num_variables(), 4 * 3 + 1);      // x_ij + T
  EXPECT_EQ(lp.num_rows(), 4 + 3);               // assignment + load rows
}

TEST(TamIlpModel, ForbiddenPairsFixedToZero) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{10, 20}};
  p.allowed = {{0, 1}};
  const LinearProgram lp = build_tam_ilp(p);
  EXPECT_DOUBLE_EQ(lp.variable(0).upper, 0.0);  // x_00 forbidden
  EXPECT_DOUBLE_EQ(lp.variable(1).upper, 1.0);
}

TEST(TamIlpModel, CoGroupRowsPresent) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time.assign(3, std::vector<Cycles>(2, 10));
  p.allowed.assign(3, std::vector<char>(2, 1));
  p.co_groups = {{0, 2}};
  const LinearProgram lp = build_tam_ilp(p);
  EXPECT_EQ(lp.num_rows(), 3 + 2 + 2);  // assignment + load + 2 cogroup rows
}

TEST(TamIlpModel, WireBudgetRowPresent) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time.assign(2, std::vector<Cycles>(2, 10));
  p.allowed.assign(2, std::vector<char>(2, 1));
  p.wire_cost = {{1, 2}, {3, 4}};
  p.wire_budget = 5;
  const LinearProgram lp = build_tam_ilp(p);
  EXPECT_EQ(lp.num_rows(), 2 + 2 + 1);
}

TEST(IlpSolver, TinyHandComputed) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{40, 40}, {30, 30}, {20, 20}};
  p.allowed.assign(3, {1, 1});
  const auto r = solve_ilp(p);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proved_optimal);
  EXPECT_EQ(r.assignment.makespan, 50);  // {40+? no: 40 | 30+20}
}

TEST(IlpSolver, DetectsInfeasibility) {
  TamProblem p;
  p.bus_widths = {8, 8};
  p.time = {{10, 10}, {10, 10}};
  p.allowed = {{1, 0}, {0, 1}};
  p.co_groups = {{0, 1}};
  const auto r = solve_ilp(p);
  EXPECT_FALSE(r.feasible);
}

/// The headline cross-check: the ILP route (paper's method) and the
/// combinatorial branch & bound must agree on the optimal makespan across
/// every constraint combination.
class IlpVsExact : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IlpVsExact, Unconstrained) {
  Rng rng(GetParam());
  testutil::RandomProblemOptions options;
  options.num_cores = 5;
  options.num_buses = 2;
  const TamProblem p = testutil::random_problem(rng, options);
  const auto ilp = solve_ilp(p);
  const auto exact = solve_exact(p);
  ASSERT_TRUE(ilp.feasible);
  ASSERT_TRUE(exact.feasible);
  EXPECT_EQ(ilp.assignment.makespan, exact.assignment.makespan);
}

TEST_P(IlpVsExact, Constrained) {
  Rng rng(GetParam() + 500);
  testutil::RandomProblemOptions options;
  options.num_cores = 5;
  options.num_buses = 2;
  options.forbid_probability = 0.25;
  options.num_co_pairs = 1;
  const TamProblem p = testutil::random_problem(rng, options);
  const auto ilp = solve_ilp(p);
  const auto exact = solve_exact(p);
  ASSERT_EQ(ilp.feasible, exact.feasible) << "seed " << GetParam();
  if (exact.feasible) {
    EXPECT_EQ(ilp.assignment.makespan, exact.assignment.makespan);
    EXPECT_EQ(p.check_assignment(ilp.assignment.core_to_bus), "");
  }
}

TEST_P(IlpVsExact, WithWireBudget) {
  Rng rng(GetParam() + 900);
  testutil::RandomProblemOptions options;
  options.num_cores = 4;
  options.num_buses = 2;
  options.with_wire_budget = true;
  const TamProblem p = testutil::random_problem(rng, options);
  const auto ilp = solve_ilp(p);
  const auto exact = solve_exact(p);
  ASSERT_EQ(ilp.feasible, exact.feasible);
  if (exact.feasible) {
    EXPECT_EQ(ilp.assignment.makespan, exact.assignment.makespan);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IlpVsExact,
                         ::testing::Range<std::uint64_t>(0, 15));

TEST(IlpSolver, Soc2EndToEnd) {
  const Soc soc = builtin_soc2();
  const TestTimeTable table(soc, 16);
  const TamProblem p = make_tam_problem(soc, table, {16, 8});
  const auto ilp = solve_ilp(p);
  const auto exact = solve_exact(p);
  ASSERT_TRUE(ilp.feasible);
  EXPECT_TRUE(ilp.proved_optimal);
  EXPECT_EQ(ilp.assignment.makespan, exact.assignment.makespan);
}

}  // namespace
}  // namespace soctest
