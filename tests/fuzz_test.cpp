// Robustness ("fuzz-ish") tests: the text parsers must never crash on
// malformed input — only throw std::runtime_error (soc format) or report
// an error string (json_check). Seeded random mutations of valid documents
// plus pure-noise inputs.

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "pack/exact_pack.hpp"
#include "pack/skyline.hpp"
#include "report/json.hpp"
#include "soc/builtin.hpp"
#include "soc/soc_format.hpp"

namespace soctest {
namespace {

std::string mutate(const std::string& base, Rng& rng, int edits) {
  std::string s = base;
  for (int e = 0; e < edits && !s.empty(); ++e) {
    const std::size_t pos = rng.index(s.size());
    switch (rng.uniform_int(0, 3)) {
      case 0:  // flip a character
        s[pos] = static_cast<char>(rng.uniform_int(32, 126));
        break;
      case 1:  // delete a character
        s.erase(pos, 1);
        break;
      case 2:  // duplicate a chunk
        s.insert(pos, s.substr(pos, std::min<std::size_t>(8, s.size() - pos)));
        break;
      case 3:  // insert noise
        s.insert(pos, std::string(1, static_cast<char>(rng.uniform_int(1, 126))));
        break;
    }
  }
  return s;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, SocParserNeverCrashes) {
  Rng rng(GetParam());
  const std::string base = write_soc(builtin_soc1());
  for (int trial = 0; trial < 50; ++trial) {
    const std::string text =
        mutate(base, rng, static_cast<int>(rng.uniform_int(1, 30)));
    try {
      const Soc soc = read_soc_string(text);
      // If it parsed, it must be semantically valid (the parser validates).
      EXPECT_EQ(soc.validate(), "");
    } catch (const std::runtime_error&) {
      // expected for malformed input
    } catch (const std::invalid_argument&) {
      // bounds violations surfaced during construction are acceptable too
    }
  }
}

TEST_P(FuzzSeeds, SocParserPureNoise) {
  Rng rng(GetParam() + 5000);
  for (int trial = 0; trial < 30; ++trial) {
    std::string noise;
    const auto len = static_cast<std::size_t>(rng.uniform_int(0, 300));
    for (std::size_t k = 0; k < len; ++k) {
      noise += static_cast<char>(rng.uniform_int(1, 126));
    }
    try {
      (void)read_soc_string(noise);
    } catch (const std::exception&) {
      // any std::exception is fine; crashes/UB are not
    }
  }
}

TEST_P(FuzzSeeds, JsonCheckerNeverCrashes) {
  Rng rng(GetParam() + 9000);
  const std::string base =
      R"({"name":"x","list":[1,2.5,-3e2,true,null],"nested":{"a":"b\nc"}})";
  for (int trial = 0; trial < 100; ++trial) {
    const std::string text =
        mutate(base, rng, static_cast<int>(rng.uniform_int(1, 20)));
    (void)json_check(text);  // must terminate without crashing
  }
  // Pathological inputs.
  (void)json_check(std::string(1000, '['));
  (void)json_check(std::string(1000, '{'));
  (void)json_check("\"" + std::string(500, '\\'));
}

// Random PackProblems with adversarial menus (not derived from any SOC):
// whatever the solvers emit must pass the independent feasibility oracle,
// and the three solvers must respect their dominance contracts.
PackProblem random_pack_problem(Rng& rng) {
  PackProblem p;
  p.total_width = static_cast<int>(rng.uniform_int(3, 16));
  const int n = static_cast<int>(rng.uniform_int(1, 8));
  for (int i = 0; i < n; ++i) {
    std::vector<PackRect> menu;
    int width = static_cast<int>(rng.uniform_int(1, p.total_width));
    Cycles time = rng.uniform_int(5, 200);
    // Walk widths upward / times strictly downward so the menu is a valid
    // Pareto staircase by construction.
    while (true) {
      menu.push_back({width, time});
      if (menu.size() >= 4 || rng.bernoulli(0.4)) break;
      width += static_cast<int>(rng.uniform_int(1, 4));
      if (width > p.total_width || time <= 1) break;
      time -= rng.uniform_int(1, std::max<Cycles>(1, time / 2));
      if (time < 1) break;
    }
    p.menu.push_back(std::move(menu));
  }
  if (rng.bernoulli(0.5)) {
    double tallest = 0;
    for (int i = 0; i < n; ++i) {
      p.power_mw.push_back(rng.uniform(50.0, 300.0));
      tallest = std::max(tallest, p.power_mw.back());
    }
    p.p_max_mw = tallest * rng.uniform(1.2, 2.5);
  }
  return p;
}

TEST_P(FuzzSeeds, PackSolversSatisfyTheOracleOnRandomProblems) {
  Rng rng(GetParam() + 13000);
  for (int trial = 0; trial < 20; ++trial) {
    const PackProblem problem = random_pack_problem(rng);
    ASSERT_EQ(problem.validate(), "");
    const PackSolveResult sky = solve_pack_skyline(problem);
    PackSolverOptions repair;
    repair.sa_iterations = 400;
    const PackSolveResult repaired = solve_pack(problem, repair);
    PackExactOptions budgeted;
    budgeted.max_nodes = 20000;
    const PackSolveResult exact = solve_pack_exact(problem, budgeted);
    for (const PackSolveResult* r : {&sky, &repaired, &exact}) {
      ASSERT_TRUE(r->feasible);
      EXPECT_EQ(check_packing(problem, r->placements, r->makespan), "");
      EXPECT_GE(r->makespan, problem.lower_bound());
    }
    EXPECT_LE(repaired.makespan, sky.makespan);
    EXPECT_LE(exact.makespan, sky.makespan);  // warm-started from it
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds, ::testing::Range<std::uint64_t>(0, 8));

TEST(Fuzz, DeepJsonNestingTerminates) {
  // 10k-deep nesting: the validator is recursive, so keep the depth below
  // stack limits but large enough to prove linear behavior.
  std::string deep;
  for (int i = 0; i < 2000; ++i) deep += "[";
  for (int i = 0; i < 2000; ++i) deep += "]";
  EXPECT_EQ(json_check(deep), "");
  deep.pop_back();
  EXPECT_NE(json_check(deep), "");
}

}  // namespace
}  // namespace soctest
