// Figure 8 (extension, after the multisite ATE-resource line): test
// throughput versus site count for a fixed tester channel budget. More
// sites test more chips at once but starve each chip of TAM width. Shape
// check: per-chip test time is non-increasing in per-site width; the
// throughput curve rises while the SOC's test time is width-saturated and
// peaks at an interior site count.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "soc/builtin.hpp"
#include "tam/multisite.hpp"

using namespace soctest;

namespace {

void sweep(const Soc& soc, int channels) {
  std::printf("-- %s on a %d-channel tester --\n", soc.name().c_str(), channels);
  MultisiteOptions options;
  options.num_buses = 2;
  options.max_sites = 12;
  Table out({"sites", "width/site", "T_chip", "kchips_per_Mcycle"});
  for (const auto& point : multisite_sweep(soc, channels, options)) {
    out.row().add(point.sites).add(point.width_per_site);
    if (!point.feasible) {
      out.add("-").add("-");
      continue;
    }
    out.add(point.test_time).add(point.throughput_kchips, 1);
  }
  std::cout << out.to_ascii();
  const auto best = best_multisite(soc, channels, options);
  std::printf("best: %d sites x %d wires -> %.1f kchips/Mcycle\n\n",
              best.sites, best.width_per_site, best.throughput_kchips);
}

}  // namespace

int main() {
  std::cout << benchutil::header(
      "Figure 8", "multisite throughput vs site count (B=2 per chip)");
  sweep(builtin_soc2(), 64);
  sweep(builtin_soc1(), 64);
  return 0;
}
