// Figure 10 (extension): session-based (BIST-style) scheduling versus
// TAM-bus scheduling across the power budget sweep — what does dedicated
// TAM hardware buy over the older session model? In a session schedule all
// members start together and wait for the slowest; a TAM bus streams cores
// back to back. Shape check: at loose budgets sessions exploit unlimited
// concurrency (no bus count limit) and can win; as the budget tightens the
// session model degrades toward Σ t_i while the 2-bus TAM holds its
// balanced makespan until serialization forces it up too.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sched/sessions.hpp"
#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/power.hpp"
#include "tam/tam_problem.hpp"

using namespace soctest;

int main() {
  std::cout << benchutil::header(
      "Figure 10", "session-based vs TAM-bus scheduling, soc1, width 16");
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 16);
  // Sessions: every core wrapped at width 16 (cores in a session each own a
  // 16-bit interface — BIST-style, no shared transport). TAM: two 16-bit
  // buses (32 wires total transport).
  const auto times = session_times(soc, table, 16);
  const auto powers = session_powers(soc);
  const TamProblem bus_base = make_tam_problem(soc, table, {16, 16});

  Table out({"P_max[mW]", "T_sessions", "num_sessions", "T_tam_2bus",
             "sessions/tam"});
  for (int p_max = 3400; p_max >= 1200; p_max -= 200) {
    out.row().add(p_max);
    if (!overbudget_cores(soc, p_max).empty()) {
      out.add("-").add("-").add("-").add("-");
      continue;
    }
    const auto sessions =
        schedule_sessions_exact(times, powers, static_cast<double>(p_max));
    const TamProblem bus_problem = make_tam_problem(
        soc, table, {16, 16}, nullptr, -1, static_cast<double>(p_max));
    const auto bus = solve_exact(bus_problem);
    if (!sessions.feasible || !bus.feasible) {
      out.add("-").add("-").add("-").add("-");
      continue;
    }
    out.add(sessions.schedule.total_time)
        .add(sessions.schedule.sessions.size())
        .add(bus.assignment.makespan)
        .add(static_cast<double>(sessions.schedule.total_time) /
                 static_cast<double>(bus.assignment.makespan),
             3);
  }
  std::cout << out.to_ascii();
  std::printf(
      "\n(sessions assume every concurrent core gets its own 16-bit\n"
      "interface — more pins, no transport sharing; the TAM column shares\n"
      "32 wires total. The crossover quantifies the TAM's pin efficiency.)\n\n");
  return 0;
}
