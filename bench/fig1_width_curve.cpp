// Figure 1: optimal system test time vs total TAM width W, one series per
// bus count B (the paper's test-time/width trade-off curves). Shape check:
// every series is non-increasing in W with diminishing returns; for small W
// fewer buses win (wider pipes), for large W more buses win (parallelism);
// curves flatten once every core sits at its Pareto-minimal time.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "soc/builtin.hpp"
#include "tam/width_partition.hpp"

using namespace soctest;

int main() {
  std::cout << benchutil::header(
      "Figure 1", "optimal test time vs total width W (series per B), soc1");
  const Soc soc = builtin_soc1();
  Table out({"W", "B=1", "B=2", "B=3", "B=4"});
  for (int total_width = 8; total_width <= 64; total_width += 4) {
    out.row().add(total_width);
    for (int num_buses = 1; num_buses <= 4; ++num_buses) {
      if (total_width < num_buses) {
        out.add("-");
        continue;
      }
      const TestTimeTable table(soc, total_width - (num_buses - 1));
      const auto result = optimize_widths(soc, table, num_buses, total_width);
      out.add(result.feasible ? std::to_string(result.assignment.makespan)
                              : std::string("-"));
    }
  }
  std::cout << out.to_ascii();
  std::cout << "\nCSV series for plotting:\n" << out.to_csv() << "\n";
  return 0;
}
