// Figure 9 (extension): value of pattern-boundary preemption under power
// constraints. Three schedule-level strategies realize the same
// power-oblivious optimal assignment across a budget sweep:
// (a) non-preemptive idle insertion, (b) preemptive LRPT, and (c) the
// paper-style pairwise re-assignment for reference. Shape check:
// preemption never violates the budget, needs few segment splits, and
// recovers most of the idle time the non-preemptive scheduler inserts at
// tight budgets.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sched/power_sched.hpp"
#include "sched/preemptive.hpp"
#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/power.hpp"
#include "tam/tam_problem.hpp"

using namespace soctest;

int main() {
  std::cout << benchutil::header(
      "Figure 9", "preemptive vs non-preemptive power scheduling, soc1, widths 16/16");
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 16);
  const TamProblem problem = make_tam_problem(soc, table, {16, 16});
  const auto solved = solve_exact(problem);
  std::printf("assignment: unconstrained optimum, T = %lld\n\n",
              static_cast<long long>(solved.assignment.makespan));

  Table out({"P_max[mW]", "T_nonpreemptive", "T_preemptive", "preemptions",
             "T_pairwise", "saved_vs_np%"});
  for (int p_max = 2200; p_max >= 1200; p_max -= 100) {
    out.row().add(p_max);
    if (!overbudget_cores(soc, p_max).empty()) {
      out.add("-").add("-").add("-").add("-").add("-");
      continue;
    }
    PowerScheduleOptions np_options;
    np_options.p_max_mw = p_max;
    const auto np = build_power_aware_schedule(
        problem, soc, solved.assignment.core_to_bus, np_options);
    const auto pre = build_preemptive_schedule(
        problem, soc, solved.assignment.core_to_bus, p_max);
    const TamProblem pairwise_problem = make_tam_problem(
        soc, table, {16, 16}, nullptr, -1, static_cast<double>(p_max));
    const auto pairwise = solve_exact(pairwise_problem);
    if (!np.feasible || !pre.feasible) {
      out.add("-").add("-").add("-").add("-").add("-");
      continue;
    }
    out.add(np.schedule.makespan)
        .add(pre.schedule.makespan)
        .add(pre.preemptions)
        .add(pairwise.feasible ? std::to_string(pairwise.assignment.makespan)
                               : std::string("-"))
        .add(100.0 * (1.0 - static_cast<double>(pre.schedule.makespan) /
                                static_cast<double>(np.schedule.makespan)),
             1);
  }
  std::cout << out.to_ascii() << "\n";
  return 0;
}
