// Figure 4 (extension): pairwise serialization (the DAC 2000 constraint)
// versus schedule-level idle insertion, across the power budget sweep.
// Pairwise re-optimizes the assignment under co-assignment constraints;
// idle insertion keeps the power-oblivious optimal assignment and delays
// test starts instead. Shape check: both meet the budget (B=2 makes the
// pairwise guarantee exact); idle insertion wins where pairwise is merely
// pessimistic, pairwise wins at tight budgets where re-assignment matters;
// the best-of-both column is the practical flow.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <limits>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sched/power_profile.hpp"
#include "sched/power_sched.hpp"
#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/power.hpp"
#include "tam/tam_problem.hpp"

using namespace soctest;

int main() {
  std::cout << benchutil::header(
      "Figure 4",
      "pairwise serialization vs idle insertion, soc1, widths 16/16");
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 16);
  const TamProblem free_problem = make_tam_problem(soc, table, {16, 16});
  const auto free_solved = solve_exact(free_problem);
  std::printf("unconstrained optimum: %lld cycles\n\n",
              static_cast<long long>(free_solved.assignment.makespan));

  Table out({"P_max[mW]", "T_pairwise", "T_idle", "idle_cycles", "winner",
             "T_best", "best_overhead%"});
  for (int p_max = 3400; p_max >= 1200; p_max -= 100) {
    out.row().add(p_max);
    if (!overbudget_cores(soc, p_max).empty()) {
      out.add("-").add("-").add("-").add("-").add("-").add("-");
      continue;
    }
    const TamProblem constrained = make_tam_problem(
        soc, table, {16, 16}, nullptr, -1, static_cast<double>(p_max));
    const auto pairwise = solve_exact(constrained);
    PowerScheduleOptions options;
    options.p_max_mw = p_max;
    const auto idle = build_power_aware_schedule(
        free_problem, soc, free_solved.assignment.core_to_bus, options);
    if (!pairwise.feasible && !idle.feasible) {
      out.add("-").add("-").add("-").add("-").add("-").add("-");
      continue;
    }
    const Cycles tp = pairwise.feasible
                          ? pairwise.assignment.makespan
                          : std::numeric_limits<Cycles>::max();
    const Cycles ti = idle.feasible ? idle.schedule.makespan
                                    : std::numeric_limits<Cycles>::max();
    const Cycles best = std::min(tp, ti);
    out.add(pairwise.feasible ? std::to_string(tp) : std::string("-"))
        .add(idle.feasible ? std::to_string(ti) : std::string("-"))
        .add(idle.feasible ? std::to_string(idle.idle_inserted) : std::string("-"))
        .add(tp == ti ? "tie" : (tp < ti ? "pairwise" : "idle"))
        .add(best)
        .add(100.0 * (static_cast<double>(best) /
                          static_cast<double>(free_solved.assignment.makespan) -
                      1.0),
             1);
  }
  std::cout << out.to_ascii();
  std::cout << "\nCSV series for plotting:\n" << out.to_csv() << "\n";
  return 0;
}
