// Figure 11 (extension): cycle counts are not wall-clock time once wire
// delay throttles each bus's scan clock. For each width configuration the
// plain cycle-optimal assignment and the lexicographic (wire-minimal)
// assignment tie in cycles by construction — but their achievable clock
// periods differ. Shape check: lex never pays cycles, usually wins
// wall-clock; the advantage grows with the wire-delay coefficient.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/timing.hpp"

using namespace soctest;

int main() {
  std::cout << benchutil::header(
      "Figure 11", "wire-delay-aware wall-clock test time: plain vs lex, soc1");
  const Soc soc = builtin_soc1();
  const BusPlan plan = plan_buses(soc, 3);
  const LayoutConstraints layout(plan, soc.num_cores(), -1);
  const TestTimeTable table(soc, 16);
  const TamProblem problem = make_tam_problem(soc, table, {16, 16, 16}, &layout);
  const auto plain = solve_exact(problem);
  const auto lex = solve_exact_lex(problem);
  std::printf("cycles (both): %lld; stub wire plain %lld vs lex %lld\n\n",
              static_cast<long long>(plain.assignment.makespan),
              layout.assignment_wirelength(plain.assignment.core_to_bus),
              layout.assignment_wirelength(lex.assignment.core_to_bus));

  Table out({"per_cell_ns", "T_plain[us]", "T_lex[us]", "lex_saves%"});
  for (double per_cell : {0.0, 0.02, 0.05, 0.08, 0.12, 0.2, 0.4}) {
    TamClockModel model;
    model.per_cell_ns = per_cell;
    const double t_plain = wall_clock_test_time_ns(
        problem, plan, plain.assignment.core_to_bus, model);
    const double t_lex =
        wall_clock_test_time_ns(problem, plan, lex.assignment.core_to_bus, model);
    out.row()
        .add(per_cell, 2)
        .add(t_plain / 1000.0, 1)
        .add(t_lex / 1000.0, 1)
        .add(100.0 * (1.0 - t_lex / t_plain), 2);
  }
  std::cout << out.to_ascii();
  std::printf(
      "\n(at per_cell_ns = 0 the designs tie exactly; growing wire delay\n"
      "monetizes the lexicographic optimizer's shorter stubs)\n\n");
  return 0;
}
