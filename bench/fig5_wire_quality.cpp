// Figure 5 (extension): wiring quality of the chosen architecture. For each
// width configuration on soc1, (a) the plain exact optimum is compared to
// the lexicographic optimum (same test time, minimum stub wirelength), and
// (b) both assignments' stubs are detail-routed, reporting wirelength and
// channel overflow with and without congestion awareness. Shape check: lex
// never worsens test time, strictly reduces abstract wirelength whenever
// the optimum has slack, and the routed/abstract lengths track each other;
// congestion-aware routing trades a few extra grid edges for fewer
// overflowing channel cells.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "layout/stub_router.hpp"
#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/tam_problem.hpp"

using namespace soctest;

int main() {
  std::cout << benchutil::header(
      "Figure 5", "lexicographic wire minimization + detailed stub routing, soc1");
  const Soc soc = builtin_soc1();
  const BusPlan plan = plan_buses(soc, 3);
  const LayoutConstraints layout(plan, soc.num_cores(), -1);

  Table out({"widths", "T_opt", "wire_plain", "wire_lex", "saved%",
             "routed_lex", "overflow_sp", "overflow_ca"});
  const std::vector<std::vector<int>> configs{
      {8, 8, 8}, {16, 8, 8}, {16, 16, 8}, {16, 16, 16}, {24, 16, 8}, {32, 16, 16}};
  for (const auto& widths : configs) {
    const int max_width = *std::max_element(widths.begin(), widths.end());
    const TestTimeTable table(soc, max_width);
    const TamProblem problem = make_tam_problem(soc, table, widths, &layout);
    const auto plain = solve_exact(problem);
    const auto lex = solve_exact_lex(problem);
    if (!plain.feasible || !lex.feasible) continue;
    const long long wire_plain =
        layout.assignment_wirelength(plain.assignment.core_to_bus);
    const long long wire_lex =
        layout.assignment_wirelength(lex.assignment.core_to_bus);
    if (lex.assignment.makespan != plain.assignment.makespan) {
      std::printf("LEX CHANGED THE MAKESPAN — bug!\n");
      return 1;
    }
    StubRouterOptions shortest;
    shortest.congestion_aware = false;
    const auto routed_sp = route_stubs(soc, plan, lex.assignment.core_to_bus, shortest);
    const auto routed_ca = route_stubs(soc, plan, lex.assignment.core_to_bus);
    std::string label;
    for (std::size_t j = 0; j < widths.size(); ++j) {
      label += (j ? "/" : "") + std::to_string(widths[j]);
    }
    out.row()
        .add(label)
        .add(plain.assignment.makespan)
        .add(wire_plain)
        .add(wire_lex)
        .add(wire_plain > 0
                 ? 100.0 * (1.0 - static_cast<double>(wire_lex) /
                                      static_cast<double>(wire_plain))
                 : 0.0,
             1)
        .add(routed_ca.total_length)
        .add(routed_sp.overflow_cells)
        .add(routed_ca.overflow_cells);
  }
  std::cout << out.to_ascii();
  std::cout << "\n(wire_* = abstract detour sums; routed_lex = detail-routed "
               "stub edges;\n overflow_* = channel cells above capacity 3, "
               "shortest-path vs congestion-aware)\n\n";

  // Channel-capacity sweep at the 16/16/16 configuration: how tight can the
  // channels get before detailed routing overflows, and how much does
  // congestion awareness buy?
  {
    const TestTimeTable table(soc, 16);
    const TamProblem problem =
        make_tam_problem(soc, table, {16, 16, 16}, &layout);
    const auto lex = solve_exact_lex(problem);
    Table sweep({"cell_capacity", "overflow_shortest", "overflow_congestion",
                 "len_shortest", "len_congestion"});
    for (int capacity : {4, 3, 2, 1}) {
      StubRouterOptions sp;
      sp.congestion_aware = false;
      sp.cell_capacity = capacity;
      StubRouterOptions ca;
      ca.cell_capacity = capacity;
      const auto routed_sp = route_stubs(soc, plan, lex.assignment.core_to_bus, sp);
      const auto routed_ca = route_stubs(soc, plan, lex.assignment.core_to_bus, ca);
      sweep.row()
          .add(capacity)
          .add(routed_sp.overflow_cells)
          .add(routed_ca.overflow_cells)
          .add(routed_sp.total_length)
          .add(routed_ca.total_length);
    }
    std::cout << "channel capacity sweep (widths 16/16/16):\n"
              << sweep.to_ascii() << "\n";
  }
  return 0;
}
