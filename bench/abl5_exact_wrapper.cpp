// Ablation A5: how much optimality does the BFD wrapper-chain packer give
// away against the exact (branch & bound) multiway partitioner? Shape
// check: zero gap on balanced provider chains (soc1) and on widths where a
// single chain dominates; small but real gaps on skewed chain mixes at
// intermediate widths — and the exact solve stays cheap at realistic chain
// counts.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "soc/builtin.hpp"
#include "wrapper/wrapper.hpp"

using namespace soctest;

int main() {
  std::cout << benchutil::header(
      "Ablation A5", "BFD vs exact wrapper-chain partitioning");

  std::cout << "-- soc1 provider cores --\n";
  {
    const Soc soc = builtin_soc1();
    int gaps = 0, points = 0;
    for (const auto& core : soc.cores()) {
      if (core.scan_chain_lengths.size() < 2) continue;
      for (int w : {2, 3, 4, 6, 8, 12}) {
        const Cycles bfd = core_test_time(core, w);
        const Cycles exact = core_test_time_exact(core, w);
        ++points;
        if (exact < bfd) ++gaps;
      }
    }
    std::printf("BFD suboptimal in %d/%d (core,width) points "
                "(balanced chains: heuristic is effectively exact)\n\n",
                gaps, points);
  }

  std::cout << "-- skewed synthetic cores --\n";
  Rng rng(42);
  Table out({"chains", "w", "t_bfd", "t_exact", "gap%", "bb_nodes_ok"});
  double worst_gap = 0;
  for (int trial = 0; trial < 10; ++trial) {
    Core c;
    c.name = "skew";
    c.num_inputs = static_cast<int>(rng.uniform_int(5, 30));
    c.num_outputs = static_cast<int>(rng.uniform_int(5, 30));
    c.num_patterns = static_cast<int>(rng.uniform_int(40, 200));
    const int chains = static_cast<int>(rng.uniform_int(5, 11));
    for (int k = 0; k < chains; ++k) {
      c.scan_chain_lengths.push_back(static_cast<int>(rng.uniform_int(3, 150)));
    }
    for (int w : {2, 3, 4}) {
      const Cycles bfd = core_test_time(c, w);
      const Cycles exact = core_test_time_exact(c, w);
      const double gap = 100.0 * (static_cast<double>(bfd) /
                                      static_cast<double>(exact) -
                                  1.0);
      worst_gap = std::max(worst_gap, gap);
      out.row()
          .add(chains)
          .add(w)
          .add(bfd)
          .add(exact)
          .add(gap, 2)
          .add("yes");
    }
  }
  std::cout << out.to_ascii();
  std::printf("\nworst BFD gap observed: %.2f%% of test time\n\n", worst_gap);
  return 0;
}
