// Google-benchmark microbenchmarks for the hot kernels: wrapper design,
// test-time table construction, maze routing, simplex, and the TAM solvers.
// Results default to machine-readable JSON in BENCH_micro.json (pass your
// own --benchmark_out=... to override).

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "ilp/simplex.hpp"
#include "soc/builtin.hpp"
#include "soc/generator.hpp"
#include "tam/exact_solver.hpp"
#include "tam/heuristics.hpp"
#include "tam/ilp_solver.hpp"
#include "tam/portfolio.hpp"
#include "tam/search_core.hpp"
#include "tam/staircase.hpp"
#include "wrapper/test_time_table.hpp"

namespace soctest {
namespace {

void BM_WrapperDesign(benchmark::State& state) {
  const Soc soc = builtin_soc1();
  const auto idx = *soc.find_core("s38417");
  const int w = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(design_wrapper(soc.core(idx), w));
  }
}
BENCHMARK(BM_WrapperDesign)->Arg(4)->Arg(16)->Arg(64);

void BM_TestTimeTable(benchmark::State& state) {
  const Soc soc = builtin_soc1();
  const int max_width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    TestTimeTable table(soc, max_width);
    benchmark::DoNotOptimize(table.time(0, max_width));
  }
}
BENCHMARK(BM_TestTimeTable)->Arg(16)->Arg(64);

void BM_BusPlanning(benchmark::State& state) {
  const Soc soc = builtin_soc1();
  const int buses = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_buses(soc, buses));
  }
}
BENCHMARK(BM_BusPlanning)->Arg(2)->Arg(4);

// TamProblem is self-contained (matrices are copied in), so the SOC and
// table can be temporaries.
TamProblem sized_problem(int n) {
  Rng rng(static_cast<std::uint64_t>(n));
  SocGeneratorOptions gen;
  gen.num_cores = n;
  gen.place = false;
  const Soc soc = generate_soc(gen, rng);
  const TestTimeTable table(soc, 16);
  return make_tam_problem(soc, table, {16, 8, 8});
}

// The admissible lower bound evaluated at every B&B node — the single
// hottest scalar kernel of the exact solver.
void BM_LowerBound(benchmark::State& state) {
  const TamProblem problem = sized_problem(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.lower_bound());
  }
}
BENCHMARK(BM_LowerBound)->Arg(8)->Arg(16)->Arg(32);

// Per-iteration cost of the dense-tableau simplex on the TAM ILP
// relaxation; items/iteration puts a number on one pivot.
void BM_SimplexIteration(benchmark::State& state) {
  const TamProblem problem = sized_problem(static_cast<int>(state.range(0)));
  const LinearProgram lp = build_tam_ilp(problem);
  long long iterations = 0;
  for (auto _ : state) {
    const LpResult result = solve_lp(lp);
    benchmark::DoNotOptimize(result.objective);
    iterations += result.iterations;
  }
  state.SetItemsProcessed(iterations);
}
BENCHMARK(BM_SimplexIteration)->Arg(6)->Arg(10)->Arg(14);

void BM_ExactSolver(benchmark::State& state) {
  const TamProblem problem = sized_problem(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_exact(problem));
  }
}
BENCHMARK(BM_ExactSolver)->Arg(8)->Arg(12)->Arg(16);

// Warm-started portfolio on the same instances as BM_ExactSolver — the
// JSON diff of the two is the warm-start speedup at micro scale.
void BM_PortfolioSolver(benchmark::State& state) {
  const TamProblem problem = sized_problem(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_portfolio(problem));
  }
}
BENCHMARK(BM_PortfolioSolver)->Arg(8)->Arg(12)->Arg(16);

// Branch-free staircase row reduction (sum + max over one contiguous
// width-major row) — the bound kernel of the width search and the width DP.
// Items/second counts staircase cells evaluated.
void BM_StaircaseEval(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(static_cast<std::uint64_t>(n));
  SocGeneratorOptions gen;
  gen.num_cores = n;
  gen.place = false;
  const Soc soc = generate_soc(gen, rng);
  const TestTimeTable table(soc, 32);
  const Staircase stairs(table);
  int w = 1;
  long long cells = 0;
  for (auto _ : state) {
    const Staircase::RowStats stats = stairs.row_stats(w);
    benchmark::DoNotOptimize(stats.total + stats.max_single);
    w = w % stairs.max_width() + 1;  // sweep all rows, defeat caching of one
    cells += static_cast<long long>(stairs.num_cores());
  }
  state.SetItemsProcessed(cells);
}
BENCHMARK(BM_StaircaseEval)->Arg(16)->Arg(64)->Arg(256);

// Bitset candidate kernel of the exact search: allowed-mask AND symmetry
// drop (`e & (e - 1)` per bus class) replacing the old per-bus scan.
// Items/second counts candidate masks produced.
void BM_PruneMask(benchmark::State& state) {
  const TamProblem problem = sized_problem(static_cast<int>(state.range(0)));
  const exactcore::CoreTables t = exactcore::build_core_tables(problem);
  const std::uint64_t full =
      t.num_buses >= 64 ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << t.num_buses) - 1;
  std::uint64_t empty = full;
  long long masks = 0;
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (std::size_t k = 0; k < t.num_items; ++k) {
      acc ^= exactcore::candidate_mask(t, t.allowed[k], empty);
    }
    benchmark::DoNotOptimize(acc);
    empty = empty == 0 ? full : empty >> 1;  // vary the empty-bus pattern
    masks += static_cast<long long>(t.num_items);
  }
  state.SetItemsProcessed(masks);
}
BENCHMARK(BM_PruneMask)->Arg(16)->Arg(64);

void BM_GreedyLpt(benchmark::State& state) {
  const TamProblem problem = sized_problem(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_greedy_lpt(problem));
  }
}
BENCHMARK(BM_GreedyLpt)->Arg(8)->Arg(16)->Arg(32);

void BM_IlpSolver(benchmark::State& state) {
  const TamProblem problem = sized_problem(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_ilp(problem));
  }
}
BENCHMARK(BM_IlpSolver)->Arg(6)->Arg(8);

}  // namespace
}  // namespace soctest

// Custom main (instead of benchmark_main) so results land in
// BENCH_micro.json by default; explicit --benchmark_out flags win.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out=", 16) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_micro.json";
  std::string fmt_flag = "--benchmark_out_format=json";
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int args_count = static_cast<int>(args.size());
  benchmark::Initialize(&args_count, args.data());
  if (benchmark::ReportUnrecognizedArguments(args_count, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
