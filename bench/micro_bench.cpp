// Google-benchmark microbenchmarks for the hot kernels: wrapper design,
// test-time table construction, maze routing, simplex, and the TAM solvers.

#include <benchmark/benchmark.h>

#include "soc/builtin.hpp"
#include "soc/generator.hpp"
#include "tam/exact_solver.hpp"
#include "tam/heuristics.hpp"
#include "tam/ilp_solver.hpp"
#include "wrapper/test_time_table.hpp"

namespace soctest {
namespace {

void BM_WrapperDesign(benchmark::State& state) {
  const Soc soc = builtin_soc1();
  const auto idx = *soc.find_core("s38417");
  const int w = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(design_wrapper(soc.core(idx), w));
  }
}
BENCHMARK(BM_WrapperDesign)->Arg(4)->Arg(16)->Arg(64);

void BM_TestTimeTable(benchmark::State& state) {
  const Soc soc = builtin_soc1();
  const int max_width = static_cast<int>(state.range(0));
  for (auto _ : state) {
    TestTimeTable table(soc, max_width);
    benchmark::DoNotOptimize(table.time(0, max_width));
  }
}
BENCHMARK(BM_TestTimeTable)->Arg(16)->Arg(64);

void BM_BusPlanning(benchmark::State& state) {
  const Soc soc = builtin_soc1();
  const int buses = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan_buses(soc, buses));
  }
}
BENCHMARK(BM_BusPlanning)->Arg(2)->Arg(4);

// TamProblem is self-contained (matrices are copied in), so the SOC and
// table can be temporaries.
TamProblem sized_problem(int n) {
  Rng rng(static_cast<std::uint64_t>(n));
  SocGeneratorOptions gen;
  gen.num_cores = n;
  gen.place = false;
  const Soc soc = generate_soc(gen, rng);
  const TestTimeTable table(soc, 16);
  return make_tam_problem(soc, table, {16, 8, 8});
}

void BM_ExactSolver(benchmark::State& state) {
  const TamProblem problem = sized_problem(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_exact(problem));
  }
}
BENCHMARK(BM_ExactSolver)->Arg(8)->Arg(12)->Arg(16);

void BM_GreedyLpt(benchmark::State& state) {
  const TamProblem problem = sized_problem(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_greedy_lpt(problem));
  }
}
BENCHMARK(BM_GreedyLpt)->Arg(8)->Arg(16)->Arg(32);

void BM_IlpSolver(benchmark::State& state) {
  const TamProblem problem = sized_problem(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve_ilp(problem));
  }
}
BENCHMARK(BM_IlpSolver)->Arg(6)->Arg(8);

}  // namespace
}  // namespace soctest
