// Figure 6 (extension): soundness vs cost of the two power-constraint
// encodings on a 3-bus architecture. The DAC 2000 pairwise serialization
// is exact for B=2 but can under-constrain B>=3 (three cores may overlap);
// the bus-max-sum extension (Σ_j max power per bus <= P_max) is sound for
// any B at the cost of extra conservatism. Shape check: pairwise yields
// shorter test times but its realized schedule peak VIOLATES the budget in
// a band of loose-to-mid budgets; bus-max-sum never violates and the gap
// between the two is the price of the guarantee.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sched/power_profile.hpp"
#include "sched/schedule.hpp"
#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/power.hpp"
#include "tam/tam_problem.hpp"

using namespace soctest;

int main() {
  std::cout << benchutil::header(
      "Figure 6", "pairwise vs bus-max-sum power constraint, soc1, widths 16/16/16");
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 16);
  const std::vector<int> widths{16, 16, 16};

  Table out({"P_max[mW]", "T_pairwise", "peak_pairwise", "pw_meets", "T_busmax",
             "peak_busmax", "bm_meets", "guarantee_cost%"});
  for (int p_max = 3200; p_max >= 1200; p_max -= 200) {
    out.row().add(p_max);
    if (!overbudget_cores(soc, p_max).empty()) {
      out.add("-").add("-").add("-").add("-").add("-").add("-").add("-");
      continue;
    }
    const TamProblem pw = make_tam_problem(soc, table, widths, nullptr, -1,
                                           static_cast<double>(p_max));
    const TamProblem bm =
        make_tam_problem(soc, table, widths, nullptr, -1,
                         static_cast<double>(p_max),
                         PowerConstraintMode::kBusMaxSum);
    const auto rpw = solve_exact(pw);
    const auto rbm = solve_exact(bm);
    if (!rpw.feasible || !rbm.feasible) {
      out.add("-").add("-").add("-").add("-").add("-").add("-").add("-");
      continue;
    }
    const TestSchedule spw = build_schedule(pw, rpw.assignment.core_to_bus);
    const TestSchedule sbm = build_schedule(bm, rbm.assignment.core_to_bus);
    const double peak_pw = compute_power_profile(soc, spw).peak();
    const double peak_bm = compute_power_profile(soc, sbm).peak();
    out.add(rpw.assignment.makespan)
        .add(peak_pw, 0)
        .add(peak_pw <= p_max + 1e-9 ? "yes" : "NO")
        .add(rbm.assignment.makespan)
        .add(peak_bm, 0)
        .add(peak_bm <= p_max + 1e-9 ? "yes" : "NO")
        .add(100.0 * (static_cast<double>(rbm.assignment.makespan) /
                          static_cast<double>(rpw.assignment.makespan) -
                      1.0),
             1);
  }
  std::cout << out.to_ascii();
  std::printf(
      "\n(pw_meets/bm_meets: does the realized 3-bus schedule peak stay\n"
      "within the budget; 'NO' rows exhibit the pairwise model's B>=3 gap)\n\n");
  return 0;
}
