// Anytime quality: what a wall-clock budget buys. The portfolio race runs
// on a random SOC big enough that the exact racer needs real time, under
// --time-limit-ms-style budgets of 10 / 100 / 1000 ms, and each row records
// the certificate of the returned incumbent: its makespan, the lower bound,
// and the gap against the unlimited optimum. The unlimited run is the
// reference row (gap 0, status optimal).
//
// Budgets run serially (never inside the sweep pool): a deadline bench
// measures wall-clock behavior, and pool contention would shrink the work a
// budget buys.

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "soc/generator.hpp"
#include "tam/exact_solver.hpp"
#include "tam/portfolio.hpp"
#include "wrapper/test_time_table.hpp"

using namespace soctest;

int main() {
  std::cout << benchutil::header(
      "Anytime", "portfolio incumbent quality under wall-clock budgets");

  Rng rng(28 * 7919);
  SocGeneratorOptions gen;
  gen.num_cores = 28;
  gen.place = false;
  const Soc soc = generate_soc(gen, rng);
  const TestTimeTable table(soc, 16);
  const TamProblem problem = make_tam_problem(soc, table, {16, 8, 8});

  benchutil::Stopwatch sw_opt;
  const TamSolveResult exact = solve_exact(problem);
  const double ms_opt = sw_opt.ms();
  const auto t_opt = static_cast<long long>(exact.assignment.makespan);

  benchutil::JsonLog log("anytime_quality");
  Table out({"budget_ms", "status", "makespan", "lower_bound", "gap_vs_lb",
             "gap_vs_opt", "ms_used"});

  const std::vector<double> budgets = {10, 100, 1000, -1};
  for (const double budget : budgets) {
    PortfolioOptions options;
    if (budget >= 0) options.deadline = Deadline::after_ms(budget);
    benchutil::Stopwatch sw;
    const PortfolioResult race = solve_portfolio(problem, options);
    const double ms_used = sw.ms();
    const auto makespan =
        static_cast<long long>(race.best.assignment.makespan);
    const double gap_vs_opt =
        t_opt > 0 ? static_cast<double>(makespan - t_opt) / t_opt : -1.0;

    const std::string label =
        budget >= 0 ? "anytime_gap_" + std::to_string(static_cast<int>(budget)) + "ms"
                    : "anytime_gap_unlimited";
    log.record()
        .set("cell", label)
        .set("budget_ms", budget, 0)
        .set("status", solve_status_name(race.certificate.status))
        .set("makespan", makespan)
        .set("lower_bound", race.certificate.lower_bound)
        .set("gap_vs_lb", race.certificate.gap(), 4)
        .set("gap_vs_opt", gap_vs_opt, 4)
        .set("T_opt", t_opt)
        .set("ms_opt", ms_opt)
        .set("ms_used", ms_used);

    out.row()
        .add(budget >= 0 ? std::to_string(static_cast<int>(budget))
                         : std::string("unlimited"))
        .add(std::string(solve_status_name(race.certificate.status)))
        .add(makespan)
        .add(race.certificate.lower_bound)
        .add(race.certificate.gap(), 4)
        .add(gap_vs_opt, 4)
        .add(ms_used, 3);
  }

  std::cout << out.to_ascii();
  log.write("BENCH_solvers.json");
  std::cout << "wrote BENCH_solvers.json\n";
  return 0;
}
