// Table 8 (extension): end-to-end scaling on the larger built-in SOCs
// (soc3: 14 cores, soc4: 20 cores incl. soft cores). For fixed widths, the
// exact solver's proof cost vs the heuristics; for width search, exhaustive
// enumeration vs the alternating co-optimizer. Shape check: exact stays
// interactive at 20 cores for fixed widths; the width-search partition
// count, not the assignment solve, is what explodes — which is where the
// alternating heuristic earns its keep.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/heuristics.hpp"
#include "tam/width_dp.hpp"
#include "tam/width_partition.hpp"

using namespace soctest;

int main() {
  std::cout << benchutil::header("Table 8", "scaling on soc3 (14) and soc4 (20)");
  std::cout << "(a) fixed widths 24/16/8: exact vs heuristics\n";
  Table fixed({"soc", "T_exact", "ms", "nodes", "T_greedy", "greedy/opt",
               "T_sa", "sa/opt"});
  for (const Soc& soc : {builtin_soc3(), builtin_soc4()}) {
    const TestTimeTable table(soc, 24);
    const TamProblem problem = make_tam_problem(soc, table, {24, 16, 8});
    benchutil::Stopwatch sw;
    const auto exact = solve_exact(problem);
    const double ms = sw.ms();
    const auto greedy = solve_greedy_lpt(problem);
    const auto sa = solve_sa(problem);
    fixed.row()
        .add(soc.name())
        .add(exact.assignment.makespan)
        .add(ms, 1)
        .add(exact.nodes)
        .add(greedy.assignment.makespan)
        .add(static_cast<double>(greedy.assignment.makespan) /
                 static_cast<double>(exact.assignment.makespan),
             3)
        .add(sa.assignment.makespan)
        .add(static_cast<double>(sa.assignment.makespan) /
                 static_cast<double>(exact.assignment.makespan),
             3);
  }
  std::cout << fixed.to_ascii() << "\n";

  std::cout << "(b) width search, B=3: exhaustive vs alternating\n";
  Table search({"soc", "W", "T_exhaustive", "ms_exh", "T_alternating",
                "ms_alt", "gap%"});
  for (const Soc& soc : {builtin_soc3(), builtin_soc4()}) {
    for (int total : {32, 64}) {
      const TestTimeTable table(soc, total - 2);
      benchutil::Stopwatch sw_exh;
      const auto exhaustive = optimize_widths(soc, table, 3, total);
      const double ms_exh = sw_exh.ms();
      benchutil::Stopwatch sw_alt;
      const auto alternating = optimize_alternating(soc, table, 3, total);
      const double ms_alt = sw_alt.ms();
      search.row()
          .add(soc.name())
          .add(total)
          .add(exhaustive.assignment.makespan)
          .add(ms_exh, 1)
          .add(alternating.assignment.makespan)
          .add(ms_alt, 1)
          .add(100.0 * (static_cast<double>(alternating.assignment.makespan) /
                            static_cast<double>(exhaustive.assignment.makespan) -
                        1.0),
               1);
    }
  }
  std::cout << search.to_ascii() << "\n";
  return 0;
}
