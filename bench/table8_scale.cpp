// Table 8 (extension): end-to-end scaling on the larger built-in SOCs
// (soc3: 14 cores, soc4: 20 cores incl. soft cores). For fixed widths, the
// exact solver's proof cost vs the heuristics; for width search, exhaustive
// enumeration vs the alternating co-optimizer. Shape check: exact stays
// interactive at 20 cores for fixed widths; the width-search partition
// count, not the assignment solve, is what explodes — which is where the
// alternating heuristic earns its keep.
//
// Every grid cell (one SOC for part a, one SOC x width for part b) runs as
// a thread-pool task, and part (a) additionally records the cold-exact vs
// portfolio wall-clock into BENCH_solvers.json.

#include <cstdio>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/heuristics.hpp"
#include "tam/portfolio.hpp"
#include "tam/width_dp.hpp"
#include "tam/width_partition.hpp"
#include "tam/timing.hpp"

using namespace soctest;

namespace {

struct FixedCell {
  std::string soc;
  Cycles t_exact = 0;
  double ms = 0.0;
  long long nodes = 0;
  Cycles t_greedy = 0;
  Cycles t_sa = 0;
  double ms_portfolio = 0.0;
  long long portfolio_nodes = 0;
  std::string winner;
  bool match = false;
};

struct SearchCell {
  std::string soc;
  int total = 0;
  Cycles t_exh = 0;
  double ms_exh = 0.0;
  Cycles t_alt = 0;
  double ms_alt = 0.0;
};

}  // namespace

int main() {
  std::cout << benchutil::header("Table 8", "scaling on soc3 (14) and soc4 (20)");
  const std::vector<Soc> socs = {builtin_soc3(), builtin_soc4()};
  const std::vector<int> totals = {32, 64};

  std::vector<FixedCell> fixed_cells(socs.size());
  std::vector<SearchCell> search_cells(socs.size() * totals.size());
  benchutil::JsonLog log("table8_scale");

  std::vector<std::function<void()>> tasks;
  std::vector<benchutil::JsonRecord*> records;
  for (std::size_t s = 0; s < socs.size(); ++s) {
    records.push_back(&log.record());
    const std::size_t rec = records.size() - 1;
    tasks.push_back([s, rec, &socs, &fixed_cells, &records] {
      const Soc& soc = socs[s];
      FixedCell& cell = fixed_cells[s];
      cell.soc = soc.name();
      const TestTimeTable table(soc, 24);
      const TamProblem problem = make_tam_problem(soc, table, {24, 16, 8});

      benchutil::Stopwatch sw;
      const auto exact = solve_exact(problem);
      cell.ms = sw.ms();
      cell.t_exact = exact.assignment.makespan;
      cell.nodes = exact.nodes;
      cell.t_greedy = solve_greedy_lpt(problem).assignment.makespan;
      cell.t_sa = solve_sa(problem).assignment.makespan;

      benchutil::Stopwatch sw_port;
      const auto portfolio = solve_portfolio(problem);
      cell.ms_portfolio = sw_port.ms();
      cell.portfolio_nodes = portfolio.exact_nodes;
      cell.winner = portfolio.winner;
      cell.match = portfolio.best.assignment.core_to_bus ==
                   exact.assignment.core_to_bus;

      records[rec]
          ->set("cell", cell.soc + " fixed 24/16/8")
          .set("T_opt", static_cast<long long>(cell.t_exact))
          .set("ms_exact_cold", cell.ms)
          .set("nodes_cold", cell.nodes)
          .set("ms_portfolio", cell.ms_portfolio)
          .set("nodes_portfolio", cell.portfolio_nodes)
          .set("speedup_warm",
               cell.ms_portfolio > 0.0 ? cell.ms / cell.ms_portfolio : 0.0)
          .set("winner", cell.winner)
          .set("assignment_match", cell.match);
    });
  }
  for (std::size_t s = 0; s < socs.size(); ++s) {
    for (std::size_t t = 0; t < totals.size(); ++t) {
      records.push_back(&log.record());
      const std::size_t rec = records.size() - 1;
      const std::size_t slot = s * totals.size() + t;
      tasks.push_back([s, t, slot, rec, &socs, &totals, &search_cells,
                       &records] {
        const Soc& soc = socs[s];
        const int total = totals[t];
        SearchCell& cell = search_cells[slot];
        cell.soc = soc.name();
        cell.total = total;
        const TestTimeTable table(soc, total - 2);
        benchutil::Stopwatch sw_exh;
        const auto exhaustive = optimize_widths(soc, table, 3, total);
        cell.ms_exh = sw_exh.ms();
        cell.t_exh = exhaustive.assignment.makespan;
        benchutil::Stopwatch sw_alt;
        const auto alternating = optimize_alternating(soc, table, 3, total);
        cell.ms_alt = sw_alt.ms();
        cell.t_alt = alternating.assignment.makespan;

        records[rec]
            ->set("cell",
                  cell.soc + " width-search W=" + std::to_string(total))
            .set("T_exhaustive", static_cast<long long>(cell.t_exh))
            .set("ms_exhaustive", cell.ms_exh)
            .set("T_alternating", static_cast<long long>(cell.t_alt))
            .set("ms_alternating", cell.ms_alt);
      });
    }
  }
  benchutil::run_cells(std::move(tasks));

  // Sweep-level satellite measurement: every grid cell above re-derives a
  // full TestTimeTable; the (SOC, max_width) memo makes all but the first
  // derivation per key a lookup. Time the sweep's table-acquisition phase
  // both ways (5 passes over the part-(b) grid, serial, cache starting
  // cold) — this is the wall-clock the threaded sweep runner saves per run.
  {
    const int reps = 5;
    Cycles sink = 0;
    benchutil::Stopwatch sw_fresh;
    for (int rep = 0; rep < reps; ++rep) {
      for (const Soc& soc : socs) {
        for (int total : totals) {
          const TestTimeTable fresh(soc, total - 2);
          sink += fresh.time(0, total - 2);
        }
      }
    }
    const double ms_fresh = sw_fresh.ms();
    benchutil::Stopwatch sw_cached;
    for (int rep = 0; rep < reps; ++rep) {
      for (const Soc& soc : socs) {
        for (int total : totals) {
          sink += cached_test_time_table(soc, total - 2).time(0, total - 2);
        }
      }
    }
    const double ms_cached = sw_cached.ms();
    log.record()
        .set("cell", "table_cache_sweep")
        .set("passes", reps)
        .set("ms_fresh", ms_fresh)
        .set("ms_cached", ms_cached)
        .set("speedup_cache", ms_cached > 0.0 ? ms_fresh / ms_cached : 0.0)
        .set("checksum", static_cast<long long>(sink));
    std::cout << "table-acquisition sweep (" << reps << " passes): fresh "
              << ms_fresh << " ms, cached " << ms_cached << " ms\n\n";
  }

  std::cout << "(a) fixed widths 24/16/8: exact vs heuristics\n";
  Table fixed({"soc", "T_exact", "ms", "nodes", "T_greedy", "greedy/opt",
               "T_sa", "sa/opt", "ms_port", "winner"});
  for (const FixedCell& cell : fixed_cells) {
    fixed.row()
        .add(cell.soc)
        .add(cell.t_exact)
        .add(cell.ms, 1)
        .add(cell.nodes)
        .add(cell.t_greedy)
        .add(static_cast<double>(cell.t_greedy) /
                 static_cast<double>(cell.t_exact),
             3)
        .add(cell.t_sa)
        .add(static_cast<double>(cell.t_sa) /
                 static_cast<double>(cell.t_exact),
             3)
        .add(cell.ms_portfolio, 1)
        .add(cell.winner);
  }
  std::cout << fixed.to_ascii() << "\n";

  std::cout << "(b) width search, B=3: exhaustive vs alternating\n";
  Table search({"soc", "W", "T_exhaustive", "ms_exh", "T_alternating",
                "ms_alt", "gap%"});
  for (const SearchCell& cell : search_cells) {
    search.row()
        .add(cell.soc)
        .add(cell.total)
        .add(cell.t_exh)
        .add(cell.ms_exh, 1)
        .add(cell.t_alt)
        .add(cell.ms_alt, 1)
        .add(100.0 * (static_cast<double>(cell.t_alt) /
                          static_cast<double>(cell.t_exh) -
                      1.0),
             1);
  }
  std::cout << search.to_ascii() << "\n";

  log.write("BENCH_solvers.json");
  std::cout << "wrote BENCH_solvers.json\n";
  return 0;
}
