// Table 2: optimal system test time for the unconstrained architecture
// design problem across bus counts B and total TAM width W, comparing the
// exact solver (the paper's ILP-grade optimum) against the greedy LPT and
// simulated-annealing baselines. Shape check: more width/buses help; the
// exact optimum lower-bounds every heuristic; heuristic gaps are small but
// nonzero somewhere.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "soc/builtin.hpp"
#include "tam/width_partition.hpp"

using namespace soctest;

namespace {

void run_soc(const Soc& soc) {
  std::printf("-- %s (%zu cores) --\n", soc.name().c_str(), soc.num_cores());
  Table out({"B", "W", "widths", "T_exact", "T_greedy", "T_sa", "greedy/opt",
             "sa/opt", "partitions", "nodes"});
  for (int num_buses : {2, 3, 4}) {
    for (int total_width : {16, 24, 32, 48, 64}) {
      const TestTimeTable table(soc, total_width - (num_buses - 1));
      const auto exact = optimize_widths(soc, table, num_buses, total_width);
      WidthPartitionOptions greedy_options;
      greedy_options.solver = InnerSolver::kGreedy;
      const auto greedy = optimize_widths(soc, table, num_buses, total_width,
                                          nullptr, -1, -1.0, greedy_options);
      WidthPartitionOptions sa_options;
      sa_options.solver = InnerSolver::kSa;
      const auto sa = optimize_widths(soc, table, num_buses, total_width,
                                      nullptr, -1, -1.0, sa_options);
      std::string widths;
      for (std::size_t j = 0; j < exact.bus_widths.size(); ++j) {
        widths += (j ? "/" : "") + std::to_string(exact.bus_widths[j]);
      }
      out.row()
          .add(num_buses)
          .add(total_width)
          .add(widths)
          .add(exact.assignment.makespan)
          .add(greedy.assignment.makespan)
          .add(sa.assignment.makespan)
          .add(static_cast<double>(greedy.assignment.makespan) /
                   static_cast<double>(exact.assignment.makespan),
               3)
          .add(static_cast<double>(sa.assignment.makespan) /
                   static_cast<double>(exact.assignment.makespan),
               3)
          .add(exact.partitions_tried)
          .add(exact.total_nodes);
    }
  }
  std::cout << out.to_ascii() << "\n";
}

}  // namespace

int main() {
  std::cout << benchutil::header(
      "Table 2", "unconstrained architecture optimization: exact vs baselines");
  run_soc(builtin_soc1());
  run_soc(builtin_soc2());
  return 0;
}
