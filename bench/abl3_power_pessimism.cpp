// Ablation A3: how pessimistic is the paper's pairwise power serialization?
// For each budget we compare (a) the optimum under pairwise co-assignment
// against (b) the unconstrained optimum whose schedule is then reordered to
// minimize instantaneous peak power — if (b)'s realized peak already fits
// the budget, the pairwise constraint cost pure test time for nothing at
// that budget. Shape check: pessimism appears only at intermediate budgets;
// at loose budgets the constraint is inactive and at tight budgets the
// serialization is genuinely required.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "sched/power_profile.hpp"
#include "sched/schedule.hpp"
#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/power.hpp"
#include "tam/tam_problem.hpp"

using namespace soctest;

int main() {
  std::cout << benchutil::header(
      "Ablation A3",
      "pairwise serialization vs schedule-level power check, soc1, widths 16/16");
  const Soc soc = builtin_soc1();
  const std::vector<int> widths{16, 16};
  const TestTimeTable table(soc, 16);
  Rng rng(7);

  // The unconstrained optimum and its best-effort low-peak schedule.
  const TamProblem free_problem = make_tam_problem(soc, table, widths);
  const auto free_result = solve_exact(free_problem);
  const TestSchedule free_schedule = minimize_peak_order(
      free_problem, soc, free_result.assignment.core_to_bus, rng, 2000);
  const double free_peak = compute_power_profile(soc, free_schedule).peak();
  std::printf("unconstrained: T = %lld, reordered schedule peak = %.0f mW\n\n",
              static_cast<long long>(free_result.assignment.makespan),
              free_peak);

  Table out({"P_max[mW]", "T_pairwise", "T_free", "overhead%",
             "free_peak_fits", "verdict"});
  for (int p_max = 3400; p_max >= 1200; p_max -= 100) {
    out.row().add(p_max);
    if (!overbudget_cores(soc, p_max).empty()) {
      out.add("-").add("-").add("-").add("-").add("untestable");
      continue;
    }
    const TamProblem problem = make_tam_problem(soc, table, widths, nullptr,
                                                -1, static_cast<double>(p_max));
    const auto result = solve_exact(problem);
    if (!result.feasible) {
      out.add("-").add("-").add("-").add("-").add("infeasible");
      continue;
    }
    const double overhead =
        100.0 *
        (static_cast<double>(result.assignment.makespan) /
             static_cast<double>(free_result.assignment.makespan) -
         1.0);
    const bool fits = free_peak <= p_max;
    out.add(result.assignment.makespan)
        .add(free_result.assignment.makespan)
        .add(overhead, 1)
        .add(fits ? "yes" : "no")
        .add(fits && overhead > 0 ? "pairwise pessimistic"
             : overhead > 0       ? "serialization required"
                                  : "constraint inactive");
  }
  std::cout << out.to_ascii() << "\n";
  return 0;
}
