// Table 6: solver CPU time scaling (the paper reports lpsolve CPU seconds
// on its ILP models; we report all four in-repo solvers on growing random
// SOCs). Shape check: exact/ILP grow super-polynomially but stay fast at
// paper-scale (N ~ 10); greedy/SA stay near-constant; all heuristic
// makespans are bounded below by the exact optimum.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "soc/generator.hpp"
#include "tam/exact_solver.hpp"
#include "tam/heuristics.hpp"
#include "tam/ilp_solver.hpp"
#include "wrapper/test_time_table.hpp"

using namespace soctest;

int main() {
  std::cout << benchutil::header(
      "Table 6", "solver runtime scaling on random SOCs, widths 16/8/8");
  Table out({"N", "T_exact", "ms_exact", "nodes", "T_ilp", "ms_ilp",
             "ilp_nodes", "T_greedy", "ms_greedy", "T_sa", "ms_sa"});
  for (int n : {6, 10, 14, 18, 22, 26}) {
    Rng rng(static_cast<std::uint64_t>(n) * 7919);
    SocGeneratorOptions gen;
    gen.num_cores = n;
    gen.place = false;
    const Soc soc = generate_soc(gen, rng);
    const TestTimeTable table(soc, 16);
    const TamProblem problem = make_tam_problem(soc, table, {16, 8, 8});

    benchutil::Stopwatch sw_exact;
    const auto exact = solve_exact(problem);
    const double ms_exact = sw_exact.ms();

    // The LP-based branch & bound is the paper's actual method; cap it on
    // larger instances where the weak makespan relaxation explodes.
    MipOptions mip;
    mip.max_nodes = 200000;
    benchutil::Stopwatch sw_ilp;
    const auto ilp = n <= 14 ? solve_ilp(problem, mip) : TamSolveResult{};
    const double ms_ilp = sw_ilp.ms();

    benchutil::Stopwatch sw_greedy;
    const auto greedy = solve_greedy_lpt(problem);
    const double ms_greedy = sw_greedy.ms();

    benchutil::Stopwatch sw_sa;
    const auto sa = solve_sa(problem);
    const double ms_sa = sw_sa.ms();

    out.row()
        .add(n)
        .add(exact.assignment.makespan)
        .add(ms_exact, 2)
        .add(exact.nodes)
        .add(n <= 14 ? std::to_string(ilp.assignment.makespan) : std::string("-"))
        .add(n <= 14 ? ms_ilp : 0.0, 2)
        .add(n <= 14 ? std::to_string(ilp.nodes) : std::string("-"))
        .add(greedy.assignment.makespan)
        .add(ms_greedy, 3)
        .add(sa.assignment.makespan)
        .add(ms_sa, 2);
  }
  std::cout << out.to_ascii();
  std::cout << "\n(T in cycles; ms wall-clock; '-' = ILP skipped beyond N=14)\n\n";
  return 0;
}
