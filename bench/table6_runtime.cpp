// Table 6: solver CPU time scaling (the paper reports lpsolve CPU seconds
// on its ILP models; we report all four in-repo solvers on growing random
// SOCs). Shape check: exact/ILP grow super-polynomially but stay fast at
// paper-scale (N ~ 10); greedy/SA stay near-constant; all heuristic
// makespans are bounded below by the exact optimum.
//
// Each N-cell runs as a thread-pool task (SOCTEST_BENCH_THREADS workers),
// and every cell additionally races the portfolio against the cold exact
// solve so the warm-start speedup lands in BENCH_solvers.json.

#include <cstdio>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "common/parallel.hpp"
#include "common/table.hpp"
#include "soc/generator.hpp"
#include "tam/exact_solver.hpp"
#include "tam/heuristics.hpp"
#include "tam/ilp_solver.hpp"
#include "tam/portfolio.hpp"
#include "wrapper/test_time_table.hpp"

using namespace soctest;

namespace {

struct Cell {
  int n = 0;
  Cycles t_exact = 0;
  double ms_exact = 0.0;
  long long nodes = 0;
  bool ilp_run = false;
  Cycles t_ilp = 0;
  double ms_ilp = 0.0;
  long long ilp_nodes = 0;
  Cycles t_greedy = 0;
  double ms_greedy = 0.0;
  Cycles t_sa = 0;
  double ms_sa = 0.0;
  // Portfolio race against the cold exact solve (same cell, so both sides
  // see the same scheduling environment and the ratio stays honest).
  Cycles t_portfolio = 0;
  double ms_portfolio = 0.0;
  long long portfolio_nodes = 0;
  std::string winner;
  bool match = false;  ///< portfolio returned the cold-exact assignment
  // Exact search with threads = 8: the crossover probe picks serial or
  // root-splitting parallel execution per instance.
  double ms_mt = 0.0;
  long long mt_nodes = 0;
  bool mt_match = false;
  std::string mt_mode;  ///< search_mode_name() of what actually ran
  double speedup_mt = 0.0;
};

}  // namespace

int main() {
  std::cout << benchutil::header(
      "Table 6", "solver runtime scaling on random SOCs, widths 16/8/8");
  const std::vector<int> sizes = {6, 10, 14, 18, 22, 26, 30};
  std::vector<Cell> cells(sizes.size());
  benchutil::JsonLog log("table6_runtime");

  // The machine's thread count is a property of the run, not of a cell;
  // sample it once here (cells run inside the sweep pool, where the
  // library-level default can be overridden down to 1).
  const long long hardware_threads =
      static_cast<long long>(std::max(1u, std::thread::hardware_concurrency()));

  std::vector<std::function<void()>> tasks;
  std::vector<benchutil::JsonRecord*> records;
  for (std::size_t idx = 0; idx < sizes.size(); ++idx) {
    records.push_back(&log.record());
    tasks.push_back([idx, &sizes, &cells, &records, hardware_threads] {
      const int n = sizes[idx];
      Cell& cell = cells[idx];
      cell.n = n;
      Rng rng(static_cast<std::uint64_t>(n) * 7919);
      SocGeneratorOptions gen;
      gen.num_cores = n;
      gen.place = false;
      const Soc soc = generate_soc(gen, rng);
      const TestTimeTable table(soc, 16);
      const TamProblem problem = make_tam_problem(soc, table, {16, 8, 8});

      benchutil::Stopwatch sw_exact;
      const auto exact = solve_exact(problem);
      cell.ms_exact = sw_exact.ms();
      cell.t_exact = exact.assignment.makespan;
      cell.nodes = exact.nodes;

      // The LP-based branch & bound is the paper's actual method; cap it on
      // larger instances where the weak makespan relaxation explodes.
      cell.ilp_run = n <= 14;
      if (cell.ilp_run) {
        MipOptions mip;
        mip.max_nodes = 200000;
        benchutil::Stopwatch sw_ilp;
        const auto ilp = solve_ilp(problem, mip);
        cell.ms_ilp = sw_ilp.ms();
        cell.t_ilp = ilp.assignment.makespan;
        cell.ilp_nodes = ilp.nodes;
      }

      benchutil::Stopwatch sw_greedy;
      const auto greedy = solve_greedy_lpt(problem);
      cell.ms_greedy = sw_greedy.ms();
      cell.t_greedy = greedy.assignment.makespan;

      benchutil::Stopwatch sw_sa;
      const auto sa = solve_sa(problem);
      cell.ms_sa = sw_sa.ms();
      cell.t_sa = sa.assignment.makespan;

      benchutil::Stopwatch sw_port;
      const auto portfolio = solve_portfolio(problem);
      cell.ms_portfolio = sw_port.ms();
      cell.t_portfolio = portfolio.best.assignment.makespan;
      cell.portfolio_nodes = portfolio.exact_nodes;
      cell.winner = portfolio.winner;
      cell.match = portfolio.best.assignment.core_to_bus ==
                   exact.assignment.core_to_bus;

      ExactSolverOptions mt_options;
      mt_options.threads = 8;
      // The solver spawns the configured worker count regardless of the
      // machine (threads != 0 skips the hardware_concurrency default), so
      // configured and effective only differ when a future cell opts into
      // auto sizing. Record both: a BENCH row must say what actually ran.
      const long long mt_effective =
          static_cast<long long>(resolve_thread_count(mt_options.threads));
      benchutil::Stopwatch sw_mt;
      const auto mt = solve_exact(problem, mt_options);
      cell.ms_mt = sw_mt.ms();
      cell.mt_nodes = mt.nodes;
      cell.mt_match =
          mt.assignment.core_to_bus == exact.assignment.core_to_bus;
      cell.mt_mode = search_mode_name(mt.search_mode);
      // When the crossover chose serial, the mt run *is* the cold serial
      // search (same code path, same node count) — the honest speedup is
      // 1.0 by construction, not a noisy wall-clock ratio of two identical
      // runs racing the machine's scheduler.
      cell.speedup_mt =
          mt.search_mode == SearchMode::kSerial
              ? 1.0
              : (cell.ms_mt > 0.0 ? cell.ms_exact / cell.ms_mt : 0.0);

      const double speedup =
          cell.ms_portfolio > 0.0 ? cell.ms_exact / cell.ms_portfolio : 0.0;
      records[idx]
          ->set("cell", "N=" + std::to_string(n))
          .set("T_opt", static_cast<long long>(cell.t_exact))
          .set("ms_exact_cold", cell.ms_exact)
          .set("nodes_cold", cell.nodes)
          .set("ms_portfolio", cell.ms_portfolio)
          .set("nodes_portfolio", cell.portfolio_nodes)
          .set("speedup_warm", speedup)
          .set("winner", cell.winner)
          .set("assignment_match", cell.match)
          .set("threads_mt_configured", mt_options.threads)
          .set("threads_mt_effective", mt_effective)
          .set("hardware_threads", hardware_threads)
          .set("ms_exact_mt", cell.ms_mt)
          .set("nodes_mt", cell.mt_nodes)
          .set("mode_mt", cell.mt_mode)
          .set("speedup_mt", cell.speedup_mt)
          .set("assignment_match_mt", cell.mt_match)
          .set("ms_greedy", cell.ms_greedy)
          .set("ms_sa", cell.ms_sa);
    });
  }
  benchutil::run_cells(std::move(tasks));

  Table out({"N", "T_exact", "ms_exact", "nodes", "T_ilp", "ms_ilp",
             "ilp_nodes", "T_greedy", "ms_greedy", "T_sa", "ms_sa"});
  for (const Cell& cell : cells) {
    out.row()
        .add(cell.n)
        .add(cell.t_exact)
        .add(cell.ms_exact, 2)
        .add(cell.nodes)
        .add(cell.ilp_run ? std::to_string(cell.t_ilp) : std::string("-"))
        .add(cell.ilp_run ? cell.ms_ilp : 0.0, 2)
        .add(cell.ilp_run ? std::to_string(cell.ilp_nodes) : std::string("-"))
        .add(cell.t_greedy)
        .add(cell.ms_greedy, 3)
        .add(cell.t_sa)
        .add(cell.ms_sa, 2);
  }
  std::cout << out.to_ascii();
  std::cout << "\n(T in cycles; ms wall-clock; '-' = ILP skipped beyond N=14)\n\n";

  Table race({"N", "ms_cold", "nodes_cold", "ms_portfolio", "speedup_warm",
              "ms_mt8", "mode_mt", "speedup_mt", "winner", "same_assign"});
  for (const Cell& cell : cells) {
    race.row()
        .add(cell.n)
        .add(cell.ms_exact, 2)
        .add(cell.nodes)
        .add(cell.ms_portfolio, 2)
        .add(cell.ms_portfolio > 0.0 ? cell.ms_exact / cell.ms_portfolio : 0.0,
             2)
        .add(cell.ms_mt, 2)
        .add(cell.mt_mode)
        .add(cell.speedup_mt, 2)
        .add(cell.winner)
        .add(cell.match && cell.mt_match ? "yes" : "NO");
  }
  std::cout << "portfolio race and 8-thread root splitting vs cold exact\n"
            << race.to_ascii() << "\n";

  log.write("BENCH_solvers.json");

  // Serial instrumented pass: counters are process-global, so they cannot be
  // attributed per cell inside the threaded sweep above. Re-run a few sizes
  // one at a time under a trace session and log the solver counters as
  // separate table6_obs rows.
  benchutil::JsonLog obs_log("table6_obs");
  for (const int n : {10, 18, 26}) {
    Rng rng(static_cast<std::uint64_t>(n) * 7919);
    SocGeneratorOptions gen;
    gen.num_cores = n;
    gen.place = false;
    const Soc soc = generate_soc(gen, rng);
    const TestTimeTable table(soc, 16);
    const TamProblem problem = make_tam_problem(soc, table, {16, 8, 8});

    obs::TraceSink sink;
    obs::TraceSession session(&sink);
    const auto portfolio = solve_portfolio(problem);
    benchutil::JsonRecord& record = obs_log.record();
    record.set("cell", "N=" + std::to_string(n))
        .set("winner", portfolio.winner)
        .set("trace_events", static_cast<long long>(sink.num_events()));
    benchutil::attach_counters(record);
  }
  obs_log.write("BENCH_solvers.json");
  std::cout << "wrote BENCH_solvers.json\n";
  return 0;
}
