// Table 7 (extension, after the multisite test-resource line): effect of
// the ATE vector-memory depth limit. Each TAM channel stores one vector row
// per test cycle, so a bus's total test length is capped by the tester
// memory. Shape check: above the unconstrained optimum the limit is slack;
// between the optimum and the minimum feasible per-bus load it forces
// re-balancing (and can interact with the width split); below that the SOC
// cannot be tested on that tester. Wider total TAM width buys back depth.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/width_partition.hpp"

// Against the makespan objective alone the depth limit is exactly a
// feasibility cap (min feasible depth == T_opt); its genuine trade-off
// appears against a second objective — section (c) minimizes stub
// wirelength subject to the depth cap.

using namespace soctest;

int main() {
  std::cout << benchutil::header(
      "Table 7", "ATE vector-memory depth limit, soc1, B=3 width search W=48");
  const Soc soc = builtin_soc1();
  const TestTimeTable table(soc, 46);

  const auto free_opt = optimize_widths(soc, table, 3, 48);
  std::printf("unconstrained optimum: %lld cycles (widths",
              static_cast<long long>(free_opt.assignment.makespan));
  for (int w : free_opt.bus_widths) std::printf(" %d", w);
  std::printf(")\n\n");

  Table out({"depth_limit", "T_opt", "widths", "status"});
  const Cycles base = free_opt.assignment.makespan;
  for (double factor : {4.0, 2.0, 1.5, 1.2, 1.1, 1.0, 0.95, 0.9, 0.85, 0.8}) {
    const auto depth = static_cast<Cycles>(static_cast<double>(base) * factor);
    out.row().add(depth);
    WidthPartitionOptions options;
    options.bus_depth_limit = depth;
    const auto r = optimize_widths(soc, table, 3, 48, nullptr, -1, -1.0, options);
    if (!r.feasible) {
      out.add("-").add("-").add("INFEASIBLE (tester too shallow)");
      continue;
    }
    std::string widths;
    for (std::size_t j = 0; j < r.bus_widths.size(); ++j) {
      widths += (j ? "/" : "") + std::to_string(r.bus_widths[j]);
    }
    out.add(r.assignment.makespan).add(widths).add("optimal");
  }
  std::cout << out.to_ascii();

  // Depth vs total width: a shallower tester can be compensated with more
  // TAM wires (each channel then holds fewer cycles).
  std::cout << "\nminimum feasible depth vs total width W (B=3):\n";
  Table sweep({"W", "T_opt(W)", "min_feasible_depth"});
  for (int total : {24, 32, 48, 64}) {
    const TestTimeTable wide_table(soc, total - 2);
    const auto opt = optimize_widths(soc, wide_table, 3, total);
    // The optimum *is* the minimum feasible depth: depth < T is infeasible,
    // depth = T is feasible by the optimal assignment itself.
    sweep.row().add(total).add(opt.assignment.makespan).add(opt.assignment.makespan);
  }
  std::cout << sweep.to_ascii() << "\n";

  // (c) Tester depth vs TAM wiring: with a deeper tester the optimizer may
  // pick slower-but-local assignments, shrinking stub wiring. Minimize wire
  // subject to makespan <= depth (widths 16/16/16).
  std::cout << "(c) minimum stub wirelength subject to the depth cap:\n";
  const BusPlan plan = plan_buses(soc, 3);
  const LayoutConstraints layout(plan, soc.num_cores(), -1);
  const TestTimeTable table3(soc, 16);
  const TamProblem problem = make_tam_problem(soc, table3, {16, 16, 16}, &layout);
  const auto opt = solve_exact(problem);
  Table wires({"depth_cap", "min_wire", "realized_T"});
  for (double factor : {1.0, 1.1, 1.25, 1.5, 2.0, 3.0}) {
    const auto cap = static_cast<Cycles>(
        static_cast<double>(opt.assignment.makespan) * factor);
    const auto r = solve_exact_min_wire(problem, cap);
    if (!r.feasible) continue;
    wires.row()
        .add(cap)
        .add(layout.assignment_wirelength(r.assignment.core_to_bus))
        .add(r.assignment.makespan);
  }
  std::cout << wires.to_ascii() << "\n";
  return 0;
}
