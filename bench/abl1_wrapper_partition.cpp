// Ablation A1: how much does the wrapper-chain packing heuristic matter?
// Compares Best-Fit-Decreasing against naive round-robin packing of internal
// scan chains across soc1 cores and widths. Shape check: BFD's max wrapper
// chain (and hence t(w)) is never worse and is strictly better on skewed
// chain mixes at intermediate widths.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "soc/builtin.hpp"
#include "wrapper/wrapper.hpp"

using namespace soctest;

int main() {
  std::cout << benchutil::header(
      "Ablation A1", "wrapper partition heuristic: BFD vs round-robin, soc1");
  const Soc soc = builtin_soc1();
  Table out({"core", "w", "t_bfd", "t_roundrobin", "rr/bfd"});
  double worst_ratio = 1.0;
  int strict_wins = 0, rows = 0;
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    const Core& c = soc.core(i);
    if (c.scan_chain_lengths.empty()) continue;  // RR == BFD without chains
    for (int w : {2, 4, 8, 16, 24}) {
      const Cycles bfd = core_test_time(c, w, PartitionHeuristic::kBestFitDecreasing);
      const Cycles rr = core_test_time(c, w, PartitionHeuristic::kRoundRobin);
      const double ratio = static_cast<double>(rr) / static_cast<double>(bfd);
      worst_ratio = std::max(worst_ratio, ratio);
      if (rr > bfd) ++strict_wins;
      ++rows;
      out.row().add(c.name).add(w).add(bfd).add(rr).add(ratio, 3);
    }
  }
  std::cout << out.to_ascii();
  std::printf(
      "\nBFD strictly better in %d/%d (core,width) points; worst RR/BFD "
      "ratio %.3f\n"
      "(soc1's provider chains are balanced, so the heuristic barely "
      "matters there)\n\n",
      strict_wins, rows, worst_ratio);

  // Skewed provider chains are where packing quality shows. Cores whose
  // internal chains span 4..200 flops model IP with legacy scan stitching.
  std::cout << "-- synthetic cores with skewed chain lengths --\n";
  Rng rng(99);
  Table skewed({"core", "w", "t_bfd", "t_roundrobin", "rr/bfd"});
  double skew_worst = 1.0;
  int skew_wins = 0, skew_rows = 0;
  for (int trial = 0; trial < 6; ++trial) {
    Core c;
    c.name = "skew" + std::to_string(trial);
    c.num_inputs = static_cast<int>(rng.uniform_int(10, 60));
    c.num_outputs = static_cast<int>(rng.uniform_int(10, 60));
    c.num_patterns = static_cast<int>(rng.uniform_int(50, 200));
    c.test_power_mw = 100;
    const int chains = static_cast<int>(rng.uniform_int(6, 14));
    for (int k = 0; k < chains; ++k) {
      c.scan_chain_lengths.push_back(static_cast<int>(rng.uniform_int(4, 200)));
    }
    for (int w : {2, 3, 4, 6, 8}) {
      const Cycles bfd = core_test_time(c, w, PartitionHeuristic::kBestFitDecreasing);
      const Cycles rr = core_test_time(c, w, PartitionHeuristic::kRoundRobin);
      const double ratio = static_cast<double>(rr) / static_cast<double>(bfd);
      skew_worst = std::max(skew_worst, ratio);
      if (rr > bfd) ++skew_wins;
      ++skew_rows;
      skewed.row().add(c.name).add(w).add(bfd).add(rr).add(ratio, 3);
    }
  }
  std::cout << skewed.to_ascii();
  std::printf(
      "\nBFD strictly better in %d/%d points; worst RR/BFD ratio %.3f\n\n",
      skew_wins, skew_rows, skew_worst);
  return 0;
}
