// Table 3: effect of the place-and-route constraints on the optimal test
// time (the paper's first headline). Two forms are swept on soc1's
// floorplan: (a) forbidden pairs via the detour-distance limit d_max, and
// (b) the total stub-wiring budget L_max. Shape check: tightening either
// constraint monotonically raises the optimal test time until the instance
// becomes infeasible; wirelength falls as the budget tightens.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/tam_problem.hpp"

using namespace soctest;

int main() {
  std::cout << benchutil::header(
      "Table 3", "place-and-route constrained optimization, soc1, widths 16/16/16");
  const Soc soc = builtin_soc1();
  const std::vector<int> widths{16, 16, 16};
  const TestTimeTable table(soc, 16);
  const BusPlan plan = plan_buses(soc, 3);
  std::printf("bus trunk wirelength: %lld grid edges\n\n",
              plan.total_trunk_length());

  std::cout << "(a) detour-distance limit d_max (forbidden pairs)\n";
  Table ta({"d_max", "forbidden_pairs", "T_opt", "stub_wirelength", "status"});
  for (int d_max : {-1, 40, 30, 25, 20, 15, 12, 10, 8, 6, 4, 2}) {
    const LayoutConstraints layout(plan, soc.num_cores(), d_max);
    int forbidden = 0;
    for (std::size_t i = 0; i < soc.num_cores(); ++i) {
      for (std::size_t j = 0; j < 3; ++j) {
        if (!layout.allowed(i, j)) ++forbidden;
      }
    }
    ta.row().add(d_max < 0 ? std::string("inf") : std::to_string(d_max));
    ta.add(forbidden);
    if (!layout.all_cores_connectable()) {
      ta.add("-").add("-").add("INFEASIBLE (core unconnectable)");
      continue;
    }
    const TamProblem problem = make_tam_problem(soc, table, widths, &layout);
    const auto result = solve_exact(problem);
    if (!result.feasible) {
      ta.add("-").add("-").add("INFEASIBLE");
      continue;
    }
    ta.add(result.assignment.makespan)
        .add(layout.assignment_wirelength(result.assignment.core_to_bus))
        .add("optimal");
  }
  std::cout << ta.to_ascii() << "\n";

  std::cout << "(b) total stub-wiring budget L_max (d_max = inf)\n";
  const LayoutConstraints loose(plan, soc.num_cores(), -1);
  // Establish the unconstrained optimum's wirelength as the sweep anchor.
  const TamProblem free_problem = make_tam_problem(soc, table, widths, &loose);
  const auto free_result = solve_exact(free_problem);
  const long long free_wire =
      loose.assignment_wirelength(free_result.assignment.core_to_bus);
  Table tb({"L_max", "T_opt", "stub_wirelength", "status"});
  for (double factor : {2.0, 1.0, 0.8, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1}) {
    const long long budget =
        static_cast<long long>(static_cast<double>(free_wire) * factor);
    const TamProblem problem =
        make_tam_problem(soc, table, widths, &loose, budget);
    const auto result = solve_exact(problem);
    tb.row().add(budget);
    if (!result.feasible) {
      tb.add("-").add("-").add("INFEASIBLE");
      continue;
    }
    tb.add(result.assignment.makespan)
        .add(loose.assignment_wirelength(result.assignment.core_to_bus))
        .add("optimal");
  }
  std::cout << tb.to_ascii() << "\n";
  return 0;
}
