// Ablation A2: strength of the branch-and-bound lower bound. Runs the exact
// solver with three admissible bound modes on growing random instances and
// reports nodes and wall time. Shape check: all modes agree on the optimum;
// kFull explores orders of magnitude fewer nodes than kNone as N grows.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "soc/generator.hpp"
#include "tam/exact_solver.hpp"
#include "wrapper/test_time_table.hpp"

using namespace soctest;

int main() {
  std::cout << benchutil::header(
      "Ablation A2", "branch-and-bound lower-bound strength, widths 8/8/8/8");
  Table out({"N", "T_opt", "nodes_none", "ms_none", "nodes_load", "ms_load",
             "nodes_full", "ms_full"});
  // Four equal-width buses make load balancing genuinely hard: without the
  // remaining-work bound the search must enumerate deep into every near-tie.
  for (int n : {10, 14, 18, 22, 26}) {
    Rng rng(static_cast<std::uint64_t>(n) * 104729);
    SocGeneratorOptions gen;
    gen.num_cores = n;
    gen.place = false;
    const Soc soc = generate_soc(gen, rng);
    const TestTimeTable table(soc, 8);
    const TamProblem problem = make_tam_problem(soc, table, {8, 8, 8, 8});

    Cycles makespans[3];
    bool proved[3];
    std::string nodes[3];
    double ms[3];
    const BoundMode modes[3] = {BoundMode::kNone, BoundMode::kLoadOnly,
                                BoundMode::kFull};
    for (int m = 0; m < 3; ++m) {
      ExactSolverOptions options;
      options.bound_mode = modes[m];
      options.max_nodes = 5'000'000;  // keep capped modes from running for minutes
      benchutil::Stopwatch sw;
      const auto result = solve_exact(problem, options);
      ms[m] = sw.ms();
      makespans[m] = result.feasible ? result.assignment.makespan : -1;
      proved[m] = result.proved_optimal;
      nodes[m] = std::to_string(result.nodes) + (proved[m] ? "" : "+(cap)");
    }
    // Any mode that finished must agree with every other finished mode.
    for (int m = 0; m < 3; ++m) {
      if (proved[m] && proved[2] && makespans[m] != makespans[2]) {
        std::printf("BOUND MODES DISAGREE at N=%d — bug!\n", n);
        return 1;
      }
    }
    out.row()
        .add(n)
        .add(makespans[2])
        .add(nodes[0])
        .add(ms[0], 2)
        .add(nodes[1])
        .add(ms[1], 2)
        .add(nodes[2])
        .add(ms[2], 2);
  }
  std::cout << out.to_ascii();
  std::printf(
      "\nfinding: the remaining-work/largest-item bounds dominate at small-\n"
      "to-mid N (order-of-magnitude node reductions vs load-only pruning);\n"
      "at larger N with four identical buses the per-candidate load check\n"
      "plus bus-symmetry canonicalization carry most of the pruning and the\n"
      "bound modes converge (all hit the node cap together).\n\n");
  return 0;
}
