// Table 1: per-core test time t_i(w) as a function of TAM width, for the
// representative SOC. This regenerates the core test-time data the DAC 2000
// formulation consumes (derived there from scan-chain reconfiguration; here
// from wrapper design). Shape check: staircase, non-increasing, with
// diminishing returns past each core's Pareto widths.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "soc/builtin.hpp"
#include "wrapper/test_time_table.hpp"

using namespace soctest;

int main() {
  std::cout << benchutil::header(
      "Table 1", "core test time t_i(w) [cycles] vs TAM width, soc1");
  const Soc soc = builtin_soc1();
  const int widths[] = {1, 2, 4, 8, 16, 24, 32, 48, 64};
  const TestTimeTable table(soc, 64);

  std::vector<std::string> cols{"core", "patterns", "scanFF"};
  for (int w : widths) cols.push_back("w=" + std::to_string(w));
  cols.push_back("pareto");
  Table out(cols);
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    const Core& c = soc.core(i);
    out.row().add(c.name).add(c.num_patterns).add(c.total_scan_flops());
    for (int w : widths) out.add(table.time(i, w));
    out.add(table.pareto_widths(i).size());
  }
  std::cout << out.to_ascii();

  Cycles serial = 0, wide = 0;
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    serial += table.time(i, 1);
    wide += table.time(i, 64);
  }
  std::printf(
      "\ntotal serial load: w=1 -> %lld cycles, w=64 -> %lld cycles "
      "(%.1fx reduction)\n\n",
      static_cast<long long>(serial), static_cast<long long>(wide),
      static_cast<double>(serial) / static_cast<double>(wide));
  return 0;
}
