#pragma once

// Shared helpers for the table-reproduction harness binaries.

#include <chrono>
#include <string>

namespace soctest::benchutil {

/// Wall-clock stopwatch in milliseconds.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline std::string header(const std::string& id, const std::string& what) {
  return "==== " + id + ": " + what + " ====\n";
}

}  // namespace soctest::benchutil
