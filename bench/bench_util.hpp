#pragma once

// Shared helpers for the table-reproduction harness binaries: wall-clock
// timing, a threaded sweep runner (each grid cell of a table bench runs as a
// thread-pool task), and a machine-readable JSON log merged into
// BENCH_solvers.json / BENCH_micro.json for cross-PR perf comparisons.

#include <chrono>
#include <cstdio>
#include <deque>
#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/parallel.hpp"
#include "common/thread_pool.hpp"
#include "obs/obs.hpp"

namespace soctest::benchutil {

/// Wall-clock stopwatch in milliseconds.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline std::string header(const std::string& id, const std::string& what) {
  return "==== " + id + ": " + what + " ====\n";
}

/// Worker threads for bench sweeps: SOCTEST_BENCH_THREADS overrides,
/// otherwise the library-wide default (SOCTEST_THREADS / hardware).
inline int sweep_threads() {
  if (const char* env = std::getenv("SOCTEST_BENCH_THREADS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  return default_thread_count();
}

/// Runs every cell of a parameter sweep as a thread-pool task and waits for
/// all of them. Cells must write into their own preallocated output slots so
/// table ordering stays deterministic regardless of completion order. With
/// one worker (or one cell) the pool is skipped entirely, keeping per-cell
/// wall-clock timings contention-free on serial runs.
inline void run_cells(std::vector<std::function<void()>> cells,
                      int threads = 0) {
  threads = threads >= 1 ? threads : sweep_threads();
  if (threads <= 1 || cells.size() <= 1) {
    for (auto& cell : cells) cell();
    return;
  }
  ThreadPool pool(static_cast<std::size_t>(threads));
  run_tasks(pool, std::move(cells));
}

/// One JSON object, insertion-ordered. Values are pre-formatted; set()
/// overloads handle quoting.
class JsonRecord {
 public:
  JsonRecord& set(const std::string& key, const std::string& value) {
    std::string escaped;
    for (char c : value) {
      if (c == '"' || c == '\\') escaped.push_back('\\');
      escaped.push_back(c);
    }
    fields_.emplace_back(key, "\"" + escaped + "\"");
    return *this;
  }
  JsonRecord& set(const std::string& key, const char* value) {
    return set(key, std::string(value));
  }
  JsonRecord& set(const std::string& key, double value, int decimals = 3) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    fields_.emplace_back(key, buf);
    return *this;
  }
  JsonRecord& set(const std::string& key, long long value) {
    fields_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonRecord& set(const std::string& key, int value) {
    return set(key, static_cast<long long>(value));
  }
  JsonRecord& set(const std::string& key, bool value) {
    fields_.emplace_back(key, value ? "true" : "false");
    return *this;
  }

  std::string to_json() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i) out += ",";
      out += "\"" + fields_[i].first + "\":" + fields_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Copies the current obs counter values into a bench record (one field per
/// counter, keyed by the counter's dotted name). Call inside a live
/// TraceSession, after the instrumented work and before the next reset.
inline void attach_counters(JsonRecord& record) {
  for (const auto& c : obs::counter_values()) {
    record.set(c.name, c.value);
  }
}

/// Accumulates the records of one bench binary and merges them into a shared
/// JSON file. The file is an array with one record object per line; on
/// write, lines tagged with this bench's name are replaced and every other
/// bench's records are preserved, so the table benches can co-own
/// BENCH_solvers.json.
class JsonLog {
 public:
  explicit JsonLog(std::string bench) : bench_(std::move(bench)) {}

  /// Creates the next record, pre-tagged with the bench name. Call from the
  /// setup (serial) phase and fill the reference inside sweep cells: deque
  /// references stay stable, and record order follows creation order.
  JsonRecord& record() {
    records_.emplace_back();
    records_.back().set("bench", bench_);
    return records_.back();
  }

  void write(const std::string& path) const {
    const std::string tag = "\"bench\":\"" + bench_ + "\"";
    std::vector<std::string> lines;
    {
      std::ifstream in(path);
      std::string line;
      while (std::getline(in, line)) {
        // Keep other benches' record lines; drop array brackets, our own
        // stale records, and blank lines.
        const auto start = line.find('{');
        if (start == std::string::npos) continue;
        if (line.find(tag) != std::string::npos) continue;
        auto end = line.rfind('}');
        if (end == std::string::npos || end < start) continue;
        lines.push_back(line.substr(start, end - start + 1));
      }
    }
    for (const auto& record : records_) lines.push_back(record.to_json());
    std::ofstream out(path);
    out << "[\n";
    for (std::size_t i = 0; i < lines.size(); ++i) {
      out << lines[i] << (i + 1 < lines.size() ? "," : "") << "\n";
    }
    out << "]\n";
  }

 private:
  std::string bench_;
  std::deque<JsonRecord> records_;
};

}  // namespace soctest::benchutil
