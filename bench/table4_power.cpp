// Table 4: effect of the power constraint on the optimal test time (the
// paper's second headline). Cores whose combined power exceeds P_max are
// forced onto the same bus (serialized). Shape check: as P_max tightens,
// conflict pairs grow, co-assignment groups coalesce, and the optimal test
// time climbs toward fully-serial; below the largest single-core power the
// instance is untestable.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "sched/power_profile.hpp"
#include "sched/schedule.hpp"
#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/power.hpp"
#include "tam/tam_problem.hpp"

using namespace soctest;

namespace {

void run_sweep(const Soc& soc, const std::vector<int>& widths) {
  std::printf("-- widths:");
  for (int w : widths) std::printf(" %d", w);
  std::printf(" --\n");
  const int max_width = *std::max_element(widths.begin(), widths.end());
  const TestTimeTable table(soc, max_width);
  Table out({"P_max[mW]", "conflict_pairs", "co_groups", "largest_group",
             "T_opt", "sched_peak[mW]", "status"});
  for (double p_max : {-1.0, 3000.0, 2500.0, 2200.0, 2000.0, 1800.0, 1600.0,
                       1500.0, 1400.0, 1300.0, 1200.0, 1100.0}) {
    const auto pairs = power_conflict_pairs(soc, p_max);
    const auto groups = power_co_groups(soc, p_max);
    std::size_t largest = 0;
    for (const auto& g : groups) largest = std::max(largest, g.size());
    out.row()
        .add(p_max < 0 ? std::string("inf") : std::to_string(static_cast<int>(p_max)))
        .add(pairs.size())
        .add(groups.size())
        .add(largest);
    if (!overbudget_cores(soc, p_max).empty()) {
      out.add("-").add("-").add("INFEASIBLE (core alone over budget)");
      continue;
    }
    const TamProblem problem =
        make_tam_problem(soc, table, widths, nullptr, -1, p_max);
    const auto result = solve_exact(problem);
    if (!result.feasible) {
      out.add("-").add("-").add("INFEASIBLE");
      continue;
    }
    const TestSchedule schedule =
        build_schedule(problem, result.assignment.core_to_bus);
    out.add(result.assignment.makespan)
        .add(compute_power_profile(soc, schedule).peak(), 0)
        .add("optimal");
  }
  std::cout << out.to_ascii() << "\n";
}

}  // namespace

int main() {
  std::cout << benchutil::header(
      "Table 4", "power-constrained optimization, soc1");
  const Soc soc = builtin_soc1();
  std::printf("total SOC test power: %.0f mW; largest core: %.0f mW\n\n",
              soc.total_test_power(), 1144.0);
  run_sweep(soc, {24, 24});
  run_sweep(soc, {16, 16, 16});
  std::printf(
      "note: the pairwise serialization constraint (the DAC 2000 form) is an\n"
      "exact peak-power guarantee for B=2 buses (at most two cores overlap);\n"
      "for B=3 the realized peak of a 3-core overlap can exceed P_max even\n"
      "though every pair fits -- visible above as sched_peak > P_max in the\n"
      "loose-budget rows of the 3-bus sweep.\n\n");
  return 0;
}
