// Ablation A6: value of the root-rounding warm incumbent in the MILP
// branch & bound. Rounding the root LP relaxation (and re-optimizing the
// continuous completion) sometimes yields a feasible incumbent before any
// branching. Shape check: identical optima; node counts drop when the
// rounding happens to be feasible (knapsack-like rows) and are unchanged
// when it is not (assignment equalities usually break rounding).

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "soc/generator.hpp"
#include "tam/ilp_solver.hpp"
#include "wrapper/test_time_table.hpp"

using namespace soctest;

int main() {
  std::cout << benchutil::header(
      "Ablation A6", "MILP root-rounding incumbent: nodes with vs without");

  std::cout << "-- random knapsack-family binary programs --\n";
  Rng rng(7);
  Table knap({"instance", "objective", "nodes_off", "nodes_on", "saved%"});
  for (int trial = 0; trial < 8; ++trial) {
    LinearProgram lp;
    const int n = 14;
    for (int i = 0; i < n; ++i) {
      lp.add_binary("x" + std::to_string(i), -rng.uniform(1.0, 20.0));
    }
    for (int r = 0; r < 2; ++r) {
      std::vector<std::pair<int, double>> coeffs;
      for (int i = 0; i < n; ++i) coeffs.emplace_back(i, rng.uniform(1.0, 8.0));
      lp.add_row("cap" + std::to_string(r), std::move(coeffs), RowSense::kLe,
                 rng.uniform(15.0, 35.0));
    }
    MipOptions off;
    MipOptions on;
    on.root_rounding = true;
    const auto a = solve_mip(lp, off);
    const auto b = solve_mip(lp, on);
    if (a.status != MipStatus::kOptimal) continue;
    knap.row()
        .add(trial)
        .add(a.objective, 2)
        .add(a.nodes_explored)
        .add(b.nodes_explored)
        .add(100.0 * (1.0 - static_cast<double>(b.nodes_explored) /
                                static_cast<double>(a.nodes_explored)),
             1);
  }
  std::cout << knap.to_ascii() << "\n";

  std::cout << "-- TAM assignment ILPs (equality rows defeat naive rounding) --\n";
  Table tam({"N", "T_opt", "nodes_off", "nodes_on"});
  for (int n : {6, 8, 10}) {
    Rng gen_rng(static_cast<std::uint64_t>(n) * 31);
    SocGeneratorOptions gen;
    gen.num_cores = n;
    gen.place = false;
    const Soc soc = generate_soc(gen, gen_rng);
    const TestTimeTable table(soc, 16);
    const TamProblem problem = make_tam_problem(soc, table, {16, 8});
    MipOptions off;
    MipOptions on;
    on.root_rounding = true;
    const auto a = solve_ilp(problem, off);
    const auto b = solve_ilp(problem, on);
    tam.row()
        .add(n)
        .add(a.assignment.makespan)
        .add(a.nodes)
        .add(b.nodes);
  }
  std::cout << tam.to_ascii() << "\n";
  return 0;
}
