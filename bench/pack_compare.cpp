// Formulation comparison: fixed-bus architectures vs the rectangle-packing
// formulation on the same wire budget. Table 6 companion (table6_pack) runs
// every shipped SOC at W_total in {16, 24, 32} — the fixed-bus side is the
// exact two-bus width search, the packing side the skyline+SA heuristic and
// the budgeted exact packer, every packing validated by the independent
// feasibility oracle. Table 8 companion (table8_pack) scales random SOCs.
//
// Shape check: pack <= fixed-bus on most cells (any fixed-bus architecture
// is one particular packing, so the formulation can only help; the solvers
// are heuristic, hence "most" rather than "all" is asserted downstream).

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "pack/exact_pack.hpp"
#include "pack/skyline.hpp"
#include "soc/builtin.hpp"
#include "soc/generator.hpp"
#include "tam/width_partition.hpp"
#include "wrapper/test_time_table.hpp"

using namespace soctest;

namespace {

struct Cell {
  std::string name;
  int width = 0;
  Cycles t_fixed = 0;
  double ms_fixed = 0.0;
  Cycles t_pack = 0;
  double ms_pack = 0.0;
  Cycles t_pack_exact = 0;
  double ms_pack_exact = 0.0;
  bool pack_optimal = false;
  Cycles lower_bound = 0;
  bool oracle_ok = false;
  bool pack_wins = false;
};

}  // namespace

int main() {
  std::cout << benchutil::header(
      "Table 6 (pack)",
      "fixed-bus vs rectangle-packing formulation, shipped SOCs");

  const std::vector<Soc> socs = {builtin_soc1(), builtin_soc2(),
                                 builtin_soc3(), builtin_soc4()};
  const std::vector<int> widths = {16, 24, 32};
  std::vector<Cell> cells(socs.size() * widths.size());
  benchutil::JsonLog log("table6_pack");

  std::vector<std::function<void()>> tasks;
  std::vector<benchutil::JsonRecord*> records;
  for (std::size_t s = 0; s < socs.size(); ++s) {
    for (std::size_t w = 0; w < widths.size(); ++w) {
      const std::size_t idx = s * widths.size() + w;
      records.push_back(&log.record());
      tasks.push_back([idx, s, w, &socs, &widths, &cells, &records] {
        const Soc& soc = socs[s];
        const int width = widths[w];
        Cell& cell = cells[idx];
        cell.name = soc.name();
        cell.width = width;

        const TestTimeTable table(soc, width);

        benchutil::Stopwatch sw_fixed;
        const ArchitectureResult fixed = optimize_widths(soc, table, 2, width);
        cell.ms_fixed = sw_fixed.ms();
        cell.t_fixed = fixed.assignment.makespan;

        const PackProblem problem = make_pack_problem(soc, table, width);
        cell.lower_bound = problem.lower_bound();

        benchutil::Stopwatch sw_pack;
        const PackSolveResult pack = solve_pack(problem);
        cell.ms_pack = sw_pack.ms();
        cell.t_pack = pack.makespan;
        cell.oracle_ok =
            pack.feasible &&
            check_packing(problem, pack.placements, pack.makespan).empty();

        PackExactOptions budgeted;
        budgeted.max_nodes = 500000;
        benchutil::Stopwatch sw_exact;
        const PackSolveResult exact = solve_pack_exact(problem, budgeted);
        cell.ms_pack_exact = sw_exact.ms();
        cell.t_pack_exact = exact.makespan;
        cell.pack_optimal = exact.proved_optimal;
        cell.oracle_ok =
            cell.oracle_ok && exact.feasible &&
            check_packing(problem, exact.placements, exact.makespan).empty();

        cell.pack_wins = cell.t_pack <= cell.t_fixed;
        records[idx]
            ->set("cell", cell.name + "/W=" + std::to_string(width))
            .set("T_fixed", static_cast<long long>(cell.t_fixed))
            .set("ms_fixed", cell.ms_fixed)
            .set("T_pack", static_cast<long long>(cell.t_pack))
            .set("ms_pack", cell.ms_pack)
            .set("T_pack_exact", static_cast<long long>(cell.t_pack_exact))
            .set("ms_pack_exact", cell.ms_pack_exact)
            .set("pack_proved_optimal", cell.pack_optimal)
            .set("lower_bound", static_cast<long long>(cell.lower_bound))
            .set("oracle_ok", cell.oracle_ok)
            .set("pack_wins", cell.pack_wins);
      });
    }
  }
  benchutil::run_cells(std::move(tasks));

  Table out({"soc", "W", "T_fixed", "T_pack", "T_pack_exact", "LB",
             "optimal", "oracle", "winner"});
  int wins = 0;
  for (const Cell& cell : cells) {
    wins += cell.pack_wins ? 1 : 0;
    out.row()
        .add(cell.name)
        .add(cell.width)
        .add(cell.t_fixed)
        .add(cell.t_pack)
        .add(cell.t_pack_exact)
        .add(cell.lower_bound)
        .add(cell.pack_optimal ? "yes" : "no")
        .add(cell.oracle_ok ? "ok" : "FAIL")
        .add(cell.pack_wins ? "pack" : "fixed");
  }
  std::cout << out.to_ascii();
  std::cout << "\npack wins or ties " << wins << "/" << cells.size()
            << " cells\n\n";
  log.write("BENCH_solvers.json");

  // Scaling companion: random SOCs of growing N at W_total = 24.
  std::cout << benchutil::header(
      "Table 8 (pack)", "formulation comparison on random SOCs, W=24");
  benchutil::JsonLog scale_log("table8_pack");
  Table scale({"N", "T_fixed", "ms_fixed", "T_pack", "ms_pack", "ratio"});
  for (const int n : {6, 10, 14, 18, 26, 34}) {
    Rng rng(static_cast<std::uint64_t>(n) * 7919);
    SocGeneratorOptions gen;
    gen.num_cores = n;
    gen.place = false;
    const Soc soc = generate_soc(gen, rng);
    const TestTimeTable table(soc, 24);

    benchutil::Stopwatch sw_fixed;
    const ArchitectureResult fixed = optimize_widths(soc, table, 2, 24);
    const double ms_fixed = sw_fixed.ms();

    const PackProblem problem = make_pack_problem(soc, table, 24);
    benchutil::Stopwatch sw_pack;
    const PackSolveResult pack = solve_pack(problem);
    const double ms_pack = sw_pack.ms();
    const bool oracle_ok =
        pack.feasible &&
        check_packing(problem, pack.placements, pack.makespan).empty();

    const double ratio =
        fixed.assignment.makespan > 0
            ? static_cast<double>(pack.makespan) /
                  static_cast<double>(fixed.assignment.makespan)
            : 0.0;
    scale.row()
        .add(n)
        .add(fixed.assignment.makespan)
        .add(ms_fixed, 2)
        .add(pack.makespan)
        .add(ms_pack, 2)
        .add(ratio, 3);
    scale_log.record()
        .set("cell", "N=" + std::to_string(n))
        .set("T_fixed", static_cast<long long>(fixed.assignment.makespan))
        .set("ms_fixed", ms_fixed)
        .set("T_pack", static_cast<long long>(pack.makespan))
        .set("ms_pack", ms_pack)
        .set("ratio", ratio)
        .set("oracle_ok", oracle_ok);
  }
  std::cout << scale.to_ascii() << "\n";
  scale_log.write("BENCH_solvers.json");
  std::cout << "wrote BENCH_solvers.json\n";
  return 0;
}
