// Service throughput: serial requests/s cold (every solve computed) vs warm
// (duplicate-heavy stream answered from the result cache). Runs the request
// batch through an in-process SolveService in deterministic serial mode —
// no transport, so the row measures queue + cache + solve, not socket I/O.
//
// Cold pass: every request distinct (cache fills, never hits). Warm pass:
// the same key count but each repeated, modeling the duplicate-heavy batch
// shape of scripts/check_service.sh's fixture.

#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "service/server.hpp"

using namespace soctest;

namespace {

std::string request_line(const std::string& id, int seed) {
  return "{\"schema\":\"soctest-req-v1\",\"id\":\"" + id +
         "\",\"soc\":\"soc1\",\"widths\":[16,8,8],\"seed\":" +
         std::to_string(seed) + "}";
}

/// Runs `lines` through a fresh serial service, returning wall ms.
double run_batch(const std::vector<std::string>& lines,
                 ServiceStats* stats) {
  ServiceConfig config;
  config.serial = true;
  SolveService service(config);
  benchutil::Stopwatch sw;
  for (const std::string& line : lines) {
    service.submit(line, [](std::string) {});
  }
  service.drain();
  const double ms = sw.ms();
  *stats = service.stats();
  return ms;
}

}  // namespace

int main() {
  std::cout << benchutil::header(
      "Service", "serial solve-service throughput, cold vs warm cache");

  // 16 distinct solve keys; the warm stream repeats each 16 times. Distinct
  // seeds make distinct cache keys out of one cheap underlying solve, so the
  // bench measures service overhead rather than solver scaling.
  constexpr int kKeys = 16;
  constexpr int kRepeats = 16;
  std::vector<std::string> cold;
  for (int k = 0; k < kKeys; ++k) {
    cold.push_back(request_line("cold-" + std::to_string(k), k));
  }
  std::vector<std::string> warm;
  for (int r = 0; r < kRepeats; ++r) {
    for (int k = 0; k < kKeys; ++k) {
      warm.push_back(request_line("warm-" + std::to_string(k), k));
    }
  }

  ServiceStats cold_stats;
  const double cold_ms = run_batch(cold, &cold_stats);
  ServiceStats warm_stats;
  const double warm_ms = run_batch(warm, &warm_stats);

  const double cold_rps =
      cold_ms > 0 ? 1000.0 * static_cast<double>(cold.size()) / cold_ms : 0;
  const double warm_rps =
      warm_ms > 0 ? 1000.0 * static_cast<double>(warm.size()) / warm_ms : 0;

  Table out({"pass", "requests", "ms", "req_per_s", "cache_hits"});
  out.row()
      .add(std::string("cold"))
      .add(static_cast<long long>(cold.size()))
      .add(cold_ms, 3)
      .add(cold_rps, 1)
      .add(cold_stats.cache_hits);
  out.row()
      .add(std::string("warm"))
      .add(static_cast<long long>(warm.size()))
      .add(warm_ms, 3)
      .add(warm_rps, 1)
      .add(warm_stats.cache_hits);
  std::cout << out.to_ascii();

  benchutil::JsonLog log("service_throughput");
  log.record()
      .set("cell", "serial soc1 16,8,8")
      .set("requests_cold", static_cast<long long>(cold.size()))
      .set("requests_warm", static_cast<long long>(warm.size()))
      .set("ms_cold", cold_ms)
      .set("ms_warm", warm_ms)
      .set("req_per_s_cold", cold_rps, 1)
      .set("req_per_s_warm", warm_rps, 1)
      .set("cache_hits_warm", warm_stats.cache_hits);
  log.write("BENCH_solvers.json");
  std::cout << "wrote BENCH_solvers.json\n";
  return 0;
}
