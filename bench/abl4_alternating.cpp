// Ablation A4: alternating wrapper/TAM co-optimization (assignment solve ->
// DP width re-allocation -> repeat) versus exhaustive width-partition
// enumeration. Shape check: exhaustive is optimal but its partition count
// explodes with W and B; alternating converges in a handful of rounds to a
// near-optimal architecture at a fraction of the cost.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "soc/builtin.hpp"
#include "tam/width_dp.hpp"
#include "tam/width_partition.hpp"

using namespace soctest;

int main() {
  std::cout << benchutil::header(
      "Ablation A4", "alternating co-optimization vs exhaustive width search");
  for (const Soc& soc : {builtin_soc1(), builtin_soc3()}) {
    std::printf("-- %s (%zu cores) --\n", soc.name().c_str(), soc.num_cores());
    Table out({"B", "W", "T_exhaustive", "ms_exh", "parts", "T_alternating",
               "ms_alt", "rounds", "gap%"});
    for (int num_buses : {2, 3, 4}) {
      for (int total : {32, 64, 96}) {
        const TestTimeTable table(soc, total - (num_buses - 1));
        benchutil::Stopwatch sw_exh;
        const auto exhaustive = optimize_widths(soc, table, num_buses, total);
        const double ms_exh = sw_exh.ms();
        benchutil::Stopwatch sw_alt;
        const auto alternating =
            optimize_alternating(soc, table, num_buses, total);
        const double ms_alt = sw_alt.ms();
        if (!exhaustive.feasible || !alternating.feasible) continue;
        out.row()
            .add(num_buses)
            .add(total)
            .add(exhaustive.assignment.makespan)
            .add(ms_exh, 1)
            .add(exhaustive.partitions_tried)
            .add(alternating.assignment.makespan)
            .add(ms_alt, 1)
            .add(alternating.partitions_tried)
            .add(100.0 * (static_cast<double>(alternating.assignment.makespan) /
                              static_cast<double>(exhaustive.assignment.makespan) -
                          1.0),
                 1);
      }
    }
    std::cout << out.to_ascii() << "\n";
  }
  return 0;
}
