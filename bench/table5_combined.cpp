// Table 5: the paper's headline — architecture optimization under
// place-and-route AND power constraints simultaneously. A (d_max, P_max)
// grid on soc1. Shape check: the combined optimum dominates both
// single-constraint optima; corners of the grid go infeasible first (tight
// layout pins cores to specific buses while tight power forces co-location,
// and the two can contradict).

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/tam_problem.hpp"

using namespace soctest;

int main() {
  std::cout << benchutil::header(
      "Table 5", "combined layout+power constraints, soc1, widths 16/16/16");
  const Soc soc = builtin_soc1();
  const std::vector<int> widths{16, 16, 16};
  const TestTimeTable table(soc, 16);
  const BusPlan plan = plan_buses(soc, 3);

  const std::vector<int> d_sweep{-1, 30, 20, 15, 10};
  const std::vector<double> p_sweep{-1, 2500, 2000, 1600, 1300};

  std::vector<std::string> cols{"d_max \\ P_max"};
  for (double p : p_sweep) {
    cols.push_back(p < 0 ? "inf" : std::to_string(static_cast<int>(p)));
  }
  Table out(cols);
  for (int d_max : d_sweep) {
    out.row().add(d_max < 0 ? std::string("inf") : std::to_string(d_max));
    const LayoutConstraints layout(plan, soc.num_cores(), d_max);
    for (double p_max : p_sweep) {
      if (!layout.all_cores_connectable()) {
        out.add("INFEAS");
        continue;
      }
      try {
        const TamProblem problem =
            make_tam_problem(soc, table, widths, &layout, -1, p_max);
        const auto result = solve_exact(problem);
        out.add(result.feasible ? std::to_string(result.assignment.makespan)
                                : std::string("INFEAS"));
      } catch (const std::runtime_error&) {
        out.add("INFEAS");
      }
    }
  }
  std::cout << out.to_ascii();
  std::cout << "\n(entries: optimal system test time in cycles)\n\n";
  return 0;
}
