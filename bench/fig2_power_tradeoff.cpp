// Figure 2: the power/test-time trade-off curve. For a fine P_max sweep we
// plot (a) the optimal test time under the paper's conservative pairwise
// serialization and (b) the realized instantaneous peak power of the
// resulting schedule (after power-aware reordering). Shape check: test time
// is a non-increasing staircase in P_max; the realized peak always sits at
// or below the budget; slack between peak and budget quantifies the
// pairwise model's conservatism.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "sched/power_profile.hpp"
#include "sched/schedule.hpp"
#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/power.hpp"
#include "tam/tam_problem.hpp"

using namespace soctest;

int main() {
  std::cout << benchutil::header(
      "Figure 2", "power budget vs optimal test time and realized peak, soc1");
  const Soc soc = builtin_soc1();
  const std::vector<int> widths{16, 16};
  const TestTimeTable table(soc, 16);
  Rng rng(2024);

  Table out({"P_max[mW]", "T_opt", "peak_default[mW]", "peak_reordered[mW]",
             "slack[mW]"});
  for (int p_max = 3400; p_max >= 1100; p_max -= 100) {
    out.row().add(p_max);
    if (!overbudget_cores(soc, p_max).empty()) {
      out.add("-").add("-").add("-").add("-");
      continue;
    }
    const TamProblem problem = make_tam_problem(
        soc, table, widths, nullptr, -1, static_cast<double>(p_max));
    const auto result = solve_exact(problem);
    if (!result.feasible) {
      out.add("-").add("-").add("-").add("-");
      continue;
    }
    const TestSchedule base =
        build_schedule(problem, result.assignment.core_to_bus);
    const TestSchedule reordered = minimize_peak_order(
        problem, soc, result.assignment.core_to_bus, rng, 800);
    const double peak0 = compute_power_profile(soc, base).peak();
    const double peak1 = compute_power_profile(soc, reordered).peak();
    out.add(result.assignment.makespan)
        .add(peak0, 0)
        .add(peak1, 0)
        .add(p_max - peak1, 0);
  }
  std::cout << out.to_ascii();
  std::cout << "\nCSV series for plotting:\n" << out.to_csv() << "\n";
  return 0;
}
