// Figure 7 (extension): multiplexed test bus (the paper's architecture)
// versus daisy-chain TestRail at the same widths. The rail pays one bypass
// cycle per neighbouring wrapper per scan operation. Shape check: the bus
// always wins; the gap grows with the number of cores per rail and with
// pattern counts, and shrinks as more rails reduce sharing.

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "soc/builtin.hpp"
#include "tam/daisychain.hpp"
#include "tam/exact_solver.hpp"

using namespace soctest;

int main() {
  std::cout << benchutil::header(
      "Figure 7", "multiplexed bus vs daisy-chain TestRail, soc1");
  const Soc soc = builtin_soc1();
  Table out({"B", "widths", "T_bus", "T_rail", "rail/bus", "bypass_overhead"});
  const std::vector<std::vector<int>> configs{
      {32}, {16, 16}, {24, 8}, {16, 8, 8}, {11, 11, 10}, {8, 8, 8, 8}};
  for (const auto& widths : configs) {
    const int max_width = *std::max_element(widths.begin(), widths.end());
    const TestTimeTable table(soc, max_width);
    const TamProblem bus = make_tam_problem(soc, table, widths);
    const DaisychainProblem rail = make_daisychain_problem(soc, table, widths);
    const auto bus_result = solve_exact(bus);
    const auto rail_result = solve_daisychain_exact(rail);
    if (!bus_result.feasible || !rail_result.feasible) continue;
    std::string label;
    for (std::size_t j = 0; j < widths.size(); ++j) {
      label += (j ? "/" : "") + std::to_string(widths[j]);
    }
    out.row()
        .add(static_cast<int>(widths.size()))
        .add(label)
        .add(bus_result.assignment.makespan)
        .add(rail_result.assignment.makespan)
        .add(static_cast<double>(rail_result.assignment.makespan) /
                 static_cast<double>(bus_result.assignment.makespan),
             3)
        .add(rail_result.assignment.makespan - bus_result.assignment.makespan);
  }
  std::cout << out.to_ascii();
  std::printf(
      "\n(bypass_overhead in cycles; 1 rail forces every wrapper into the\n"
      "chain, so the single-TAM ratio is the worst case)\n\n");
  return 0;
}
