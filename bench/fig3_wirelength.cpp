// Figure 3: test-time vs TAM wiring trade-off. Sweeping the stub-wiring
// budget L_max traces the Pareto frontier between system test time and the
// routing cost of connecting cores to bus trunks. Shape check: as the
// budget tightens, wirelength falls and test time rises; the frontier is a
// monotone staircase; beyond the unconstrained optimum's wirelength the
// budget is slack and the curve is flat.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "common/table.hpp"
#include "soc/builtin.hpp"
#include "tam/exact_solver.hpp"
#include "tam/tam_problem.hpp"

using namespace soctest;

int main() {
  std::cout << benchutil::header(
      "Figure 3", "test time vs stub wirelength frontier, soc1, widths 16/16/16");
  const Soc soc = builtin_soc1();
  const std::vector<int> widths{16, 16, 16};
  const TestTimeTable table(soc, 16);
  const BusPlan plan = plan_buses(soc, 3);
  const LayoutConstraints layout(plan, soc.num_cores(), -1);

  // Minimum possible wirelength: every core on its nearest trunk.
  long long min_wire = 0;
  for (std::size_t i = 0; i < soc.num_cores(); ++i) {
    int best = -1;
    for (std::size_t j = 0; j < 3; ++j) {
      const int d = layout.distance(i, j);
      if (d >= 0 && (best < 0 || d < best)) best = d;
    }
    min_wire += best;
  }
  std::printf("minimum achievable stub wirelength: %lld grid edges\n\n",
              min_wire);

  Table out({"L_max", "T_opt", "wirelength", "status"});
  for (long long budget = min_wire + 60; budget >= min_wire - 10; budget -= 5) {
    const TamProblem problem =
        make_tam_problem(soc, table, widths, &layout, budget);
    const auto result = solve_exact(problem);
    out.row().add(budget);
    if (!result.feasible) {
      out.add("-").add("-").add("INFEASIBLE");
      continue;
    }
    out.add(result.assignment.makespan)
        .add(layout.assignment_wirelength(result.assignment.core_to_bus))
        .add("optimal");
  }
  std::cout << out.to_ascii();
  std::cout << "\nCSV series for plotting:\n" << out.to_csv() << "\n";
  return 0;
}
